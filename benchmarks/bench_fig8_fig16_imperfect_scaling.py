"""Figures 8 and 16 — Lyra under imperfect (non-linear) scaling.

Fig. 8: queuing/JCT reductions over Baseline in Basic and Ideal when each
added worker loses 20 % throughput — gains shrink mildly in Basic and
more in Ideal, but Lyra still wins.

Fig. 16: the same non-linear model swept over the fraction of elastic
jobs (scaling-only setting): JCT inflation grows as elastic jobs become
the dominant workload.
"""

from benchmarks.bench_util import emit, get_setup, reductions_vs, run_cached
from repro.scenarios import apply_scenario, with_elastic_fraction


def build_fig8():
    setup = get_setup()
    out = {}
    for scenario in ("basic", "ideal"):
        baseline = run_cached(setup, "baseline", scenario=scenario)
        linear = run_cached(setup, "lyra", scenario=scenario)
        sublinear = run_cached(
            setup, "lyra", scenario=scenario, scaling_model="sublinear20"
        )
        out[scenario] = (baseline, linear, sublinear)
    return out


def bench_fig8_imperfect_scaling(benchmark):
    results = benchmark.pedantic(build_fig8, rounds=1, iterations=1)
    rows = []
    for scenario, (baseline, linear, sublinear) in results.items():
        q_lin, j_lin = reductions_vs(baseline, linear)
        q_sub, j_sub = reductions_vs(baseline, sublinear)
        rows.append([scenario, q_lin, j_lin, q_sub, j_sub,
                     sublinear.jct_summary().mean / linear.jct_summary().mean])
    emit(
        "fig8", "Fig. 8: gains over Baseline with imperfect scaling",
        ["scenario", "q_red(lin)", "jct_red(lin)", "q_red(sub)",
         "jct_red(sub)", "jct inflation"],
        rows,
    )
    for row in rows:
        # Lyra still beats Baseline under non-linear scaling...
        assert row[3] > 1.0 and row[4] > 1.0
        # ...and the inflation versus linear scaling stays bounded.  The
        # paper reports 3-10.5 %; our Ideal scenario (every job elastic
        # with a 2x range) exposes more allocation to the 20 % marginal
        # loss, so the band is wider at small scale.
        assert row[5] < 1.7


def build_fig16():
    setup = get_setup()
    base_specs = apply_scenario(setup.workload.specs, "basic")
    rows = []
    for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
        specs = with_elastic_fraction(base_specs, fraction, seed=1)
        linear = run_cached(
            setup, "lyra_scaling", specs=specs,
            cache_key=f"elastic{fraction}",
        )
        sublinear = run_cached(
            setup, "lyra_scaling", specs=specs,
            scaling_model="sublinear20",
            cache_key=f"elastic{fraction}",
        )
        rows.append(
            [
                f"{fraction:.0%}",
                linear.jct_summary().mean,
                sublinear.jct_summary().mean,
                sublinear.jct_summary().mean / linear.jct_summary().mean - 1,
                sublinear.queuing_summary().mean
                / max(1e-9, linear.queuing_summary().mean) - 1,
            ]
        )
    return rows


def bench_fig16_nonlinear_elastic_sweep(benchmark):
    rows = benchmark.pedantic(build_fig16, rounds=1, iterations=1)
    emit(
        "fig16", "Fig. 16: non-linear scaling impact vs elastic fraction",
        ["elastic", "jct linear", "jct sublinear", "jct impact", "queue impact"],
        rows,
    )
    # Impact at 100 % elastic exceeds the impact at 20 % elastic.
    assert rows[-1][3] >= rows[0][3] - 0.02
    # Bounded inflation, same order as the paper's <=9 %.
    assert all(row[3] < 0.5 for row in rows)
