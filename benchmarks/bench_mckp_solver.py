"""§5.2 — MCKP solver runtime at production problem sizes.

The paper reports that its worst-case phase-two instance — 354 items over
245 free GPUs — solves in 0.02 s via dynamic programming.  This bench
times exactly that instance shape (and a 4x larger one) across the
solver kernels — the vectorized numpy DP (the default), the scalar
reference DP, and brute force on a tiny instance — checks they agree
exactly, and records the comparison in
``benchmarks/results/BENCH_mckp.json``.

Runs under pytest-benchmark (``pytest benchmarks/bench_mckp_solver.py``)
or standalone::

    python benchmarks/bench_mckp_solver.py
"""

import json
import os
import random
import sys
import time

if __package__ in (None, ""):  # standalone: make repro + benchmarks importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks.bench_util import emit  # noqa: E402
from repro.core.mckp import (  # noqa: E402
    Item,
    solve_mckp,
    solve_mckp_bruteforce,
)
from repro.ioutil import atomic_write  # noqa: E402

RESULTS = os.path.join(os.path.dirname(__file__), "results")


def make_instance(num_items: int, capacity: int, seed: int = 0):
    """Groups shaped like Fig. 6: consecutive weights, concave values."""
    rng = random.Random(seed)
    groups = []
    items = 0
    while items < num_items:
        size = min(rng.randint(1, 8), num_items - items)
        gpw = rng.choice([1, 2])
        base_value = rng.uniform(50, 5000)
        group = []
        for k in range(1, size + 1):
            # diminishing JCT reductions, exactly like elastic jobs
            group.append(
                Item(weight=k * gpw, value=base_value * k / (k + 1))
            )
        groups.append(group)
        items += size
    return groups, capacity


def _time(fn, repeats: int = 5) -> float:
    """Best-of-N wall time in seconds (min damps scheduler noise)."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return min(samples)


def solver_comparison() -> dict:
    """Vectorized vs scalar vs brute-force timings, with exactness checks."""
    instances = {
        "paper_354x245": make_instance(354, 245),
        "4x_1400x980": make_instance(1400, 980, seed=1),
    }
    out = {"instances": {}, "bruteforce": {}}
    for name, (groups, capacity) in instances.items():
        v_np, c_np = solve_mckp(groups, capacity, use_numpy=True)
        v_py, c_py = solve_mckp(groups, capacity, use_numpy=False)
        assert v_np == v_py and c_np == c_py, (
            f"{name}: vectorized and scalar DP disagree"
        )
        t_np = _time(lambda: solve_mckp(groups, capacity, use_numpy=True))
        t_py = _time(lambda: solve_mckp(groups, capacity, use_numpy=False))
        out["instances"][name] = {
            "items": sum(len(g) for g in groups),
            "groups": len(groups),
            "capacity": capacity,
            "value": v_np,
            "vectorized_s": round(t_np, 6),
            "scalar_s": round(t_py, 6),
            "speedup": round(t_py / t_np, 3) if t_np else None,
        }
    # brute force only on a tiny instance (exponential)
    groups, capacity = make_instance(9, 8, seed=2)
    v_np, _ = solve_mckp(groups, capacity, use_numpy=True)
    v_bf, _ = solve_mckp_bruteforce(groups, capacity)
    assert abs(v_np - v_bf) < 1e-9, "DP missed the brute-force optimum"
    out["bruteforce"] = {
        "items": sum(len(g) for g in groups),
        "capacity": capacity,
        "value": v_bf,
        "bruteforce_s": round(_time(
            lambda: solve_mckp_bruteforce(groups, capacity), repeats=3
        ), 6),
        "vectorized_s": round(_time(
            lambda: solve_mckp(groups, capacity, use_numpy=True)
        ), 6),
    }
    out["paper_reference_s"] = 0.02
    return out


def write_report(comparison: dict) -> str:
    os.makedirs(RESULTS, exist_ok=True)
    path = os.path.join(RESULTS, "BENCH_mckp.json")
    with atomic_write(path) as fh:
        json.dump(comparison, fh, indent=2)
        fh.write("\n")
    return path


def bench_mckp_paper_instance(benchmark):
    groups, capacity = make_instance(354, 245)

    def solve():
        return solve_mckp(groups, capacity)

    value, choices = benchmark(solve)
    taken = [c for c in choices if c is not None]
    weight = sum(item.weight for item in taken)

    comparison = solver_comparison()
    paper = comparison["instances"]["paper_354x245"]
    big = comparison["instances"]["4x_1400x980"]
    write_report(comparison)

    emit(
        "mckp", "§5.2: MCKP dynamic-programming runtime",
        ["metric", "value"],
        [
            ["items / capacity", "354 / 245 (paper's worst case)"],
            ["vectorized DP time (s)", paper["vectorized_s"]],
            ["scalar DP time (s)", paper["scalar_s"]],
            ["vectorized speedup", paper["speedup"]],
            ["paper time (s)", 0.02],
            ["solution value", value],
            ["solution weight", weight],
            ["4x instance vectorized (s)", big["vectorized_s"]],
            ["4x instance scalar (s)", big["scalar_s"]],
        ],
    )
    assert weight <= capacity
    assert value > 0
    # Interactive even with slack for slow machines.
    assert paper["vectorized_s"] < 0.5


def main() -> int:
    comparison = solver_comparison()
    path = write_report(comparison)
    for name, row in comparison["instances"].items():
        print(
            f"{name:16s} vectorized {row['vectorized_s']*1e3:8.2f} ms  "
            f"scalar {row['scalar_s']*1e3:8.2f} ms  "
            f"speedup {row['speedup']:.2f}x"
        )
    bf = comparison["bruteforce"]
    print(
        f"{'bruteforce(tiny)':16s} bruteforce {bf['bruteforce_s']*1e3:8.2f} "
        f"ms  vectorized {bf['vectorized_s']*1e3:8.2f} ms"
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
