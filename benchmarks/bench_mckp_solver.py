"""§5.2 — MCKP solver runtime at production problem sizes.

The paper reports that its worst-case phase-two instance — 354 items over
245 free GPUs — solves in 0.02 s via dynamic programming.  This bench
times exactly that instance shape (and a 4x larger one) and checks the DP
stays interactive.
"""

import random
import time

from benchmarks.bench_util import emit
from repro.core.mckp import Item, solve_mckp


def make_instance(num_items: int, capacity: int, seed: int = 0):
    """Groups shaped like Fig. 6: consecutive weights, concave values."""
    rng = random.Random(seed)
    groups = []
    items = 0
    while items < num_items:
        size = min(rng.randint(1, 8), num_items - items)
        gpw = rng.choice([1, 2])
        base_value = rng.uniform(50, 5000)
        group = []
        for k in range(1, size + 1):
            # diminishing JCT reductions, exactly like elastic jobs
            group.append(
                Item(weight=k * gpw, value=base_value * k / (k + 1))
            )
        groups.append(group)
        items += size
    return groups, capacity


def bench_mckp_paper_instance(benchmark):
    groups, capacity = make_instance(354, 245)

    def solve():
        return solve_mckp(groups, capacity)

    value, choices = benchmark(solve)
    taken = [c for c in choices if c is not None]
    weight = sum(item.weight for item in taken)
    t0 = time.perf_counter()
    solve_mckp(groups, capacity)
    elapsed = time.perf_counter() - t0

    big_groups, big_capacity = make_instance(1400, 980, seed=1)
    t0 = time.perf_counter()
    solve_mckp(big_groups, big_capacity)
    big_elapsed = time.perf_counter() - t0

    emit(
        "mckp", "§5.2: MCKP dynamic-programming runtime",
        ["metric", "value"],
        [
            ["items / capacity", "354 / 245 (paper's worst case)"],
            ["solve time (s)", elapsed],
            ["paper time (s)", 0.02],
            ["solution value", value],
            ["solution weight", weight],
            ["4x instance time (s)", big_elapsed],
        ],
    )
    assert weight <= capacity
    assert value > 0
    # Interactive even with slack for slow machines.
    assert elapsed < 0.5
