"""Table 8 — queuing time and JCT percentiles per scheme (Basic,
scaling-only setting).

The paper's distributional comparison: Lyra matches AFS on median queuing
(both admit base demand first), beats Pollux on tail queuing (Pollux does
not optimize queuing), and Lyra+TunedJobs leads every JCT percentile.
"""

from benchmarks.bench_util import emit, get_setup, run_cached


SCHEMES = [
    ("Baseline", "baseline"),
    ("Gandiva", "gandiva"),
    ("AFS", "afs"),
    ("Pollux", "pollux"),
    ("Lyra", "lyra_scaling"),
    ("Lyra+TunedJobs", "lyra_tuned"),
]


def build():
    setup = get_setup()
    return {name: run_cached(setup, scheme) for name, scheme in SCHEMES}


def bench_table8_percentiles(benchmark):
    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, _ in SCHEMES:
        metrics = results[name]
        q = metrics.queuing_summary()
        j = metrics.jct_summary()
        rows.append(
            [name, q.median, q.p75, q.p95, q.p99,
             j.median, j.p75, j.p95, j.p99]
        )
    emit(
        "table8", "Table 8: queuing/JCT percentiles (scaling-only, Basic)",
        ["scheme", "q50", "q75", "q95", "q99", "jct50", "jct75", "jct95",
         "jct99"],
        rows,
    )
    lyra = results["Lyra"]
    tuned = results["Lyra+TunedJobs"]
    pollux = results["Pollux"]
    baseline = results["Baseline"]
    # Lyra improves tail queuing over Baseline and over Pollux.
    assert lyra.queuing_summary().p95 < baseline.queuing_summary().p95
    assert lyra.queuing_summary().p95 <= pollux.queuing_summary().p95 * 1.1
    # Lyra+TunedJobs leads Lyra on p95 JCT (the §7.4 claim).
    assert tuned.jct_summary().p95 <= lyra.jct_summary().p95 * 1.05
