"""Figures 1 and 2 — the motivation measurements.

Fig. 1: inference-cluster GPU utilization over one week (diurnal, 42-95 %,
mean ~65 %, peak/trough ~2.2).  Fig. 2: the hourly fraction of
newly-submitted training jobs that queue under the status-quo scheduler,
at ~82 % training-cluster utilization with >3,000 s mean queuing.
"""

import numpy as np

from benchmarks.bench_util import emit, get_setup, run_cached
from repro.simulator.metrics import TimeSeries


def build_fig1():
    trace = get_setup().inference_trace
    util = np.asarray(trace.utilization)
    # 5-min samples bucketed into hours by the TimeSeries helpers.
    series = TimeSeries.from_samples(trace.utilization, interval=300.0)
    hours = series.hourly_means()
    return trace, util, series, hours


def bench_fig1_inference_utilization(benchmark):
    trace, util, series, hours = benchmark.pedantic(
        build_fig1, rounds=1, iterations=1
    )
    rows = [
        ["mean", float(np.mean(util)), 0.65],
        ["min (trough)", float(np.min(util)), 0.42],
        ["max (peak)", float(max(series.hourly_max())), 0.95],
        ["peak/trough", trace.peak_to_trough(), 2.2],
    ]
    sparkline = "".join(
        " .:-=+*#%@"[min(9, int(v * 10))] for v in hours[: 48]
    )
    emit(
        "fig1", "Fig. 1: inference cluster GPU utilization",
        ["statistic", "measured", "paper"], rows,
        notes=f"first 48 hourly samples: [{sparkline}]",
    )
    assert 0.55 <= float(np.mean(util)) <= 0.75
    assert trace.peak_to_trough() > 1.6  # strongly diurnal


def bench_fig2_queuing_ratio(benchmark):
    setup = get_setup()
    metrics = benchmark.pedantic(
        lambda: run_cached(setup, "baseline"), rounds=1, iterations=1
    )
    ratios = metrics.hourly_queuing_ratio
    rows = [
        ["mean hourly queuing ratio", float(np.mean(ratios)), "high"],
        ["max hourly queuing ratio", float(np.max(ratios)), 1.0],
        ["hours with ratio > 0.5", sum(r > 0.5 for r in ratios), "-"],
        ["mean queuing time (s)", metrics.queuing_summary().mean, 3072],
        ["training utilization", metrics.training_usage.mean(), 0.82],
    ]
    emit("fig2", "Fig. 2: hourly queuing-job ratio under the baseline",
         ["statistic", "measured", "paper"], rows)
    # The congestion regime: some hours see most submissions queue, and
    # the cluster still runs hot.
    assert float(np.max(ratios)) >= 0.8
    assert metrics.training_usage.mean() >= 0.7
    assert metrics.queuing_summary().mean > 1000.0
