"""Table 6 — placement without special treatment of elastic jobs.

Ablation of §5.3: instead of grouping elastic flexible demand onto
dedicated on-loan server groups, the scheduler runs plain BFD.  The paper
reports a preemption-ratio increase of up to 91 % (Ideal) plus queuing/JCT
degradation in Basic.
"""

from benchmarks.bench_util import emit, get_setup, run_cached


def build():
    setup = get_setup()
    rows = []
    ratios = {}
    for scenario in ("basic", "advanced", "ideal"):
        special = run_cached(setup, "lyra", scenario=scenario)
        naive = run_cached(
            setup, "lyra", scenario=scenario,
            sim_overrides={"special_elastic_grouping": False},
            cache_key="naive-placement",
        )
        rows.append(
            [
                scenario,
                naive.queuing_summary().mean,
                special.queuing_summary().mean,
                naive.jct_summary().mean,
                special.jct_summary().mean,
                naive.preemption_ratio,
                special.preemption_ratio,
                naive.mean_flex_satisfied(),
                special.mean_flex_satisfied(),
            ]
        )
        ratios[scenario] = (naive, special)
    return rows, ratios


def bench_table6_placement_ablation(benchmark):
    rows, ratios = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "table6", "Table 6: naive BFD vs elastic-aware placement",
        ["scenario", "queue naive", "queue lyra", "jct naive", "jct lyra",
         "preempt naive", "preempt lyra", "flexsat naive", "flexsat lyra"],
        rows,
    )
    # The flexible server group exists only under special placement, so
    # the preemption-free share of reclaim demand must drop without it.
    basic_naive, basic_special = ratios["basic"]
    assert (
        basic_naive.mean_flex_satisfied()
        <= basic_special.mean_flex_satisfied() + 0.05
    )
    # Naive placement never wins on preemptions in any scenario.
    for naive, special in ratios.values():
        assert naive.preemption_ratio >= special.preemption_ratio - 0.01
