"""Figure 13 — the effect of checkpointing on preemption damage.

Lyra's conservative default assumes no job checkpoints, so a preemption
restarts training from scratch.  As the fraction of checkpointing jobs
grows (0 % -> 100 %), preempted jobs resume instead of restarting and the
average JCT improves (the paper: 1.24x JCT reduction and near-zero
effective preemption damage at 80 %).

Run in the loan-heavy configuration of Fig. 10 so preemptions actually
occur at small scale.
"""

from dataclasses import replace

from benchmarks.bench_util import emit, get_setup, run_cached
from repro.scenarios import with_checkpointing_fraction


def build():
    setup = get_setup()
    loan_heavy = [replace(s, fungible=True) for s in setup.workload.specs]
    rows = []
    results = []
    for fraction in (0.0, 0.2, 0.5, 0.8, 1.0):
        specs = with_checkpointing_fraction(loan_heavy, fraction, seed=4)
        metrics = run_cached(
            setup, "lyra_loaning", specs=specs, cache_key=f"ckpt{fraction}"
        )
        results.append(metrics)
        rows.append(
            [
                f"{fraction:.0%}",
                metrics.queuing_summary().mean,
                metrics.jct_summary().mean,
                metrics.preemption_ratio,
            ]
        )
    return rows, results


def bench_fig13_checkpointing(benchmark):
    rows, results = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "fig13", "Fig. 13: impact of checkpointing fraction",
        ["ckpt %", "queue mean", "jct mean", "preempt ratio"],
        rows,
    )
    # Preemptions happen in this configuration, giving checkpoints
    # something to save.
    assert results[0].preemptions > 0
    # Full checkpointing improves mean JCT over no checkpointing.
    assert (
        results[-1].jct_summary().mean
        <= results[0].jct_summary().mean * 1.02
    )
