"""Figures 7 and 9 — usage time series.

Fig. 7: hourly combined cluster usage for 48 hours, Baseline vs Lyra in
Basic and Ideal — loaning lifts and flattens the diurnal usage curve.
Fig. 9: daily average resource usage of on-loan servers (the paper
reports consistently above 92 %).
"""

import numpy as np

from benchmarks.bench_util import emit, get_setup, run_cached


def build():
    setup = get_setup()
    return {
        "Baseline": run_cached(setup, "baseline"),
        "Basic": run_cached(setup, "lyra"),
        "Ideal": run_cached(setup, "lyra", scenario="ideal"),
    }


def bench_fig7_usage_timeline(benchmark):
    results = benchmark.pedantic(build, rounds=1, iterations=1)
    hourly = {
        name: metrics.overall_usage.hourly_means()[:48]
        for name, metrics in results.items()
    }
    rows = []
    for hour in range(0, min(48, len(hourly["Baseline"])), 4):
        rows.append(
            [
                hour,
                hourly["Baseline"][hour],
                hourly["Basic"][hour],
                hourly["Ideal"][hour],
            ]
        )
    base = hourly["Baseline"]
    basic = hourly["Basic"]
    notes = (
        f"means: baseline {np.mean(base):.3f}, basic {np.mean(basic):.3f}, "
        f"ideal {np.mean(hourly['Ideal']):.3f}; "
        f"std (flatness): baseline {np.std(base):.3f} vs basic {np.std(basic):.3f}"
    )
    emit("fig7", "Fig. 7: hourly combined usage over 48 h",
         ["hour", "baseline", "basic", "ideal"], rows, notes)
    # Loaning lifts the combined usage curve...
    assert np.mean(basic) > np.mean(base)
    # ...and flattens its diurnal swing once the cluster is warm (the
    # first hours are arrival-ramp noise at small scale).
    assert np.std(basic[12:]) <= np.std(base[12:]) * 1.10


def bench_fig9_onloan_usage(benchmark):
    setup = get_setup()
    metrics = benchmark.pedantic(
        lambda: run_cached(setup, "lyra_loaning"), rounds=1, iterations=1
    )
    gpu_series = metrics.onloan_usage
    busy_series = metrics.onloan_busy
    # Both series share sampling times, so their daily buckets align.
    gpu_daily = gpu_series.buckets(width=86400.0)
    busy_daily = busy_series.buckets(width=86400.0)
    rows = [
        [
            day,
            float(np.mean(gpu_daily[day])),
            float(np.mean(busy_daily[day])),
            len(gpu_daily[day]),
        ]
        for day in sorted(gpu_daily)
    ]
    mean_busy = float(np.mean(busy_series.values))
    emit("fig9", "Fig. 9: daily average usage of on-loan servers",
         ["day", "gpu usage", "server occupancy", "samples"],
         rows,
         notes=f"overall: gpu usage {float(np.mean(gpu_series.values)):.3f},"
               f" server occupancy {mean_busy:.3f} (paper metric: >0.92;"
               f" our footprint normalization caps per-server GPU usage"
               f" near 0.75)")
    assert len(busy_series.values) > 0
    # Demand-aware loaning keeps borrowed servers occupied.
    assert mean_busy > 0.5
