"""Figure 11 — sweeping the fraction of heterogeneous-capable jobs.

In the Heterogeneous scenario (no fungible load), raising the share of
jobs that can span GPU types from 10 % to 90 % increases the queuing/JCT
gains over Baseline, but the queuing gain approaches an asymptote around
50 % (heterogeneous training wastes throughput and the inference supply is
finite).
"""

from dataclasses import replace

from benchmarks.bench_util import emit, get_setup, reductions_vs, run_cached
from repro.scenarios import with_heterogeneous_fraction


def build():
    setup = get_setup()
    no_fungible = [replace(s, fungible=False) for s in setup.workload.specs]
    baseline = run_cached(setup, "baseline")
    rows = []
    for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
        specs = with_heterogeneous_fraction(no_fungible, fraction, seed=2)
        metrics = run_cached(
            setup, "lyra", specs=specs, cache_key=f"hetero{fraction}"
        )
        q_red, jct_red = reductions_vs(baseline, metrics)
        rows.append([f"{fraction:.0%}", q_red, jct_red,
                     metrics.preemption_ratio])
    return rows


def bench_fig11_heterogeneous_sweep(benchmark):
    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "fig11", "Fig. 11: gains vs fraction of heterogeneous jobs",
        ["hetero %", "queue reduction", "jct reduction", "preempt ratio"],
        rows,
    )
    # More heterogeneous capability helps (10 % -> 50 %)...
    assert rows[2][1] >= rows[0][1] * 0.9
    # ...but the queuing gain saturates: 90 % is not much better than 50 %.
    assert rows[4][1] <= rows[2][1] * 1.5
    # Every point beats Baseline.
    assert all(row[1] > 1.0 for row in rows)
