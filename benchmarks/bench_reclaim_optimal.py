"""§7.3 — Lyra's reclaiming heuristic versus the exhaustive optimum.

The paper: Lyra matches the optimal preemption count when reclaiming
fewer than 60 servers, picks 84 % of the optimum's servers on average,
and runs ~420,000x faster.  Here randomized reclaim instances are solved
by both; we report the match rate, overlap, and the runtime gap.
"""

import random
import time

from benchmarks.bench_util import emit
from repro.cluster.gpu import V100
from repro.cluster.server import Server
from repro.core.reclaim import plan_reclaim_lyra, plan_reclaim_optimal

from tests.conftest import make_job


def random_instance(seed: int, servers: int = 10):
    rng = random.Random(seed)
    machines = [
        Server(server_id=f"s{i}", gpu_type=V100, on_loan=True,
               home_cluster="inference")
        for i in range(servers)
    ]
    jobs = {}
    for job_id in range(rng.randint(3, 10)):
        job = make_job(job_id=job_id, max_workers=16)
        jobs[job_id] = job
        for server in rng.sample(machines, rng.randint(1, 3)):
            workers = min(rng.randint(1, 4), server.free_gpus)
            if workers > 0:
                job.record_placement(server.server_id, workers, flexible=False)
                server.allocate(job_id, workers)
    return machines, jobs


def build(instances: int = 30):
    matches = 0
    overlaps = []
    greedy_time = optimal_time = 0.0
    excess = 0
    for seed in range(instances):
        machines, jobs = random_instance(seed)
        count = random.Random(seed).randint(2, 5)
        t0 = time.perf_counter()
        greedy = plan_reclaim_lyra(machines, jobs, count)
        greedy_time += time.perf_counter() - t0
        t0 = time.perf_counter()
        optimal = plan_reclaim_optimal(machines, jobs, count)
        optimal_time += time.perf_counter() - t0
        if greedy.num_preemptions == optimal.num_preemptions:
            matches += 1
        else:
            excess += greedy.num_preemptions - optimal.num_preemptions
        if optimal.servers:
            overlap = len(set(greedy.servers) & set(optimal.servers)) / len(
                set(optimal.servers)
            )
            overlaps.append(overlap)
    return matches, instances, overlaps, excess, greedy_time, optimal_time


def bench_reclaim_vs_optimal(benchmark):
    matches, instances, overlaps, excess, g_time, o_time = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    mean_overlap = sum(overlaps) / len(overlaps)
    rows = [
        ["instances", instances],
        ["optimal matches", matches],
        ["total excess preemptions", excess],
        ["mean server overlap", mean_overlap],
        ["greedy total time (s)", g_time],
        ["optimal total time (s)", o_time],
        ["speedup", o_time / max(g_time, 1e-9)],
    ]
    emit("reclaim_optimal", "§7.3: greedy vs exhaustive-optimal reclaiming",
         ["metric", "value"], rows,
         notes="paper: optimal-matching below 60 servers, 84% overlap, "
               "420,000x runtime gap at production scale")
    # Greedy matches the optimum on most small instances...
    assert matches >= instances * 0.8
    # ...picks most of the optimum's servers...
    assert mean_overlap >= 0.7
    # ...and is much faster even at toy sizes.
    assert o_time > g_time
