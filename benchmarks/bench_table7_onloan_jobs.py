"""Table 7 — queuing time and JCT of jobs running on on-loan servers.

In the loaning-only setting, jobs that executed (mostly) on loaned
inference servers are exactly the jobs that would otherwise have waited in
the training queue; the paper reports a 4.68x median queuing improvement
for them versus the Baseline's same population.
"""

from benchmarks.bench_util import emit, get_setup, run_cached


def build():
    setup = get_setup()
    loaning = run_cached(setup, "lyra_loaning")
    baseline = run_cached(setup, "baseline")
    onloan_ids = loaning.onloan_job_ids(min_fraction=0.5)
    lyra_stats = loaning.summary_for(onloan_ids)
    base_stats = baseline.summary_for(onloan_ids)
    return onloan_ids, lyra_stats, base_stats


def bench_table7_onloan_jobs(benchmark):
    onloan_ids, lyra_stats, base_stats = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    rows = [
        [
            "Baseline",
            base_stats["queuing"].mean,
            base_stats["queuing"].median,
            base_stats["queuing"].p95,
            base_stats["jct"].mean,
            base_stats["jct"].median,
            base_stats["jct"].p95,
        ],
        [
            "Lyra (on-loan)",
            lyra_stats["queuing"].mean,
            lyra_stats["queuing"].median,
            lyra_stats["queuing"].p95,
            lyra_stats["jct"].mean,
            lyra_stats["jct"].median,
            lyra_stats["jct"].p95,
        ],
    ]
    emit(
        "table7",
        f"Table 7: the {len(onloan_ids)} jobs that ran on on-loan servers",
        ["scheme", "qmean", "qmed", "q95", "jct_mean", "jct_med", "jct95"],
        rows,
    )
    assert onloan_ids, "no jobs ran on loaned servers"
    # Those jobs waited (much) less than they would have under Baseline.
    assert lyra_stats["queuing"].mean < base_stats["queuing"].mean
    assert lyra_stats["jct"].mean <= base_stats["jct"].mean * 1.05
