"""Figure 10 — reclaiming heuristics: preemption ratio and collateral
damage for Random / SCF / Lyra, with elastic scaling disabled and enabled.

To expose the heuristics, the workload here is loan-heavy (every job
fungible, high load) and the inference cluster runs a sharper diurnal
cycle, so reclaims routinely hit occupied servers.
"""

from dataclasses import replace

from benchmarks.bench_util import emit, get_setup, run_cached


def stressed_specs(setup):
    """Make every job loan-eligible so reclaims have real targets."""
    return [replace(s, fungible=True) for s in setup.workload.specs]


def build():
    setup = get_setup()
    specs = stressed_specs(setup)
    rows = []
    cells = {}
    for elastic, label in ((False, "scaling off"), (True, "scaling on")):
        for scheme, name in (
            ("random_loaning", "Random"),
            ("scf_loaning", "SCF"),
            ("lyra_loaning", "Lyra"),
        ):
            metrics = run_cached(
                setup,
                scheme,
                specs=specs,
                cache_key=f"fig10-{label}",
                sim_overrides={"elastic": elastic},
            )
            cells[(label, name)] = metrics
            rows.append(
                [
                    label,
                    name,
                    metrics.preemption_ratio,
                    metrics.mean_collateral(),
                    metrics.mean_flex_satisfied(),
                    sum(metrics.reclaim_ops),
                ]
            )
    return rows, cells


def bench_fig10_reclaim_comparison(benchmark):
    rows, cells = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "fig10", "Fig. 10: reclaiming heuristics comparison",
        ["mode", "scheme", "preempt ratio", "collateral", "flex satisfied",
         "servers reclaimed"],
        rows,
    )
    # Lyra's knapsack-based selection preempts no more than Random in
    # both modes (paper: 1.68x fewer without scaling).
    for mode in ("scaling off", "scaling on"):
        assert (
            cells[(mode, "Lyra")].preemption_ratio
            <= cells[(mode, "Random")].preemption_ratio + 1e-9
        )
    # With scaling on, the flexible group absorbs part of the demand.
    assert cells[("scaling on", "Lyra")].mean_flex_satisfied() > 0
    # Enabling scaling reduces Lyra's preemptions (§7.2).
    assert (
        cells[("scaling on", "Lyra")].preemption_ratio
        <= cells[("scaling off", "Lyra")].preemption_ratio + 0.01
    )
