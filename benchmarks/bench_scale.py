"""Scheduling-epoch latency at cluster scale, per view backend.

Runs the same seeded workload through the simulator once per view
backend — ``legacy`` (full scan each epoch), ``incremental`` (the
delta-maintained :class:`~repro.core.view.ClusterView`) and ``array``
(the structure-of-arrays mirror in :mod:`repro.core.arrays`) — and
reports the mean wall-clock cost of one scheduling epoch (the
``scheduler.tick`` profiler phase) for each.  All backends must produce
byte-identical activity logs: the fast paths are optimisations, not
behaviour changes, and this bench fails hard if the logs ever differ.

Not a pytest bench: run it directly.

    python benchmarks/bench_scale.py                 # full sweep, minutes
    python benchmarks/bench_scale.py --quick         # CI smoke, seconds
    python benchmarks/bench_scale.py --xl \\
        --out benchmarks/results/BENCH_scale_array.json   # 16k/200k tier
    python benchmarks/bench_scale.py --quick \\
        --baseline benchmarks/results/BENCH_scale_quick_baseline.json

The ``--xl`` tier (16,384 servers / 200,000 jobs) skips the legacy
backend — a full object scan per epoch is intractable there, which is
the point — and additionally enforces the array acceptance bar: >= 5x
mean-epoch speedup over the incremental backend and a sub-150 ms mean
epoch.  (An XL epoch is not idle bookkeeping: it admits and places
~200 jobs, each an inherently sequential plan commit, so the absolute
bar guards against scan regressions rather than claiming interactive
latency — measured means are ~95-104 ms vs ~1.9-2.7 s incremental.)
Results land in ``BENCH_scale.json`` (override with ``--out``).
With ``--baseline`` the run fails when any backend's mean epoch latency
regresses past 2x the committed baseline for any cell.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.cluster.cluster import (  # noqa: E402
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.ioutil import atomic_write  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.obs.profiling import (  # noqa: E402
    PHASE_SCHEDULER_TICK,
    PhaseProfiler,
)
from repro.obs.tracer import Tracer  # noqa: E402
from repro.schedulers.fifo import FIFOScheduler, SJFScheduler  # noqa: E402
from repro.simulator.simulation import (  # noqa: E402
    Simulation,
    SimulationConfig,
)
from repro.traces.workload import (  # noqa: E402
    TraceConfig,
    generate_workload,
)

SCHEMES = {"fifo": FIFOScheduler, "sjf": SJFScheduler}

BACKENDS = ("legacy", "incremental", "array")

#: (training servers, jobs) per sweep point; the largest full-sweep
#: point is the original acceptance scale (>= 2,000 / >= 20,000).
FULL_SCALES = [(256, 2500), (1024, 10000), (2048, 20000)]
QUICK_SCALES = [(48, 500), (128, 1200)]
#: the array-backend acceptance scale; legacy is skipped here
XL_SCALES = [(16384, 200000)]

DAYS = 0.25
SEED = 11
TARGET_LOAD = 0.8
REGRESSION_FACTOR = 2.0
#: --xl acceptance: array mean epoch vs the incremental backend, plus
#: an absolute regression guard.  At this scale one epoch admits and
#: places ~200 jobs (200k jobs / 944 epochs), each a sequential plan
#: commit, so the absolute bar is ~1.5x the measured ~104 ms mean —
#: loose enough for machine noise, tight enough that any return of a
#: per-epoch O(servers) or O(pending) Python scan (the incremental
#: backend sits at 1.9-2.7 s here) trips it immediately.
XL_MIN_ARRAY_SPEEDUP = 5.0
XL_MAX_ARRAY_MEAN_MS = 150.0


def _digest(activities) -> str:
    h = hashlib.sha256()
    for a in activities:
        h.update(
            f"{a.time!r}|{a.kind.value}|{a.job_id!r}|{a.detail!r}\n".encode()
        )
    return h.hexdigest()


def _run_once(specs, servers: int, scheme: str, backend: str):
    pair = ClusterPair(
        make_training_cluster(servers), make_inference_cluster(4)
    )
    obs = Observability(tracer=Tracer.disabled(), phases=PhaseProfiler())
    sim = Simulation(
        specs,
        pair,
        SCHEMES[scheme](),
        config=SimulationConfig(
            record_activities=True, view_backend=backend
        ),
        obs=obs,
    )
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    total = obs.phases.totals.get(PHASE_SCHEDULER_TICK, 0.0)
    calls = obs.phases.counts.get(PHASE_SCHEDULER_TICK, 0)
    return sim, {
        "wall_s": round(wall, 3),
        "epoch_total_s": round(total, 3),
        "epochs": calls,
        "mean_ms": round(1e3 * total / calls, 4) if calls else 0.0,
        "epochs_skipped": sim._epochs_skipped,
    }


def run_cell(servers: int, jobs: int, scheme: str, backends) -> dict:
    specs = generate_workload(
        TraceConfig(
            num_jobs=jobs,
            days=DAYS,
            cluster_gpus=servers * 8,
            seed=SEED,
            target_load=TARGET_LOAD,
        )
    ).specs
    stats, digests, events = {}, {}, {}
    for backend in backends:
        sim, stats[backend] = _run_once(specs, servers, scheme, backend)
        digests[backend] = _digest(sim.activities)
        events[backend] = len(sim.activities)
        del sim
    identical = len(set(digests.values())) == 1
    ref = backends[0]

    def _speedup(slow: str, fast: str):
        if slow not in stats or fast not in stats:
            return None
        fast_ms = stats[fast]["mean_ms"]
        return round(stats[slow]["mean_ms"] / fast_ms, 3) if fast_ms else None

    return {
        "servers": servers,
        "jobs": jobs,
        "scheme": scheme,
        "backends": stats,
        "speedup_vs_legacy": {
            b: _speedup("legacy", b)
            for b in backends
            if b != "legacy" and "legacy" in stats
        },
        "array_over_incremental": _speedup("incremental", "array"),
        "events": events[ref],
        "logs_identical": identical,
        "sha256": digests[ref],
    }


def check_baseline(cells, baseline_path: str) -> list:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    ref = {}
    for c in baseline["cells"]:
        for backend, stats in c["backends"].items():
            key = (c["servers"], c["jobs"], c["scheme"], backend)
            ref[key] = stats["mean_ms"]
    failures = []
    for cell in cells:
        for backend, stats in cell["backends"].items():
            key = (cell["servers"], cell["jobs"], cell["scheme"], backend)
            if key not in ref:
                continue
            limit = REGRESSION_FACTOR * ref[key]
            if stats["mean_ms"] > limit:
                failures.append(
                    f"{key}: mean {stats['mean_ms']:.3f} ms "
                    f"> {REGRESSION_FACTOR}x baseline {ref[key]:.3f} ms"
                )
    return failures


def _print_cell(cell: dict) -> None:
    cols = "  ".join(
        f"{b} {s['mean_ms']:8.3f} ms"
        for b, s in cell["backends"].items()
    )
    extras = []
    if cell["array_over_incremental"]:
        extras.append(f"array/incr {cell['array_over_incremental']:.2f}x")
    for b, s in sorted(cell["speedup_vs_legacy"].items()):
        if s:
            extras.append(f"{b}/legacy {s:.2f}x")
    print(
        f"{cell['scheme']:4s} {cell['servers']:5d} servers "
        f"{cell['jobs']:6d} jobs  {cols}  {' '.join(extras)}  "
        f"identical={cell['logs_identical']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small scales for CI smoke runs")
    parser.add_argument("--xl", action="store_true",
                        help="the 16k-server / 200k-job acceptance tier "
                             "(incremental + array backends only)")
    parser.add_argument("--out", default="BENCH_scale.json",
                        help="result JSON path")
    parser.add_argument("--baseline",
                        help="committed baseline JSON; fail on >2x "
                             "per-backend epoch-latency regression")
    args = parser.parse_args(argv)
    if args.quick and args.xl:
        parser.error("--quick and --xl are mutually exclusive")

    if args.xl:
        scales, backends = XL_SCALES, ("incremental", "array")
    elif args.quick:
        scales, backends = QUICK_SCALES, BACKENDS
    else:
        scales, backends = FULL_SCALES, BACKENDS

    cells = []
    for servers, jobs in scales:
        for scheme in sorted(SCHEMES):
            cell = run_cell(servers, jobs, scheme, backends)
            cells.append(cell)
            _print_cell(cell)

    top = [c for c in cells if c["servers"] >= 2000 and c["jobs"] >= 20000]
    array_speedups = [
        c["array_over_incremental"]
        for c in cells
        if c["array_over_incremental"]
    ]
    result = {
        "config": {
            "days": DAYS,
            "seed": SEED,
            "target_load": TARGET_LOAD,
            "quick": args.quick,
            "xl": args.xl,
            "backends": list(backends),
        },
        "cells": cells,
        "all_logs_identical": all(c["logs_identical"] for c in cells),
        "min_array_over_incremental": (
            min(array_speedups) if array_speedups else None
        ),
        "acceptance_scale_array_over_incremental": (
            min(c["array_over_incremental"] for c in top) if top else None
        ),
        "max_array_mean_ms": max(
            c["backends"]["array"]["mean_ms"]
            for c in cells
            if "array" in c["backends"]
        ),
    }
    with atomic_write(args.out) as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not result["all_logs_identical"]:
        print("FAIL: a view backend changed the activity log",
              file=sys.stderr)
        return 1
    if args.xl:
        bar = result["acceptance_scale_array_over_incremental"]
        if bar is None or bar < XL_MIN_ARRAY_SPEEDUP:
            print(
                f"FAIL: array-over-incremental speedup {bar} below the "
                f"{XL_MIN_ARRAY_SPEEDUP}x acceptance bar",
                file=sys.stderr,
            )
            return 1
        if result["max_array_mean_ms"] > XL_MAX_ARRAY_MEAN_MS:
            print(
                f"FAIL: array mean epoch "
                f"{result['max_array_mean_ms']:.3f} ms exceeds the "
                f"{XL_MAX_ARRAY_MEAN_MS} ms bar",
                file=sys.stderr,
            )
            return 1
    if args.baseline:
        failures = check_baseline(cells, args.baseline)
        if failures:
            for line in failures:
                print(f"FAIL: {line}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
