"""Scheduling-epoch latency at cluster scale: incremental view vs scan.

Runs the same seeded workload through the simulator twice per cell —
once with the legacy full-scan path (``incremental_view=False``) and
once with the delta-maintained :class:`~repro.core.view.ClusterView` —
and reports the mean wall-clock cost of one scheduling epoch (the
``scheduler.tick`` profiler phase) for each mode.  The two runs must
produce byte-identical activity logs: the view is an optimisation, not
a behaviour change, and this bench fails hard if the logs ever differ.

Not a pytest bench: run it directly.

    python benchmarks/bench_scale.py                 # full sweep, minutes
    python benchmarks/bench_scale.py --quick         # CI smoke, seconds
    python benchmarks/bench_scale.py --quick \\
        --baseline benchmarks/results/BENCH_scale_quick_baseline.json

Results land in ``BENCH_scale.json`` (override with ``--out``).  With
``--baseline`` the run additionally fails when the view-mode mean epoch
latency regresses past 2x the committed baseline for any cell.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.cluster.cluster import (  # noqa: E402
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.ioutil import atomic_write  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.obs.profiling import (  # noqa: E402
    PHASE_SCHEDULER_TICK,
    PhaseProfiler,
)
from repro.obs.tracer import Tracer  # noqa: E402
from repro.schedulers.fifo import FIFOScheduler, SJFScheduler  # noqa: E402
from repro.simulator.simulation import (  # noqa: E402
    Simulation,
    SimulationConfig,
)
from repro.traces.workload import (  # noqa: E402
    TraceConfig,
    generate_workload,
)

SCHEMES = {"fifo": FIFOScheduler, "sjf": SJFScheduler}

#: (training servers, jobs) per sweep point; the largest full-sweep
#: point is the acceptance scale (>= 2,000 servers / >= 20,000 jobs).
FULL_SCALES = [(256, 2500), (1024, 10000), (2048, 20000)]
QUICK_SCALES = [(48, 500), (128, 1200)]

DAYS = 0.25
SEED = 11
TARGET_LOAD = 0.8
REGRESSION_FACTOR = 2.0


def _digest(activities) -> str:
    h = hashlib.sha256()
    for a in activities:
        h.update(
            f"{a.time!r}|{a.kind.value}|{a.job_id!r}|{a.detail!r}\n".encode()
        )
    return h.hexdigest()


def _run_once(specs, servers: int, scheme: str, incremental: bool):
    pair = ClusterPair(
        make_training_cluster(servers), make_inference_cluster(4)
    )
    obs = Observability(tracer=Tracer.disabled(), phases=PhaseProfiler())
    sim = Simulation(
        specs,
        pair,
        SCHEMES[scheme](),
        config=SimulationConfig(
            record_activities=True, incremental_view=incremental
        ),
        obs=obs,
    )
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    total = obs.phases.totals.get(PHASE_SCHEDULER_TICK, 0.0)
    calls = obs.phases.counts.get(PHASE_SCHEDULER_TICK, 0)
    return sim, {
        "wall_s": round(wall, 3),
        "epoch_total_s": round(total, 3),
        "epochs": calls,
        "mean_ms": round(1e3 * total / calls, 4) if calls else 0.0,
        "epochs_skipped": sim._epochs_skipped,
    }


def run_cell(servers: int, jobs: int, scheme: str) -> dict:
    specs = generate_workload(
        TraceConfig(
            num_jobs=jobs,
            days=DAYS,
            cluster_gpus=servers * 8,
            seed=SEED,
            target_load=TARGET_LOAD,
        )
    ).specs
    legacy_sim, legacy = _run_once(specs, servers, scheme, incremental=False)
    view_sim, view = _run_once(specs, servers, scheme, incremental=True)
    identical = legacy_sim.activities == view_sim.activities
    speedup = (
        legacy["mean_ms"] / view["mean_ms"] if view["mean_ms"] else None
    )
    return {
        "servers": servers,
        "jobs": jobs,
        "scheme": scheme,
        "legacy": legacy,
        "view": view,
        "speedup": round(speedup, 3) if speedup else None,
        "events": len(view_sim.activities),
        "logs_identical": identical,
        "sha256": _digest(view_sim.activities),
    }


def check_baseline(cells, baseline_path: str) -> list:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    ref = {
        (c["servers"], c["jobs"], c["scheme"]): c["view"]["mean_ms"]
        for c in baseline["cells"]
    }
    failures = []
    for cell in cells:
        key = (cell["servers"], cell["jobs"], cell["scheme"])
        if key not in ref:
            continue
        limit = REGRESSION_FACTOR * ref[key]
        if cell["view"]["mean_ms"] > limit:
            failures.append(
                f"{key}: view mean {cell['view']['mean_ms']:.3f} ms "
                f"> {REGRESSION_FACTOR}x baseline {ref[key]:.3f} ms"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small scales for CI smoke runs")
    parser.add_argument("--out", default="BENCH_scale.json",
                        help="result JSON path")
    parser.add_argument("--baseline",
                        help="committed baseline JSON; fail on >2x "
                             "view-mode epoch-latency regression")
    args = parser.parse_args(argv)

    scales = QUICK_SCALES if args.quick else FULL_SCALES
    cells = []
    for servers, jobs in scales:
        for scheme in sorted(SCHEMES):
            cell = run_cell(servers, jobs, scheme)
            cells.append(cell)
            print(
                f"{scheme:4s} {servers:5d} servers {jobs:6d} jobs  "
                f"legacy {cell['legacy']['mean_ms']:8.3f} ms  "
                f"view {cell['view']['mean_ms']:8.3f} ms  "
                f"speedup {cell['speedup']:.2f}x  "
                f"skipped {cell['view']['epochs_skipped']:5d}  "
                f"identical={cell['logs_identical']}"
            )

    top = [c for c in cells if c["servers"] >= 2000 and c["jobs"] >= 20000]
    result = {
        "config": {
            "days": DAYS,
            "seed": SEED,
            "target_load": TARGET_LOAD,
            "quick": args.quick,
        },
        "cells": cells,
        "all_logs_identical": all(c["logs_identical"] for c in cells),
        "min_speedup": min(c["speedup"] for c in cells),
        "acceptance_scale_speedup": (
            min(c["speedup"] for c in top) if top else None
        ),
    }
    with atomic_write(args.out) as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not result["all_logs_identical"]:
        print("FAIL: incremental view changed the activity log",
              file=sys.stderr)
        return 1
    if args.baseline:
        failures = check_baseline(cells, args.baseline)
        if failures:
            for line in failures:
                print(f"FAIL: {line}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
