"""Table 5 — simulation results in different scenarios using different
schemes (the paper's main table).

Rows 1-5: Baseline FIFO and full Lyra under Basic / Advanced /
Heterogeneous / Ideal.  Rows 6-9: capacity loaning only (Opportunistic,
Random, SCF, Lyra).  Rows 10-14: elastic scaling only (Gandiva, AFS,
Pollux, Lyra, Lyra+TunedJobs).

Shape assertions (not absolute numbers): Lyra reduces mean queuing and
JCT versus Baseline; Ideal is the upper bound among scenarios; the Lyra
reclaimer preempts no more than Random; Lyra+TunedJobs beats plain Lyra
scaling on JCT.
"""

from benchmarks.bench_util import (
    SCHEME_HEADERS,
    emit,
    get_setup,
    reductions_vs,
    run_cached,
    scheme_row,
)


def build_table():
    setup = get_setup()
    rows = []
    cells = {}

    def add(label, scheme, scenario="basic", **kw):
        metrics = run_cached(setup, scheme, scenario=scenario, **kw)
        cells[label] = metrics
        rows.append(scheme_row(label, metrics))
        return metrics

    add("Baseline", "baseline")
    add("Basic/Lyra", "lyra")
    add("Advanced/Lyra", "lyra", scenario="advanced")
    add("Heterogeneous/Lyra", "lyra", scenario="heterogeneous")
    add("Ideal/Lyra", "lyra", scenario="ideal")
    add("CL/Opportunistic", "opportunistic")
    add("CL/Random", "random_loaning")
    add("CL/SCF", "scf_loaning")
    add("CL/Lyra", "lyra_loaning")
    add("ES/Gandiva", "gandiva")
    add("ES/AFS", "afs")
    add("ES/Pollux", "pollux")
    add("ES/Lyra", "lyra_scaling")
    add("ES/Lyra+TunedJobs", "lyra_tuned")
    return rows, cells


def bench_table5_main_results(benchmark):
    rows, cells = benchmark.pedantic(build_table, rounds=1, iterations=1)

    baseline = cells["Baseline"]
    q_red, jct_red = reductions_vs(baseline, cells["Basic/Lyra"])
    notes = (
        f"Lyra vs Baseline (Basic): queuing reduction {q_red:.2f}x "
        f"(paper 1.53x), JCT reduction {jct_red:.2f}x (paper 1.48x)\n"
        f"Overall usage: {baseline.overall_usage.mean():.2f} -> "
        f"{cells['Basic/Lyra'].overall_usage.mean():.2f} "
        f"(paper 0.52 -> 0.65)"
    )
    emit("table5", "Table 5: main simulation results", SCHEME_HEADERS, rows,
         notes)

    # --- shape assertions -------------------------------------------------
    basic = cells["Basic/Lyra"]
    ideal = cells["Ideal/Lyra"]
    assert basic.queuing_summary().mean < baseline.queuing_summary().mean
    assert basic.jct_summary().mean < baseline.jct_summary().mean
    assert basic.overall_usage.mean() > baseline.overall_usage.mean()
    # Ideal is the performance upper bound (row 5).
    assert ideal.jct_summary().mean <= basic.jct_summary().mean * 1.05
    # Loaning-only group: Lyra's reclaimer preempts the least (row 7-9).
    assert (
        cells["CL/Lyra"].preemption_ratio
        <= cells["CL/Random"].preemption_ratio
    )
    # Scaling-only group: tuning adds JCT gains (rows 13-14).
    assert (
        cells["ES/Lyra+TunedJobs"].jct_summary().mean
        <= cells["ES/Lyra"].jct_summary().mean * 1.05
    )
    # Scaling helps loaning (§7.2): with elastic scaling on, part of
    # every reclaim demand is satisfied by the flex group preemption-free.
    assert basic.mean_flex_satisfied() >= cells["CL/Lyra"].mean_flex_satisfied() - 0.05
