"""§6 — the LSTM inference-usage predictor.

Reproduces the implementation claim: a window-10 two-layer LSTM trained
with Adam on MSE reaches a small average loss (the paper: 4.8e-4 over
1,440 samples), and using it lets the orchestrator initiate reclaiming
ahead of traffic rises.
"""

from benchmarks.bench_util import emit, get_setup, run_cached
from repro.predictor.predictor import UsagePredictor


def build():
    setup = get_setup()
    predictor = UsagePredictor(window=10, hidden_dim=16, lr=1e-2, seed=0)
    history = predictor.fit_trace(
        setup.inference_trace, epochs=10, max_samples=1000
    )
    eval_mse = predictor.evaluate(setup.inference_trace, start=0)

    reactive = run_cached(setup, "lyra")
    predictive = run_cached(
        setup, "lyra", predictor=predictor, cache_key="predictive"
    )
    return history, eval_mse, reactive, predictive


def bench_predictor(benchmark):
    history, eval_mse, reactive, predictive = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    rows = [
        ["training MSE (first epoch)", history[0]],
        ["training MSE (final epoch)", history[-1]],
        ["evaluation MSE (full trace)", eval_mse],
        ["paper-reported loss", 4.8e-4],
        ["reactive preemption ratio", reactive.preemption_ratio],
        ["predictive preemption ratio", predictive.preemption_ratio],
        ["reactive mean JCT", reactive.jct_summary().mean],
        ["predictive mean JCT", predictive.jct_summary().mean],
    ]
    emit("predictor", "§6: LSTM usage predictor", ["metric", "value"], rows)
    # Training converges by an order of magnitude...
    assert history[-1] < history[0] / 5
    # ...to the same order of magnitude as the paper's loss.
    assert eval_mse < 5e-3
    # Early reclaiming must not increase preemptions.
    assert predictive.preemption_ratio <= reactive.preemption_ratio + 0.02
