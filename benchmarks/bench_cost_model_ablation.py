"""Table 1 ablation — the three server-preemption-cost definitions.

§4 argues that job count and GPU fraction mis-rank servers whose jobs
span machines, and picks the *server fraction* definition.  This bench
runs the greedy reclaimer under all three cost models over randomized
instances (plus the paper's Fig. 5 example) and counts preemptions: the
server-fraction model must never lose on average.
"""

import random

from benchmarks.bench_util import emit
from repro.cluster.gpu import V100
from repro.cluster.server import Server
from repro.core.reclaim import CostModel, plan_reclaim_lyra

from tests.conftest import make_job
from tests.test_reclaim import fig5_instance


def random_instance(seed: int, servers: int = 8):
    rng = random.Random(seed)
    machines = [
        Server(server_id=f"s{i}", gpu_type=V100, on_loan=True,
               home_cluster="inference")
        for i in range(servers)
    ]
    jobs = {}
    for job_id in range(rng.randint(3, 9)):
        job = make_job(job_id=job_id, max_workers=16)
        jobs[job_id] = job
        for server in rng.sample(machines, rng.randint(1, 3)):
            workers = min(rng.randint(1, 4), server.free_gpus)
            if workers > 0:
                job.record_placement(server.server_id, workers,
                                     flexible=False)
                server.allocate(job_id, workers)
    return machines, jobs


def build(instances: int = 60):
    totals = {model: 0 for model in CostModel}
    wins = {model: 0 for model in CostModel}
    for seed in range(instances):
        machines, jobs = random_instance(seed)
        count = random.Random(seed).randint(2, 4)
        preemptions = {}
        for model in CostModel:
            plan = plan_reclaim_lyra(machines, jobs, count, cost_model=model)
            preemptions[model] = plan.num_preemptions
            totals[model] += plan.num_preemptions
        best = min(preemptions.values())
        for model, value in preemptions.items():
            if value == best:
                wins[model] += 1

    # the paper's worked example
    fig5 = {}
    for model in CostModel:
        servers, jobs = fig5_instance()
        fig5[model] = plan_reclaim_lyra(
            servers, jobs, 2, cost_model=model
        ).num_preemptions
    return totals, wins, fig5, instances


def bench_cost_model_ablation(benchmark):
    totals, wins, fig5, instances = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    rows = [
        [
            model.value,
            totals[model],
            totals[model] / instances,
            wins[model],
            fig5[model],
        ]
        for model in CostModel
    ]
    emit(
        "cost_models", "Table 1 ablation: preemption-cost definitions",
        ["cost model", "total preemptions", "mean/instance", "ties-for-best",
         "Fig.5 (Nr=2)"],
        rows,
    )
    sf = CostModel.SERVER_FRACTION
    # Lyra's choice never does worse in aggregate than either alternative.
    assert totals[sf] <= totals[CostModel.JOB_COUNT]
    assert totals[sf] <= totals[CostModel.GPU_FRACTION]
    # And on the paper's own example it achieves the optimal single
    # preemption while GPU-fraction pays two.
    assert fig5[sf] == 1
    assert fig5[CostModel.GPU_FRACTION] >= 2
