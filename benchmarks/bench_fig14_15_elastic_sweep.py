"""Figures 14 and 15 — gains versus the fraction of elastic jobs.

Sweeping elastic jobs from 20 % to 100 % of the population (scaling-only,
no loaning): every scheme's queuing and JCT reductions over Baseline grow,
and Lyra delivers the largest gains — AFS tracks it on queuing (both admit
base demand first) but trails on JCT; Pollux trails on queuing.
"""

from benchmarks.bench_util import emit, get_setup, reductions_vs, run_cached
from repro.scenarios import apply_scenario, with_elastic_fraction

SCHEMES = [
    ("Gandiva", "gandiva"),
    ("AFS", "afs"),
    ("Pollux", "pollux"),
    ("Lyra", "lyra_scaling"),
    ("Lyra+Tuned", "lyra_tuned"),
]

FRACTIONS = (0.2, 0.6, 1.0)


def build():
    setup = get_setup()
    base_specs = apply_scenario(setup.workload.specs, "basic")
    queue_rows, jct_rows = [], []
    gains = {}
    for fraction in FRACTIONS:
        specs = with_elastic_fraction(base_specs, fraction, seed=6)
        baseline = run_cached(
            setup, "baseline", specs=specs, cache_key=f"frac{fraction}"
        )
        q_row, j_row = [f"{fraction:.0%}"], [f"{fraction:.0%}"]
        for name, scheme in SCHEMES:
            metrics = run_cached(
                setup, scheme, specs=specs, cache_key=f"frac{fraction}"
            )
            q_red, jct_red = reductions_vs(baseline, metrics)
            gains[(fraction, name)] = (q_red, jct_red)
            q_row.append(q_red)
            j_row.append(jct_red)
        queue_rows.append(q_row)
        jct_rows.append(j_row)
    return queue_rows, jct_rows, gains


def bench_fig14_15_elastic_sweep(benchmark):
    queue_rows, jct_rows, gains = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    headers = ["elastic %"] + [name for name, _ in SCHEMES]
    emit("fig14", "Fig. 14: queuing-time reduction vs elastic fraction",
         headers, queue_rows)
    emit("fig15", "Fig. 15: JCT reduction vs elastic fraction",
         headers, jct_rows)
    # Lyra's JCT gain grows with the elastic share.
    assert gains[(1.0, "Lyra")][1] >= gains[(0.2, "Lyra")][1] * 0.95
    # At full elasticity Lyra leads Gandiva on both metrics.
    assert gains[(1.0, "Lyra")][0] >= gains[(1.0, "Gandiva")][0]
    assert gains[(1.0, "Lyra")][1] >= gains[(1.0, "Gandiva")][1]
    # Tuning dominates plain Lyra on JCT at full elasticity.
    assert gains[(1.0, "Lyra+Tuned")][1] >= gains[(1.0, "Lyra")][1] * 0.95
