"""Robustness under node failures (extension).

The production clusters the paper draws from lose nodes routinely; the
resource-manager substrate injects exponential node failures and repairs.
This bench measures how gracefully Baseline and Lyra degrade: Lyra must
keep its advantage, and elastic jobs should convert some base-worker
losses into scale-ins instead of restarts.
"""

from benchmarks.bench_util import emit, get_setup, run_cached


def build():
    setup = get_setup()
    rows = []
    cells = {}
    for mtbf, label in ((None, "no failures"), (21600.0, "MTBF 6 h"),
                        (7200.0, "MTBF 2 h")):
        for scheme in ("baseline", "lyra"):
            overrides = {"node_mtbf": mtbf} if mtbf else {}
            metrics = run_cached(
                setup, scheme,
                sim_overrides=overrides,
                cache_key=f"fail-{label}",
            )
            cells[(label, scheme)] = metrics
            rows.append(
                [
                    label,
                    scheme,
                    metrics.node_failures,
                    metrics.preemptions,
                    metrics.queuing_summary().mean,
                    metrics.jct_summary().mean,
                    metrics.completion_ratio(),
                ]
            )
    return rows, cells


def bench_failure_robustness(benchmark):
    rows, cells = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "failures", "Extension: degradation under injected node failures",
        ["failures", "scheme", "nodes lost", "preemptions", "queue mean",
         "jct mean", "completed"],
        rows,
    )
    # Failures actually happened at the aggressive setting...
    assert cells[("MTBF 2 h", "lyra")].node_failures > 0
    # ...everything still completes...
    for metrics in cells.values():
        assert metrics.completion_ratio() >= 0.99
    # ...and Lyra keeps beating Baseline on JCT at every failure rate.
    for label in ("no failures", "MTBF 6 h", "MTBF 2 h"):
        assert (
            cells[(label, "lyra")].jct_summary().mean
            < cells[(label, "baseline")].jct_summary().mean
        )
