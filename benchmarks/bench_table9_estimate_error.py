"""Table 9 — sensitivity to running-time estimation error.

Lyra's SJF ordering and MCKP values rely on runtime predictions.  Here a
growing fraction of jobs (20/40/60 %) get estimates wrong by a uniform
factor within +/-25 %; the queuing/JCT reductions over Baseline must
degrade only gracefully (the paper: still 1.76x queuing gain at 60 %
wrong).
"""

from benchmarks.bench_util import emit, get_setup, reductions_vs, run_cached


def build():
    setup = get_setup()
    baseline = run_cached(setup, "baseline")
    rows = []
    for wrong in (0.0, 0.2, 0.4, 0.6):
        metrics = run_cached(
            setup,
            "lyra",
            estimate_error=(wrong, 0.25) if wrong else None,
            cache_key=f"err{wrong}",
        )
        q_red, jct_red = reductions_vs(baseline, metrics)
        rows.append([f"{wrong:.0%}", q_red, jct_red])
    # organic errors: the §3 profiler learns estimates online instead of
    # receiving oracle durations
    profiled = run_cached(
        setup, "lyra", sim_overrides={"use_profiler": True},
        cache_key="profiler",
    )
    q_red, jct_red = reductions_vs(baseline, profiled)
    rows.append(["profiler", q_red, jct_red])
    return rows


def bench_table9_estimate_error(benchmark):
    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "table9", "Table 9: gains under runtime-estimate error",
        ["wrong predictions", "queue reduction", "jct reduction"],
        rows,
    )
    # Gains persist even at 60 % wrong predictions...
    assert rows[3][1] > 1.0
    assert rows[3][2] > 1.0
    # ...degrade by less than half versus perfect estimates...
    assert rows[3][1] > rows[0][1] * 0.5
    # ...and the online profiler's organic errors also keep the gains.
    assert rows[4][1] > 1.0 and rows[4][2] > 1.0
