"""Capacity-market benchmark: N×M broker clearing vs the single pair.

Runs the same workload on the same total hardware three ways:

* ``pair``  — the classic 1 inference + 1 training ClusterPair;
* ``1x1``   — the degenerate market (ClusterSet + CapacityBroker), which
  must match the pair's scheduling metrics exactly (the golden-log suite
  pins this byte-for-byte; here it shows up as identical JCT/queuing);
* ``2x2``   — two lenders in staggered time zones, two training regions,
  broker-cleared with contracts and transfer costs.

Reported per topology: queuing/JCT summaries, training usage, loan and
reclaim operation counts, wall time, and the market accounting (contracts
opened, early recalls, penalties, transfer cost).  Run directly::

    python benchmarks/bench_market.py [--json OUT.json]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.market import market_config_from_spec
from repro.scenarios import build_sim

from bench_util import emit, get_setup


def run_topology(label: str, market_spec=None, seed: int = 0):
    setup = get_setup(seed=seed)
    market = (
        market_config_from_spec(market_spec) if market_spec else None
    )
    sim = build_sim(setup, "lyra", seed=seed, market=market)
    started = time.perf_counter()
    metrics = sim.run()
    wall = time.perf_counter() - started
    snapshot = (
        sim.pair.market_snapshot()
        if hasattr(sim.pair, "market_snapshot")
        else None
    )
    return {
        "label": label,
        "wall_s": wall,
        "queuing_mean": metrics.queuing_summary().mean,
        "jct_mean": metrics.jct_summary().mean,
        "usage_training": metrics.training_usage.mean(),
        "loan_ops": len(metrics.loan_ops),
        "reclaim_ops": len(metrics.reclaim_ops),
        "market": snapshot,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="also write the raw results as JSON")
    args = parser.parse_args()

    results = [
        run_topology("pair"),
        run_topology("1x1", "1x1"),
        run_topology("2x2", "2x2"),
    ]

    rows = []
    for r in results:
        market = r["market"] or {}
        rows.append([
            r["label"],
            r["queuing_mean"],
            r["jct_mean"],
            r["usage_training"],
            r["loan_ops"],
            r["reclaim_ops"],
            market.get("contracts_opened", 0),
            market.get("early_recalls", 0),
            market.get("penalties_accrued", 0.0),
            r["wall_s"],
        ])
    emit(
        "BENCH_market",
        "Capacity market vs single pair (scheme=lyra)",
        ["topology", "qmean", "jct_mean", "usageT", "loans",
         "reclaims", "contracts", "early", "penalty", "wall_s"],
        rows,
        notes="pair and 1x1 must match exactly (degenerate equivalence); "
              "2x2 adds cross-lender clearing with contracts.",
    )

    pair, degenerate = results[0], results[1]
    for key in ("queuing_mean", "jct_mean", "loan_ops", "reclaim_ops"):
        assert pair[key] == degenerate[key], (
            f"degenerate 1x1 market diverged from the pair on {key}: "
            f"{pair[key]} != {degenerate[key]}"
        )
    market = results[2]["market"]
    assert market["contracts_opened"] >= 0

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"results": results}, fh, indent=2)
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
