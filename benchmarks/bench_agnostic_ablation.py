"""§10 future work — information-agnostic Lyra, quantified.

The paper closes by planning to investigate scheduling "without knowing
jobs' running time a priori".  This ablation runs the runtime-oblivious
variant (least-attained-service phase one, throughput-gain phase two)
against full Lyra and the Baseline: it must recover a substantial part of
Lyra's gain while consulting no runtime estimate anywhere.
"""

from benchmarks.bench_util import emit, get_setup, reductions_vs, run_cached


def build():
    setup = get_setup()
    return {
        "Baseline": run_cached(setup, "baseline"),
        "Lyra (oracle runtimes)": run_cached(setup, "lyra"),
        "Lyra (information-agnostic)": run_cached(setup, "lyra_agnostic"),
    }


def bench_agnostic_ablation(benchmark):
    results = benchmark.pedantic(build, rounds=1, iterations=1)
    baseline = results["Baseline"]
    rows = []
    for name, metrics in results.items():
        q_red, jct_red = reductions_vs(baseline, metrics)
        rows.append(
            [
                name,
                metrics.queuing_summary().mean,
                metrics.jct_summary().mean,
                q_red,
                jct_red,
                metrics.preemption_ratio,
            ]
        )
    emit(
        "agnostic", "§10 ablation: information-agnostic Lyra",
        ["scheme", "queue mean", "jct mean", "queue red.", "jct red.",
         "preempt"],
        rows,
    )
    oracle = results["Lyra (oracle runtimes)"]
    agnostic = results["Lyra (information-agnostic)"]
    # Agnostic beats the Baseline on both metrics...
    assert agnostic.queuing_summary().mean < baseline.queuing_summary().mean
    assert agnostic.jct_summary().mean < baseline.jct_summary().mean
    # ...but runtime knowledge is worth something: oracle Lyra leads.
    assert oracle.jct_summary().mean <= agnostic.jct_summary().mean * 1.05
