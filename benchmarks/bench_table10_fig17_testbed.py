"""Table 10 and Figure 17 — the testbed experiment, replayed in simulation.

The paper's testbed: four 8-GPU V100 training servers plus four 8-GPU T4
inference servers, 180 jobs (10 elastic) submitted over 8 hours, running
time 2 minutes - 2 hours, jobs larger than 16 GPUs excluded.  We rebuild
that scenario as a simulation config (§7.2 shows the calibrated simulator
tracks the real testbed within ~6 %) and reproduce the three row groups of
Table 10 plus Fig. 17's preemption/collateral comparison.
"""

from dataclasses import replace

from benchmarks.bench_util import emit, run_cached
from repro.scenarios import ExperimentSetup
from repro.traces.inference import generate_inference_trace
from repro.traces.workload import TraceConfig, Workload, generate_workload


def testbed_setup(seed: int = 7) -> ExperimentSetup:
    config = TraceConfig(
        num_jobs=180,
        days=8 / 24,
        cluster_gpus=32,
        seed=seed,
        target_load=1.0,
        elastic_job_fraction=10 / 180,
        elastic_resource_share=0.30,
        elastic_mean_hours=1.0,
    )
    workload = generate_workload(config)
    # Running times 2 min - 2 h; demand capped at 16 GPUs (50 % cluster).
    specs = []
    for s in workload.specs:
        duration = min(max(s.duration, 120.0), 7200.0)
        if s.max_gpus > 16:
            workers = max(1, 16 // s.gpus_per_worker)
            s = replace(
                s,
                max_workers=workers,
                min_workers=min(s.min_workers, max(1, workers // 2))
                if s.elastic
                else workers,
            )
        specs.append(replace(s, duration=duration))
    workload = Workload(specs=specs, config=config)
    trace = generate_inference_trace(days=1.0, num_servers=4, seed=seed)
    return ExperimentSetup(
        workload=workload,
        inference_trace=trace,
        training_servers=4,
        inference_servers=4,
    )


def build():
    setup = testbed_setup()
    table = {}
    for name, scheme in [
        ("Baseline", "baseline"),
        ("Lyra", "lyra"),
        ("CL/Random", "random_loaning"),
        ("CL/SCF", "scf_loaning"),
        ("CL/Lyra", "lyra_loaning"),
        ("ES/Gandiva", "gandiva"),
        ("ES/AFS", "afs"),
        ("ES/Pollux", "pollux"),
        ("ES/Lyra", "lyra_scaling"),
    ]:
        table[name] = run_cached(setup, scheme, cache_key="testbed")
    return table


def bench_table10_fig17_testbed(benchmark):
    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, metrics in table.items():
        q = metrics.queuing_summary()
        j = metrics.jct_summary()
        rows.append(
            [name, q.mean, q.median, q.p95, j.mean, j.median, j.p95,
             metrics.preemption_ratio]
        )
    emit(
        "table10", "Table 10: testbed-scale results (4+4 servers, 180 jobs)",
        ["scheme", "qmean", "qmed", "q95", "jct_mean", "jct_med", "jct95",
         "preempt"],
        rows,
    )

    fig17 = []
    for name in ("CL/Random", "CL/SCF", "CL/Lyra", "Lyra"):
        metrics = table[name]
        fig17.append(
            [name, metrics.preemptions, metrics.preemption_ratio,
             metrics.mean_collateral()]
        )
    emit(
        "fig17", "Fig. 17: testbed preemption and collateral damage",
        ["scheme", "preemptions", "ratio", "collateral"],
        fig17,
    )

    baseline, lyra = table["Baseline"], table["Lyra"]
    # Lyra improves queuing and JCT on the testbed workload (paper:
    # 1.38x queuing, 1.22x JCT).
    assert lyra.queuing_summary().mean < baseline.queuing_summary().mean
    assert lyra.jct_summary().mean < baseline.jct_summary().mean
    # Lyra's reclaiming preempts no more than Random (Fig. 17).
    assert (
        table["CL/Lyra"].preemption_ratio
        <= table["CL/Random"].preemption_ratio + 1e-9
    )
