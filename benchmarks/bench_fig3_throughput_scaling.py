"""Figure 3 — throughput scalability of the four elastic model families.

Workers are doubled every five epochs starting from one worker; each of
ResNet-50, VGG16, BERT and GNMT-16 must show near-linear aggregate
throughput growth (which is what qualifies them for elastic scaling,
§2.2).
"""

from benchmarks.bench_util import emit
from repro.traces.models import ELASTIC_FAMILIES, fig3_series


def build_series():
    return {
        family.name: fig3_series(family, epochs=30, double_every=5)
        for family in ELASTIC_FAMILIES
    }


def bench_fig3_throughput_scaling(benchmark):
    all_series = benchmark.pedantic(build_series, rounds=1, iterations=1)
    rows = []
    for family in ELASTIC_FAMILIES:
        series = all_series[family.name]
        by_workers = {w: t for _, w, t in series}
        rows.append(
            [
                family.name,
                family.unit,
                by_workers[1],
                by_workers[2],
                by_workers[4],
                by_workers[8],
                by_workers[32],
                by_workers[32] / (32 * by_workers[1]),
            ]
        )
    emit(
        "fig3", "Fig. 3: elastic-family throughput, workers doubling every 5 epochs",
        ["family", "unit", "w=1", "w=2", "w=4", "w=8", "w=32", "eff@32"],
        rows,
    )
    for row in rows:
        # throughput strictly increases with each doubling...
        assert row[2] < row[3] < row[4] < row[5] < row[6]
        # ...and stays near-linear (>=60 % parallel efficiency at 32).
        assert row[7] >= 0.6
