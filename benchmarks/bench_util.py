"""Shared infrastructure for the per-table/per-figure benchmarks.

Every benchmark regenerates one of the paper's tables or figures on the
synthetic traces.  Absolute numbers differ from the paper (different
hardware, proprietary traces replaced by calibrated synthetic ones), but
the *shape* — which scheme wins, by roughly what factor, where crossovers
fall — is asserted where robust.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

* ``small``  (default): ~900 jobs / 2.5 days / 32+40 servers — seconds.
* ``medium``: ~2,500 jobs / 5 days / 64+76 servers — minutes.
* ``full``:  ~12,000 jobs / 15 days / 443+520 servers — the paper's
  cluster shape; expect a long run.

Results are memoized per (scale, scheme, scenario, options) within the
pytest session so benches that share cells (e.g. the Baseline row) do not
recompute them.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ioutil import atomic_write
from repro.scenarios import ExperimentSetup, default_setup, run_scheme
from repro.simulator.metrics import SimulationMetrics, reduction

_SCALES = {
    "small": dict(num_jobs=900, days=2.5, training_servers=32,
                  inference_servers=40),
    "medium": dict(num_jobs=2500, days=5.0, training_servers=64,
                   inference_servers=76),
    "full": dict(num_jobs=12000, days=15.0, training_servers=443,
                 inference_servers=520),
}

_setups: Dict[Tuple, ExperimentSetup] = {}
_results: Dict[Tuple, SimulationMetrics] = {}


def scale_name() -> str:
    name = os.environ.get("REPRO_SCALE", "small")
    if name not in _SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALES)}")
    return name


def get_setup(seed: int = 0, **overrides) -> ExperimentSetup:
    """The session-wide experiment setup for the active scale."""
    key = (scale_name(), seed, tuple(sorted(overrides.items())))
    if key not in _setups:
        params = dict(_SCALES[scale_name()], target_load=1.0, seed=seed)
        params.update(overrides)
        _setups[key] = default_setup(**params)
    return _setups[key]


def run_cached(
    setup: ExperimentSetup,
    scheme: str,
    scenario: str = "basic",
    seed: int = 0,
    cache_key: Optional[str] = None,
    **kwargs,
) -> SimulationMetrics:
    """Run one cell, memoized across benchmarks in this session."""
    key = (id(setup), scheme, scenario, seed, cache_key,
           tuple(sorted((k, str(v)) for k, v in kwargs.items())))
    if key not in _results:
        if scheme == "pollux" and "pollux_generations" not in kwargs:
            # keep the GA tractable at bench scale; the paper's 250
            # generations are only needed at the 3,500-GPU scale.
            kwargs["pollux_generations"] = 20
        _results[key] = run_scheme(
            setup, scheme, scenario=scenario, seed=seed, **kwargs
        )
    return _results[key]


# ----------------------------------------------------------------------
# formatting
# ----------------------------------------------------------------------
def fmt(value, width=8, decimals=0) -> str:
    if value is None:
        return "NA".rjust(width)
    if isinstance(value, float) and decimals:
        return f"{value:.{decimals}f}".rjust(width)
    if isinstance(value, float):
        return f"{value:,.0f}".rjust(width)
    return str(value).rjust(width)


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    lines = [f"=== {title} (scale={scale_name()}) ==="]
    widths = [
        max(len(str(h)), *(len(str(fmt_cell(c))) for c in col))
        for h, col in zip(headers, zip(*rows))
    ] if rows else [len(h) for h in headers]
    header = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(fmt_cell(c)).rjust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def emit(name: str, title: str, headers: Sequence[str],
         rows: Sequence[Sequence], notes: str = "") -> str:
    """Print a reproduced table and persist it under benchmarks/results/."""
    text = render_table(title, headers, rows)
    if notes:
        text += "\n" + notes
    print("\n" + text)
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with atomic_write(os.path.join(results_dir, f"{name}.txt")) as fh:
        fh.write(text + "\n")
    return text


def fmt_cell(cell) -> str:
    if cell is None:
        return "NA"
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def scheme_row(name: str, metrics: SimulationMetrics) -> List:
    """The standard Table 5-style row for one scheme."""
    queue = metrics.queuing_summary()
    jct = metrics.jct_summary()
    return [
        name,
        queue.mean, queue.median, queue.p95,
        jct.mean, jct.median, jct.p95,
        metrics.training_usage.mean(),
        metrics.overall_usage.mean(),
        metrics.preemption_ratio,
    ]


SCHEME_HEADERS = [
    "scheme", "qmean", "qmed", "q95",
    "jct_mean", "jct_med", "jct95",
    "usageT", "usageAll", "preempt",
]


def reductions_vs(baseline: SimulationMetrics,
                  other: SimulationMetrics) -> Tuple[float, float]:
    """(queuing reduction, JCT reduction) — the paper's gain metric."""
    return (
        reduction(baseline.queuing_summary().mean,
                  other.queuing_summary().mean),
        reduction(baseline.jct_summary().mean, other.jct_summary().mean),
    )
