"""Resilience sweep: goodput and JCT degradation under fault plans.

Extends ``bench_failure_robustness`` with the declarative
``repro.faults`` machinery: instead of only arming the legacy Poisson
node-failure process, each cell runs under a full :class:`FaultPlan`
(node churn at swept MTBFs, flash crowds at swept magnitudes) and is
scored on *goodput* — useful GPU-hours over useful + wasted — next to
mean JCT.  The sweep answers two questions the paper's evaluation
leaves open:

* how quickly do Lyra's gains erode as faults intensify, relative to
  the static Baseline (Lyra has more moving parts — loaned servers,
  elastic scale-outs — so it has more to lose);
* how much of the fault bill checkpointing pays (Fig. 13's knob,
  re-examined under failures rather than reclaims).

Everything is seeded; the emitted JSON artifact
(``benchmarks/results/bench_resilience.json``) is byte-stable across
runs at a fixed ``REPRO_SCALE``.
"""

from __future__ import annotations

import json
import os

from benchmarks.bench_util import emit, get_setup, run_cached, scale_name
from repro.ioutil import atomic_write
from repro.faults import (
    FaultPlan,
    FlashCrowd,
    NodeFailureProcess,
    resilience_snapshot,
)
from repro.scenarios import with_checkpointing_fraction

HOUR = 3600.0

#: node-churn intensities swept (None = fault-free control)
MTBF_SWEEP = ((None, "no faults"), (6 * HOUR, "MTBF 6 h"),
              (2 * HOUR, "MTBF 2 h"))

#: flash-crowd magnitudes swept (fraction of inference capacity)
SPIKE_SWEEP = (0.0, 0.25, 0.5)


def _churn_plan(mtbf: float) -> FaultPlan:
    return FaultPlan(
        name=f"bench-churn-{int(mtbf)}",
        process=NodeFailureProcess(mtbf=mtbf, repair_time=1800.0),
    )


def _spike_plan(magnitude: float, days: float) -> FaultPlan:
    # Two spikes per simulated day, 30 minutes each, offset so they hit
    # different phases of the diurnal cycle.
    crowds = []
    day = 0
    while day < days:
        for offset in (0.35, 0.8):
            at = (day + offset) * 24 * HOUR
            if at < days * 24 * HOUR:
                crowds.append(
                    FlashCrowd(at=at, duration=1800.0, magnitude=magnitude)
                )
        day += 1
    return FaultPlan(name=f"bench-spike-{magnitude:g}",
                     flash_crowds=tuple(crowds))


def _cell(metrics, plan=None) -> dict:
    snap = resilience_snapshot(metrics, plan=plan)
    return {
        "jct_mean": round(metrics.jct_summary().mean, 3),
        "goodput_fraction": snap["goodput"]["goodput_fraction"],
        "wasted_gpu_hours": snap["goodput"]["wasted_gpu_hours"],
        "preemptions": snap["preemptions"],
        "node_failures": snap["node_failures"],
        "completed": round(metrics.completion_ratio(), 4),
    }


def _degradation(cell: dict, control: dict) -> dict:
    return {
        "jct_slowdown": round(
            cell["jct_mean"] / control["jct_mean"], 4
        ) if control["jct_mean"] else None,
        "goodput_drop": round(
            control["goodput_fraction"] - cell["goodput_fraction"], 6
        ),
    }


def build():
    setup = get_setup()
    days = setup.workload.config.days
    artifact = {"scale": scale_name(), "mtbf_sweep": {},
                "spike_sweep": {}, "checkpointing": {}}
    rows = []

    # -- MTBF sweep: Lyra vs Baseline ---------------------------------
    controls = {}
    for mtbf, label in MTBF_SWEEP:
        plan = _churn_plan(mtbf) if mtbf else None
        overrides = {"fault_plan": plan} if plan else {}
        artifact["mtbf_sweep"][label] = {}
        for scheme in ("baseline", "lyra"):
            metrics = run_cached(
                setup, scheme, sim_overrides=overrides or None,
                cache_key=f"resil-{label}",
            )
            cell = _cell(metrics, plan=plan)
            if mtbf is None:
                controls[scheme] = cell
            cell["degradation"] = _degradation(cell, controls[scheme])
            artifact["mtbf_sweep"][label][scheme] = cell
            rows.append([
                label, scheme, cell["node_failures"], cell["preemptions"],
                cell["jct_mean"], cell["goodput_fraction"],
                cell["degradation"]["jct_slowdown"],
                cell["completed"],
            ])

    # -- flash-crowd sweep: Lyra only (Baseline never loans) ----------
    spike_control = None
    for magnitude in SPIKE_SWEEP:
        plan = _spike_plan(magnitude, days) if magnitude else None
        metrics = run_cached(
            setup, "lyra",
            sim_overrides={"fault_plan": plan} if plan else None,
            cache_key=f"resil-spike-{magnitude:g}",
        )
        cell = _cell(metrics, plan=plan)
        if spike_control is None:
            spike_control = cell
        cell["degradation"] = _degradation(cell, spike_control)
        artifact["spike_sweep"][f"{magnitude:g}"] = cell
        rows.append([
            f"spike +{magnitude:g}", "lyra", cell["node_failures"],
            cell["preemptions"], cell["jct_mean"],
            cell["goodput_fraction"],
            cell["degradation"]["jct_slowdown"], cell["completed"],
        ])

    # -- checkpointing under churn ------------------------------------
    # Same workload, same fault plan, run twice: once with checkpointing
    # off everywhere, once with it on everywhere.  Checkpointing turns
    # destroyed-progress restarts into bounded-overhead restarts, so the
    # gap is the fault bill that checkpointing pays (Fig. 13's knob
    # re-examined under failures rather than reclaims).
    plan = _churn_plan(2 * HOUR)
    artifact["checkpointing"] = {"plan": plan.name}
    for fraction, key in ((0.0, "plain"), (1.0, "checkpointing")):
        specs = with_checkpointing_fraction(setup.workload.specs, fraction)
        metrics = run_cached(
            setup, "lyra", sim_overrides={"fault_plan": plan},
            specs=specs, cache_key=f"resil-ckpt-{fraction:g}",
        )
        artifact["checkpointing"][key] = _cell(metrics, plan=plan)

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with atomic_write(os.path.join(results_dir, "bench_resilience.json")) as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return rows, artifact


def bench_resilience(benchmark):
    rows, artifact = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "resilience",
        "Extension: goodput/JCT degradation under fault plans",
        ["faults", "scheme", "nodes lost", "preempts", "jct mean",
         "goodput", "jct x", "completed"],
        rows,
        notes=(
            "checkpointing cohorts under MTBF 2 h: "
            f"{artifact['checkpointing']}"
        ),
    )
    mtbf = artifact["mtbf_sweep"]
    # Faults actually fired at the aggressive setting, for both schemes.
    for scheme in ("baseline", "lyra"):
        assert mtbf["MTBF 2 h"][scheme]["node_failures"] > 0
    # Goodput is a fraction, and it only degrades as churn intensifies.
    for _, label in MTBF_SWEEP:
        for scheme in ("baseline", "lyra"):
            assert 0.0 <= mtbf[label][scheme]["goodput_fraction"] <= 1.0
        assert mtbf[label]["lyra"]["completed"] >= 0.99
    assert (
        mtbf["MTBF 2 h"]["lyra"]["goodput_fraction"]
        <= mtbf["no faults"]["lyra"]["goodput_fraction"]
    )
    # Lyra keeps beating Baseline on JCT at every churn level.
    for _, label in MTBF_SWEEP:
        assert mtbf[label]["lyra"]["jct_mean"] < mtbf[label]["baseline"]["jct_mean"]
    # Checkpointing jobs ride out the same fault plan measurably better:
    # lower mean JCT and higher goodput than the non-checkpointing run.
    ckpt = artifact["checkpointing"]
    assert ckpt["checkpointing"]["jct_mean"] < ckpt["plain"]["jct_mean"]
    assert (
        ckpt["checkpointing"]["goodput_fraction"]
        > ckpt["plain"]["goodput_fraction"]
    )
