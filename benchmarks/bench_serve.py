"""Serving-daemon load benchmark: sustained request throughput + latency.

Starts a real :class:`~repro.serve.service.SchedulerService` on a
loopback port and drives it with N concurrent client connections, each
pipelining a submit → query → (usually) cancel loop — the daemon's
whole request path is exercised, including epoch batching of the
submits that survive cancellation into scheduling epochs.  Request
round-trip latency is recorded through the observability metrics
registry (``bench.request_rtt_s``), so the reported percentiles come
from the same histogram machinery the daemon itself exports; the
daemon-side ``serve.submit_to_scheduled_s`` histogram (submit ack to
first worker placement) is captured from ``stats`` as well.

Not a pytest bench: run it directly.

    python benchmarks/bench_serve.py                  # 10 s, acceptance
    python benchmarks/bench_serve.py --quick          # CI smoke, ~2 s
    python benchmarks/bench_serve.py --durable DIR    # with fsynced journal

Acceptance (full mode): sustained throughput >= 1,000 requests/s.  The
``--durable`` mode journals (and fsyncs) every mutation before acking
and is expected to be slower; it reports, but never enforces, the bar.
Results land in ``benchmarks/results/BENCH_serve.json`` (``--out``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.cluster.cluster import (  # noqa: E402
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.core.kernel import SimulationConfig  # noqa: E402
from repro.ioutil import atomic_write  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.schedulers.fifo import FIFOScheduler  # noqa: E402
from repro.serve import SchedulerService, ServeClient  # noqa: E402

#: acceptance bar, requests per second sustained across all clients
MIN_RPS = 1000.0

#: of every KEEP_EVERY submitted jobs, one is left to actually run;
#: the rest are cancelled after a query, keeping the pending queue
#: bounded while still feeding every epoch real scheduling work
KEEP_EVERY = 5


async def _worker(host, port, stop_at, hist, counts, worker_id):
    client = await ServeClient.connect(host, port)
    loop = asyncio.get_running_loop()
    i = 0
    try:
        while loop.time() < stop_at:
            t0 = loop.time()
            job_id = await client.submit(duration=30.0, max_workers=1)
            hist.observe(loop.time() - t0)
            counts["submit"] += 1

            t0 = loop.time()
            await client.query(job_id)
            hist.observe(loop.time() - t0)
            counts["query"] += 1

            if i % KEEP_EVERY != 0:
                t0 = loop.time()
                await client.cancel(job_id)
                hist.observe(loop.time() - t0)
                counts["cancel"] += 1
            i += 1
    finally:
        await client.close()


async def run_bench(args) -> dict:
    obs = Observability.disabled()  # registry stays live
    pair = ClusterPair(
        make_training_cluster(args.servers),
        make_inference_cluster(args.servers),
    )
    service = SchedulerService(
        pair,
        FIFOScheduler(),
        SimulationConfig(scheduler_interval=args.epoch_interval),
        port=0,
        max_pending=1_000_000,
        time_scale=args.time_scale,
        state_dir=args.durable,
        obs=obs,
    )
    await service.start()
    server = asyncio.ensure_future(service.serve_forever())
    loop = asyncio.get_running_loop()
    hist = obs.registry.histogram("bench.request_rtt_s")
    counts = {"submit": 0, "query": 0, "cancel": 0}

    wall0 = time.perf_counter()
    stop_at = loop.time() + args.duration
    await asyncio.gather(*[
        _worker(service.host, service.port, stop_at, hist, counts, w)
        for w in range(args.clients)
    ])
    elapsed = time.perf_counter() - wall0

    probe = await ServeClient.connect(service.host, service.port)
    stats = await probe.stats()
    await probe.close()
    await service.stop(final_snapshot=False)
    server.cancel()
    try:
        await server
    except asyncio.CancelledError:
        pass

    total = sum(counts.values())
    snap = obs.registry.snapshot()["histograms"]
    return {
        "requests": total,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(total / elapsed, 1),
        "by_op": counts,
        "request_rtt_s": snap["bench.request_rtt_s"],
        "submit_to_scheduled_s": stats["metrics"]["histograms"].get(
            "serve.submit_to_scheduled_s"
        ),
        "daemon": {
            "epochs": stats["epochs"],
            "epochs_skipped": stats["epochs_skipped"],
            "plans_applied": stats["plans_applied"],
            "jobs": stats["jobs"],
            "callback_errors": stats["callback_errors"],
            "wal_appended": stats["wal_appended"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="~2 s smoke run; reports, never enforces")
    parser.add_argument("--duration", type=float, default=None,
                        metavar="SECONDS",
                        help="measurement window (default 10, quick 2)")
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent connections (default 8, quick 4)")
    parser.add_argument("--servers", type=int, default=4,
                        help="training/inference servers in the cluster")
    parser.add_argument("--epoch-interval", type=float, default=0.5,
                        metavar="KERNEL_S",
                        help="scheduling-epoch batching window")
    parser.add_argument("--time-scale", type=float, default=50.0,
                        help="kernel seconds per wall second")
    parser.add_argument("--durable", default=None, metavar="DIR",
                        help="state directory: journal+fsync every "
                             "mutation before acking (slower by design; "
                             "the throughput bar is not enforced)")
    parser.add_argument("--out",
                        default=os.path.join(
                            os.path.dirname(__file__), "results",
                            "BENCH_serve.json"),
                        help="result JSON path")
    args = parser.parse_args(argv)
    if args.duration is None:
        args.duration = 2.0 if args.quick else 10.0
    if args.clients is None:
        args.clients = 4 if args.quick else 8

    results = asyncio.run(run_bench(args))

    enforce = not args.quick and args.durable is None
    passed = results["throughput_rps"] >= MIN_RPS
    payload = {
        "config": {
            "quick": args.quick,
            "duration_s": args.duration,
            "clients": args.clients,
            "servers": args.servers,
            "epoch_interval_s": args.epoch_interval,
            "time_scale": args.time_scale,
            "durable": bool(args.durable),
        },
        "results": results,
        "acceptance": {
            "min_rps": MIN_RPS,
            "enforced": enforce,
            "pass": passed,
        },
    }
    with atomic_write(args.out) as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    rtt = results["request_rtt_s"]
    print(f"{results['requests']} requests in {results['elapsed_s']}s "
          f"over {args.clients} connection(s): "
          f"{results['throughput_rps']:,.0f} req/s")
    print(f"  rtt      p50 {rtt['p50'] * 1e3:.2f} ms   "
          f"p99 {rtt['p99'] * 1e3:.2f} ms   max {rtt['max'] * 1e3:.2f} ms")
    sched = results["submit_to_scheduled_s"]
    if sched:
        print(f"  sched    p50 {sched['p50'] * 1e3:.1f} ms   "
              f"p99 {sched['p99'] * 1e3:.1f} ms  (submit -> placed, "
              f"{sched['count']} jobs)")
    print(f"  daemon   epochs {results['daemon']['epochs']} "
          f"({results['daemon']['epochs_skipped']} skipped)   "
          f"plans {results['daemon']['plans_applied']}   "
          f"jobs {results['daemon']['jobs']}")
    print(f"wrote {args.out}")
    if enforce and not passed:
        print(f"FAIL: {results['throughput_rps']:,.0f} req/s "
              f"< acceptance bar {MIN_RPS:,.0f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
