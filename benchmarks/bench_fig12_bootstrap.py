"""Figure 12 — reproducibility over ten bootstrapped traces.

Ten shorter traces are composed from the base trace by sampling days with
replacement; Lyra's queuing/JCT gains over the per-trace Baseline must be
consistent (the paper: 1.45x/1.44x in Basic, higher variance only when a
resample is weekend-dominated and the cluster is underloaded).
"""

import numpy as np

from benchmarks.bench_util import emit, get_setup, reductions_vs, run_cached
from repro.traces.bootstrap import bootstrap_traces

#: resampled traces (the paper uses ten; five keep the bench quick while
#: still giving a spread — raise via REPRO_SCALE for the full ensemble)
_COUNT = {"small": 5, "medium": 8, "full": 10}


def build():
    from benchmarks.bench_util import scale_name

    setup = get_setup()
    count = _COUNT[scale_name()]
    days = max(1, int(setup.workload.config.days) - 1)
    traces = bootstrap_traces(setup.workload, count=count, days=days, seed=3)
    rows = []
    for i, workload in enumerate(traces):
        baseline = run_cached(
            setup, "baseline", specs=workload.specs, cache_key=f"boot{i}"
        )
        lyra = run_cached(
            setup, "lyra", specs=workload.specs, cache_key=f"boot{i}"
        )
        q_red, jct_red = reductions_vs(baseline, lyra)
        rows.append([i, len(workload.specs), q_red, jct_red])
    return rows


def bench_fig12_bootstrap(benchmark):
    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    q_reds = [row[2] for row in rows]
    jct_reds = [row[3] for row in rows]
    emit(
        "fig12", "Fig. 12: gains on bootstrapped traces",
        ["trace", "jobs", "queue reduction", "jct reduction"],
        rows,
        notes=(
            f"mean queue reduction {np.mean(q_reds):.2f}x, "
            f"mean JCT reduction {np.mean(jct_reds):.2f}x "
            f"(paper Basic: 1.45x / 1.44x)"
        ),
    )
    # Gains are consistently positive across resamples.
    assert all(j > 1.0 for j in jct_reds)
    assert float(np.mean(q_reds)) > 1.1
