"""Tests for the benchmark reporting helpers and activity records."""

import pytest

from benchmarks.bench_util import (
    SCHEME_HEADERS,
    fmt_cell,
    render_table,
    scheme_row,
)
from repro.simulator.events import Activity, EventKind
from repro.simulator.metrics import SimulationMetrics

from tests.conftest import make_job


class TestFormatting:
    def test_fmt_cell_none(self):
        assert fmt_cell(None) == "NA"

    def test_fmt_cell_large_float_groups_thousands(self):
        assert fmt_cell(12345.6) == "12,346"

    def test_fmt_cell_small_float_two_decimals(self):
        assert fmt_cell(0.1234) == "0.12"

    def test_fmt_cell_passthrough_strings_and_ints(self):
        assert fmt_cell("lyra") == "lyra"
        assert fmt_cell(7) == "7"

    def test_render_table_alignment(self):
        text = render_table(
            "T", ["name", "value"], [["a", 1], ["long-name", 12345.0]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("=== T")
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # all data rows share the header's width
        assert len(lines[3]) == len(lines[1])

    def test_render_table_empty_rows(self):
        text = render_table("T", ["a", "b"], [])
        assert "a" in text and "b" in text


class TestSchemeRow:
    def test_row_matches_headers(self):
        metrics = SimulationMetrics()
        job = make_job()
        job.record_placement("s", 2, flexible=False)
        job.mark_started(10.0)
        job.mark_finished(110.0)
        metrics.jobs = [job]
        metrics.submissions = 1
        row = scheme_row("x", metrics)
        assert len(row) == len(SCHEME_HEADERS)
        assert row[0] == "x"
        assert row[4] == pytest.approx(110.0)  # jct mean


class TestActivity:
    def test_frozen(self):
        activity = Activity(1.0, EventKind.START, 5)
        with pytest.raises(AttributeError):
            activity.time = 2.0  # type: ignore[misc]

    def test_all_event_kinds_distinct(self):
        values = [kind.value for kind in EventKind]
        assert len(values) == len(set(values))

    def test_detail_payload_optional(self):
        activity = Activity(0.0, EventKind.LOAN, detail=["s1", "s2"])
        assert activity.job_id is None
        assert activity.detail == ["s1", "s2"]
