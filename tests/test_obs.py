"""Tests for the observability subsystem: tracer, metrics registry,
phase profiler, trace inspection and the CLI wiring."""

import json
import math
import time

import pytest

from repro.cli import main
from repro.elastic.controller import ElasticController
from repro.obs import (
    Observability,
    PROVENANCE_EVENT,
    SPAN_EVENT,
    SUMMARY_EVENT,
    TimelineStore,
    TraceFormatError,
    Tracer,
    build_report,
    diff_traces,
    inspect_trace,
    load_trace,
    percentile,
    render_diff,
    render_summary,
    render_why,
    summarize,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER, PhaseProfiler
from repro.scenarios import default_setup, run_scheme
from repro.simulator.metrics import SimulationMetrics


class TestTracer:
    def test_events_ordered_by_time_then_seq(self):
        tracer = Tracer()
        tracer.emit("b", ts=5.0)
        tracer.emit("a", ts=1.0)
        tracer.emit("c", ts=1.0)
        ordered = tracer.sorted_events()
        assert [(e.ts, e.name) for e in ordered] == [
            (1.0, "a"), (1.0, "c"), (5.0, "b"),
        ]
        # ties broken by emission order
        assert ordered[0].seq < ordered[1].seq

    def test_category_derived_from_name(self):
        tracer = Tracer()
        tracer.emit("job.start", ts=0.0, job_id=3, workers=2)
        event = tracer.events[0]
        assert event.cat == "job"
        assert event.job_id == 3
        assert event.args == {"workers": 2}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer.disabled()
        for i in range(100):
            tracer.emit("job.start", ts=float(i), job_id=i)
        assert len(tracer) == 0
        assert tracer.sorted_events() == []

    def test_disabled_tracer_is_cheaper_than_enabled(self):
        # The whole point of the enabled-flag short-circuit: emitting
        # into a disabled tracer must beat actually recording events.
        n = 50_000
        off, on = Tracer.disabled(), Tracer()
        t0 = time.perf_counter()
        for i in range(n):
            off.emit("job.start", ts=0.0, job_id=i)
        t_off = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(n):
            on.emit("job.start", ts=0.0, job_id=i)
        t_on = time.perf_counter() - t0
        assert len(off) == 0 and len(on) == n
        assert t_off < t_on

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = Tracer()
        tracer.emit("job.submit", ts=0.0, job_id=1)
        tracer.emit("job.start", ts=2.0, job_id=1, workers=4)
        path = tmp_path / "t.jsonl"
        count = tracer.export_jsonl(str(path), summary={"phases": {}})
        lines = path.read_text().splitlines()
        assert count == len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "job.submit"
        assert records[1]["args"] == {"workers": 4}
        assert records[-1]["name"] == SUMMARY_EVENT

    def test_chrome_export_round_trips_json(self, tmp_path):
        tracer = Tracer()
        tracer.emit("job.submit", ts=0.0, job_id=1)
        tracer.emit("job.start", ts=1.0, job_id=1)
        tracer.emit("job.finish", ts=11.0, job_id=1, jct_s=11.0)
        tracer.emit("scheduler.epoch", ts=12.0)
        path = tmp_path / "t.json"
        tracer.export_chrome(str(path), summary={"metrics": {}})
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        # microsecond timestamps on the simulated clock
        assert spans[0]["ts"] == 1_000_000
        assert spans[0]["dur"] == 10_000_000
        counters = [e for e in events if e["ph"] == "C"]
        assert counters  # running/pending track exists
        assert doc["otherData"]["summary"] == {"metrics": {}}

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="jsonl|chrome"):
            Tracer().export(str(tmp_path / "t"), format="xml")


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("sim.preemptions")
        a.inc()
        assert reg.counter("sim.preemptions") is a
        assert reg.counter("sim.preemptions").value == 1

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("ops", kind="loan").inc(2)
        reg.counter("ops", kind="reclaim").inc(3)
        snap = reg.snapshot()
        assert snap["counters"]["ops{kind=loan}"] == 2
        assert snap["counters"]["ops{kind=reclaim}"] == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("usage")
        assert math.isnan(gauge.value)
        gauge.inc(0.5)
        gauge.dec(0.25)
        assert gauge.value == pytest.approx(0.25)
        hist = reg.histogram("latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean() == pytest.approx(2.5)
        assert hist.percentile(50) == pytest.approx(2.5)

    def test_snapshot_and_find(self):
        reg = MetricsRegistry()
        reg.counter("sim.submissions").inc(7)
        reg.gauge("usage.training").set(0.8)
        reg.histogram("orchestrator.collateral").observe(0.1)
        snap = reg.snapshot()
        assert snap["counters"]["sim.submissions"] == 7
        assert snap["histograms"]["orchestrator.collateral"]["count"] == 1
        only_sim = reg.find("sim.")
        assert only_sim["counters"] == {"sim.submissions": 7}
        assert only_sim["gauges"] == {}


class TestPhaseProfiler:
    def test_records_calls_and_totals(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("tick"):
                pass
        (stat,) = prof.stats()
        assert stat.name == "tick" and stat.calls == 3
        assert stat.total_s >= 0.0
        assert stat.max_ms >= stat.mean_ms * 0.5
        assert "tick" in prof.render_table()

    def test_stats_sorted_by_total(self):
        prof = PhaseProfiler()
        with prof.phase("fast"):
            pass
        with prof.phase("slow"):
            time.sleep(0.002)
        assert [s.name for s in prof.stats()] == ["slow", "fast"]

    def test_disabled_profiler_shares_null_phase(self):
        prof = PhaseProfiler.disabled()
        cm1, cm2 = prof.phase("a"), prof.phase("b")
        assert cm1 is cm2  # one shared no-op object, no allocation
        with cm1:
            pass
        assert prof.stats() == []
        assert NULL_PROFILER.phase("x") is cm1


class TestSimulationMetricsShim:
    def test_bare_construction_still_works(self):
        metrics = SimulationMetrics()
        metrics.preemptions += 2
        metrics.loan_ops.append(3)
        assert metrics.preemptions == 2
        assert metrics.loan_ops == [3]

    def test_attributes_backed_by_registry(self):
        reg = MetricsRegistry()
        metrics = SimulationMetrics(registry=reg)
        metrics.submissions = 5
        metrics.reclaim_ops.append(2)
        snap = reg.snapshot()
        assert snap["counters"]["sim.submissions"] == 5
        assert snap["histograms"]["orchestrator.reclaim_servers"]["count"] == 1


class TestElasticControllerTracing:
    def test_membership_changes_emit_events(self):
        tracer = Tracer()
        ctrl = ElasticController(
            job_id=7, min_workers=1, max_workers=4,
            tracer=tracer, clock=lambda: 42.0,
        )
        ctrl.join("w0")
        ctrl.join("w1", flexible=True)
        ctrl.leave("w1")
        ctrl.stop()
        names = [e.name for e in tracer.events]
        assert names == [
            "elastic.join", "elastic.join", "elastic.leave", "elastic.stop",
        ]
        assert all(e.ts == 42.0 and e.job_id == 7 for e in tracer.events)
        assert tracer.events[1].args["flexible"] is True


def tiny_obs_run(obs=None):
    setup = default_setup(
        num_jobs=60, days=0.5, training_servers=6, inference_servers=8,
        seed=3,
    )
    return run_scheme(setup, "lyra", obs=obs)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        obs = Observability.enabled()
        tiny_obs_run(obs)
        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        obs.export_trace(str(path))
        return obs, str(path)

    def test_lifecycle_events_present(self, traced):
        obs, _ = traced
        counts = {}
        for event in obs.tracer.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        assert counts["job.submit"] == 60
        assert counts["job.start"] == 60
        assert counts["job.finish"] == 60
        assert counts.get("scheduler.epoch", 0) > 0
        assert counts.get("scheduler.mckp", 0) > 0

    def test_phase_timings_recorded(self, traced):
        obs, _ = traced
        phases = obs.phases.to_dict()
        assert "scheduler.tick" in phases
        assert "scheduler.allocation" in phases
        assert phases["scheduler.tick"]["calls"] > 0

    def test_every_jsonl_line_parses(self, traced):
        _, path = traced
        lines = open(path).read().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert records[-1]["name"] == SUMMARY_EVENT
        assert "phases" in records[-1]["args"]

    def test_inspect_renders_all_sections(self, traced):
        _, path = traced
        report = inspect_trace(path)
        for section in ("trace overview", "event census",
                        "phase timing", "recorded metrics"):
            assert section in report

    def test_seeded_runs_produce_identical_event_streams(self):
        # obs.span events carry a wall-clock dur_ms, so they are pinned
        # separately (structure only) below the exact stream comparison.
        streams, spans = [], []
        for _ in range(2):
            obs = Observability.enabled()
            tiny_obs_run(obs)
            events = obs.tracer.sorted_events()
            streams.append([
                (e.ts, e.name, e.job_id, json.dumps(e.args, sort_keys=True,
                                                    default=str))
                for e in events if e.cat != "span"
            ])
            spans.append([
                (e.ts, e.args["span"], e.args["span_id"],
                 e.args["parent_id"])
                for e in events if e.cat == "span"
            ])
        assert streams[0] == streams[1]
        assert spans[0] and spans[0] == spans[1]

    def test_inspect_deterministic_outside_wall_clock(self, tmp_path):
        # Everything repro inspect prints before the phase-timing table
        # is derived from simulated time only, so two seeded runs agree.
        reports = []
        for i in range(2):
            obs = Observability.enabled()
            tiny_obs_run(obs)
            path = tmp_path / f"t{i}.jsonl"
            obs.export_trace(str(path))
            reports.append(inspect_trace(str(path)))
        head = [r.split("== phase timing")[0] for r in reports]
        assert head[0] == head[1]

    def test_disabled_obs_run_matches_default(self):
        # A run with the disabled bundle reports the same numbers as a
        # bare run — observability must not perturb the simulation.
        a = tiny_obs_run()
        b = tiny_obs_run(Observability.disabled())
        assert a.jct_summary().mean == b.jct_summary().mean
        assert a.preemptions == b.preemptions

    def test_chrome_trace_loads_back(self, traced):
        obs, _ = traced
        import io

        buf = io.StringIO()
        obs.tracer.export_chrome(buf, summary=obs.summary())
        doc = json.loads(buf.getvalue())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestInspectLoader:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_trace(str(path))

    def test_garbage_lines_skipped_and_counted(self, tmp_path):
        # A killed run leaves a truncated last line; that must not make
        # the whole trace unreadable.
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"name": "job.submit", "ts": 0}\n'
            'not json\n'
            '{"name": "job.start", "ts": 1}\n'
            '{"name": "job.finish", "ts": 2, "args": {"jct_s":\n'
        )
        trace = load_trace(str(path))
        assert [e["name"] for e in trace["events"]] \
            == ["job.submit", "job.start"]
        assert trace["skipped_lines"] == 2
        summary = summarize(trace)
        assert summary.skipped_lines == 2
        assert "skipped 2 corrupt lines" in render_summary(summary)

    def test_fully_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\nstill not json\n")
        with pytest.raises(TraceFormatError, match="no parseable"):
            load_trace(str(path))

    def test_unknown_event_types_surfaced(self):
        trace = {"events": [
            {"ts": 0.0, "name": "job.submit"},
            {"ts": 1.0, "name": "mystery.event"},
            {"ts": 2.0, "name": "mystery.event"},
        ], "summary": {}}
        summary = summarize(trace)
        assert summary.unknown_events == {"mystery.event": 2}
        assert "unrecognized event types: mystery.event ×2" \
            in render_summary(summary)

    def test_chrome_document_auto_detected(self, tmp_path):
        tracer = Tracer()
        tracer.emit("job.submit", ts=1.0, job_id=4)
        tracer.emit("job.start", ts=2.0, job_id=4)
        tracer.emit("job.finish", ts=3.0, job_id=4)
        path = tmp_path / "t.json"
        tracer.export_chrome(str(path))
        trace = load_trace(str(path))
        # the whole lifecycle survives the Chrome round trip as instants
        names = [e["name"] for e in trace["events"]]
        assert names == ["job.submit", "job.start", "job.finish"]
        event = next(e for e in trace["events"] if e["name"] == "job.submit")
        assert event["ts"] == pytest.approx(1.0)
        assert event["job_id"] == 4
        summary = summarize(trace)
        assert (summary.submissions, summary.starts, summary.finishes) \
            == (1, 1, 1)

    def test_summarize_preemption_breakdown(self):
        trace = {"events": [
            {"ts": 0.0, "name": "job.preempt", "job_id": 1,
             "args": {"cause": "reclaim"}},
            {"ts": 1.0, "name": "job.preempt", "job_id": 1,
             "args": {"cause": "reclaim"}},
            {"ts": 2.0, "name": "job.preempt", "job_id": 2,
             "args": {"cause": "node_failure"}},
            {"ts": 3.0, "name": "orchestrator.reclaim",
             "args": {"demand": 2, "servers": ["i0"], "preempted": [1],
                      "collateral": 0.25}},
        ], "summary": {}}
        summary = summarize(trace)
        assert summary.preemptions == 3
        assert summary.preempt_causes == {"reclaim": 2, "node_failure": 1}
        assert summary.preempt_victims == {1: 2, 2: 1}
        report = render_summary(summary)
        assert "cause reclaim" in report
        assert "job 1 ×2" in report
        assert "0.250" in report


class TestSharedPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_single_sample_exact_for_any_pct(self):
        for pct in (0, 37.5, 50, 100):
            assert percentile([4.2], pct) == 4.2

    def test_extremes_are_exact_min_max(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile(values, 25) == pytest.approx(1.75)

    def test_invalid_pct_rejected(self):
        for bad in (-1, 101, float("nan")):
            with pytest.raises(ValueError):
                percentile([1.0], bad)

    def test_simulator_metrics_share_the_helper(self):
        # bench_table8_percentiles consumes the simulator summaries, so
        # one percentile definition must serve both layers
        from repro.simulator.metrics import percentile as sim_percentile

        values = [1.0, 2.0, 3.0, 4.0]
        hist = MetricsRegistry().histogram("x")
        for v in values:
            hist.observe(v)
        for pct in (0, 25, 50, 95, 100):
            assert hist.percentile(pct) == sim_percentile(values, pct) \
                == percentile(values, pct)


class TestSpanTracing:
    @pytest.fixture(scope="class")
    def spans(self):
        obs = Observability.enabled()
        tiny_obs_run(obs)
        events = [e for e in obs.tracer.sorted_events()
                  if e.name == SPAN_EVENT]
        return obs, events

    def test_phases_promoted_to_spans(self, spans):
        _, events = spans
        names = {e.args["span"] for e in events}
        assert {"scheduler.tick", "scheduler.decide",
                "plan.validate", "plan.commit"} <= names

    def test_span_ids_unique_and_parents_resolve(self, spans):
        _, events = spans
        ids = [e.args["span_id"] for e in events]
        assert len(ids) == len(set(ids))
        known = set(ids)
        assert all(e.args["parent_id"] is None
                   or e.args["parent_id"] in known for e in events)

    def test_decide_nested_under_scheduler_tick(self, spans):
        _, events = spans
        by_id = {e.args["span_id"]: e for e in events}
        decide = [e for e in events
                  if e.args["span"] == "scheduler.decide"]
        assert decide
        for e in decide:
            parent = by_id[e.args["parent_id"]]
            assert parent.args["span"] == "scheduler.tick"

    def test_chrome_export_renders_spans_on_own_track(self, spans):
        obs, events = spans
        import io

        buf = io.StringIO()
        obs.tracer.export_chrome(buf)
        doc = json.loads(buf.getvalue())
        lanes = [e for e in doc["traceEvents"]
                 if e.get("pid") == 2 and e.get("ph") == "X"]
        assert len(lanes) == len(events)
        assert all(lane["dur"] >= 1 for lane in lanes)

    def test_disabled_profiler_emits_no_spans(self):
        obs = Observability.disabled()
        tiny_obs_run(obs)
        assert len(obs.tracer) == 0
        assert obs.phases.stats() == []


class TestProvenanceLedger:
    @pytest.fixture(scope="class")
    def ledger(self):
        obs = Observability.enabled()
        tiny_obs_run(obs)
        events = obs.tracer.events
        provs = [e for e in events if e.name == PROVENANCE_EVENT]
        plans = [e for e in events if e.name == "scheduler.plan"]
        spans = [e for e in events if e.name == SPAN_EVENT]
        return provs, plans, spans

    def test_every_committed_plan_has_provenance(self, ledger):
        provs, plans, _ = ledger
        assert provs and plans
        assert {e.args["plan_id"] for e in provs} \
            == {e.args["plan_id"] for e in plans}

    def test_records_carry_policy_triggers_pricing_actions(self, ledger):
        provs, _, _ = ledger
        for e in provs:
            assert e.args["policy"]
            assert isinstance(e.args["triggers"], list)
            assert "pricing" in e.args
            assert e.args["actions"]
        kinds = {t["kind"] for e in provs for t in e.args["triggers"]}
        assert "arrival" in kinds

    def test_lyra_epochs_note_mckp_inputs(self, ledger):
        provs, _, _ = ledger
        noted = [e for e in provs
                 if e.args["policy"] == "lyra" and e.args.get("inputs")]
        assert noted
        assert any("mckp_admitted" in e.args["inputs"] for e in noted)

    def test_provenance_span_links_resolve(self, ledger):
        provs, _, spans = ledger
        span_ids = {e.args["span_id"] for e in spans}
        linked = [e for e in provs if e.args.get("span_id") is not None]
        assert linked
        assert all(e.args["span_id"] in span_ids for e in linked)

    def test_untraced_run_allocates_no_provenance(self, monkeypatch):
        # the zero-cost-when-disabled contract, asserted structurally:
        # a run without tracing must never construct a Provenance
        import repro.core.actions as actions_mod
        import repro.core.kernel as kernel_mod
        import repro.simulator.simulation as sim_mod

        calls = []

        class Spy:
            def __init__(self, *args, **kwargs):
                calls.append((args, kwargs))

        monkeypatch.setattr(sim_mod, "Provenance", Spy)
        monkeypatch.setattr(kernel_mod, "Provenance", Spy)
        monkeypatch.setattr(actions_mod, "Provenance", Spy)
        tiny_obs_run()  # default bundle: tracing off
        assert calls == []

    def test_untraced_run_keeps_no_trigger_state(self):
        from repro.scenarios import build_sim

        setup = default_setup(
            num_jobs=30, days=0.25, training_servers=4,
            inference_servers=6, seed=3,
        )
        sim = build_sim(setup, "lyra")
        sim.run()
        assert sim._pending_triggers == []
        assert sim._dropped_triggers == 0
        assert len(sim.tracer) == 0


@pytest.fixture(scope="module")
def chaos_trace(tmp_path_factory):
    """A traced chaos run that exercises every causal path: outage- and
    reclaim-caused preemptions, loans, stragglers, a flash crowd."""
    from repro.faults import resolve_plan

    setup = default_setup(
        num_jobs=120, days=0.5, training_servers=4, inference_servers=10,
        seed=2, target_load=1.6,
    )
    obs = Observability.enabled()
    run_scheme(
        setup, "lyra", seed=2,
        sim_overrides={"fault_plan": resolve_plan("chaos")}, obs=obs,
    )
    path = tmp_path_factory.mktemp("chaos") / "chaos.jsonl"
    obs.export_trace(str(path))
    return str(path)


class TestTimelineAndWhy:
    @pytest.fixture(scope="class")
    def store(self, chaos_trace):
        return TimelineStore.from_file(chaos_trace)

    def _explanation_for(self, store, job_id, transition):
        (expl,) = [e for e in store.why(job_id)
                   if e.transition is transition]
        return expl

    def test_every_preemption_has_a_causal_chain(self, store):
        preempted = [
            (tl.job_id, tr) for tl in store.jobs.values()
            for tr in tl.transitions if tr.state == "preempted"
        ]
        assert preempted, "chaos run must preempt something"
        for job_id, tr in preempted:
            chain = self._explanation_for(store, job_id, tr).chain
            # the what plus at least one because
            assert len(chain) >= 2

    def test_reclaim_preemptions_link_plan_and_trigger(self, store):
        found = 0
        for tl in store.jobs.values():
            for tr in tl.transitions:
                if tr.state != "preempted" \
                        or tr.detail.get("cause") != "reclaim":
                    continue
                found += 1
                text = " ".join(
                    s.text for s in
                    self._explanation_for(store, tl.job_id, tr).chain
                )
                assert "plan #" in text
                assert "trigger:" in text
        assert found, "chaos seed must produce reclaim preemptions"

    def test_node_failure_preemptions_blame_the_fault(self, store):
        texts = []
        for tl in store.jobs.values():
            for tr in tl.transitions:
                if tr.state == "preempted" \
                        and tr.detail.get("cause") == "node_failure":
                    texts.append(" ".join(
                        s.text for s in
                        self._explanation_for(store, tl.job_id, tr).chain
                    ))
        assert texts
        assert all("failed" in t for t in texts)
        assert any("fault injection" in t or "MTBF" in t for t in texts)

    def test_dispatches_record_placement_and_loan_status(self, store):
        starts = [tr for tl in store.jobs.values()
                  for tr in tl.transitions if tr.state == "running"]
        assert starts
        assert all(tr.detail.get("servers") for tr in starts)
        assert any(tr.detail.get("gpu_types") for tr in starts)
        assert any(tr.detail.get("onloan") for tr in starts)

    def test_server_timelines_track_loans_and_health(self, store):
        states = {tr.state for tl in store.servers.values()
                  for tr in tl.transitions}
        assert "loaned" in states
        assert "down" in states and "up" in states

    def test_at_selects_the_state_in_effect(self, store):
        job_id = min(store.jobs)
        timeline = store.jobs[job_id]
        last = timeline.transitions[-1]
        story = store.why(job_id, at=last.ts + 1.0)
        assert len(story) == 1 and story[0].transition is last
        first = timeline.transitions[0]
        assert store.why(job_id, at=first.ts - 1.0) == []

    def test_unknown_job_raises(self, store):
        with pytest.raises(KeyError):
            store.why(999999)

    def test_render_why_narrates(self, store):
        job_id = next(
            tl.job_id for tl in store.jobs.values()
            if any(t.state == "preempted" for t in tl.transitions)
        )
        text = render_why(job_id, store.why(job_id))
        assert f"== why: job {job_id} ==" in text
        assert "preempted" in text


class TestRunReport:
    def test_byte_deterministic_across_same_seed_runs(self, tmp_path):
        reports = []
        for i in range(2):
            obs = Observability.enabled()
            tiny_obs_run(obs)
            path = tmp_path / f"r{i}.jsonl"
            obs.export_trace(str(path))
            reports.append(build_report(load_trace(str(path))))
        assert reports[0] == reports[1]

    def test_sections_and_percentiles(self, chaos_trace):
        text = build_report(load_trace(chaos_trace))
        for section in ("# Run report", "## Job funnel",
                        "## Completion and queueing", "## Utilization",
                        "## Loan / reclaim timeline", "## Preemptions",
                        "## Decision ledger", "## Phase breakdown",
                        "## Resilience"):
            assert section in text
        assert "| JCT |" in text and "| queue wait |" in text
        assert "p95" in text
        assert "reclaim" in text  # preemption causes include reclaims

    def test_excludes_wall_clock(self, chaos_trace):
        # phase table is call counts only; spans never appear
        text = build_report(load_trace(chaos_trace))
        assert "total_s" not in text
        assert "mean_ms" not in text
        assert "dur_ms" not in text

    def test_falls_back_to_event_derived_percentiles(self):
        trace = {"events": [
            {"ts": 0.0, "name": "job.submit", "job_id": 1},
            {"ts": 5.0, "name": "job.start", "job_id": 1,
             "args": {"queued_s": 5.0}},
            {"ts": 10.0, "name": "job.finish", "job_id": 1,
             "args": {"jct_s": 10.0}},
        ], "summary": {}}
        text = build_report(trace)
        assert "| JCT | 1 | 10.0 |" in text
        assert "| queue wait | 1 | 5.0 |" in text


class TestDiffTraces:
    def test_identical_traces(self):
        trace = {"events": [
            {"ts": 0.0, "name": "job.submit", "job_id": 1, "args": {}},
        ], "summary": {"metrics": {"counters": {"sim.submissions": 1}}}}
        diff = diff_traces(trace, trace)
        assert diff.identical
        assert "identical" in render_diff(diff)

    def test_divergence_located(self):
        a = {"events": [
            {"ts": 0.0, "name": "job.submit", "job_id": 1, "args": {}},
            {"ts": 1.0, "name": "job.start", "job_id": 1,
             "args": {"workers": 2}},
        ], "summary": {}}
        b = json.loads(json.dumps(a))
        b["events"][1]["args"]["workers"] = 3
        diff = diff_traces(a, b)
        assert not diff.identical
        assert diff.divergence_index == 1
        out = render_diff(diff, "a", "b")
        assert "first divergence at event #1" in out

    def test_span_events_ignored(self):
        a = {"events": [{"ts": 0.0, "name": "obs.span", "cat": "span",
                         "args": {"dur_ms": 1.0}}], "summary": {}}
        b = {"events": [{"ts": 0.0, "name": "obs.span", "cat": "span",
                         "args": {"dur_ms": 9.0}}], "summary": {}}
        assert diff_traces(a, b).identical

    def test_length_mismatch_is_a_divergence(self):
        a = {"events": [
            {"ts": 0.0, "name": "job.submit", "job_id": 1, "args": {}},
        ], "summary": {}}
        b = {"events": [], "summary": {}}
        diff = diff_traces(a, b)
        assert diff.divergence_index == 0
        assert diff.divergence_b is None
        assert "<end of trace>" in render_diff(diff)

    def test_metric_deltas_reported(self):
        a = {"events": [], "summary": {
            "metrics": {"counters": {"sim.preemptions": 3}}}}
        b = {"events": [], "summary": {
            "metrics": {"counters": {"sim.preemptions": 5}}}}
        diff = diff_traces(a, b)
        assert diff.metric_deltas == {"sim.preemptions": (3, 5)}
        assert not diff.identical


class TestLogging:
    def test_silent_by_default_then_opt_in(self):
        import io
        import logging

        from repro.obs.log import (
            LOGGER, configure_logging, get_logger, reset_logging,
        )

        try:
            assert get_logger("simulator").name == "repro.simulator"
            # default: NullHandler only, nothing propagates to a stream
            assert all(
                isinstance(h, logging.NullHandler) for h in LOGGER.handlers
            )
            buf = io.StringIO()
            configure_logging("debug", stream=buf)
            get_logger("simulator").debug("job 1 finished")
            assert "job 1 finished" in buf.getvalue()
            # idempotent: reconfiguring replaces, not stacks
            configure_logging("debug", stream=io.StringIO())
            streams = [h for h in LOGGER.handlers
                       if isinstance(h, logging.StreamHandler)
                       and not isinstance(h, logging.NullHandler)]
            assert len(streams) == 1
            with pytest.raises(ValueError):
                configure_logging("chatty")
        finally:
            reset_logging()


class TestCLIObservability:
    def test_run_trace_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        rc = main([
            "run", "--scheme", "lyra", "--jobs", "40", "--days", "0.25",
            "--training-servers", "4", "--inference-servers", "6",
            "--trace", str(path),
        ])
        assert rc == 0
        assert "trace records" in capsys.readouterr().out
        assert path.exists()
        rc = main(["inspect", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== trace overview ==" in out
        assert "== phase timing (wall clock) ==" in out

    def test_run_trace_chrome_format(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        rc = main([
            "run", "--scheme", "lyra", "--jobs", "40", "--days", "0.25",
            "--training-servers", "4", "--inference-servers", "6",
            "--trace", str(path), "--trace-format", "chrome",
        ])
        assert rc == 0
        json.loads(path.read_text())  # a single valid JSON document
        assert main(["inspect", str(path)]) == 0
        assert "job.submit" in capsys.readouterr().out

    def test_inspect_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent/trace.jsonl"]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_inspect_bad_file(self, tmp_path, capsys):
        path = tmp_path / "junk.jsonl"
        path.write_text("definitely not json\n")
        assert main(["inspect", str(path)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_run_report_why_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        rc = main([
            "run", "--scheme", "lyra", "--jobs", "40", "--days", "0.25",
            "--training-servers", "4", "--inference-servers", "6",
            "--trace", str(path),
        ])
        assert rc == 0
        capsys.readouterr()

        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert "## Decision ledger" in out

        md = tmp_path / "report.md"
        assert main(["report", str(path), "--out", str(md)]) == 0
        capsys.readouterr()
        assert "# Run report" in md.read_text()

        job_id = next(e["job_id"] for e in load_trace(str(path))["events"]
                      if e["name"] == "job.submit")
        assert main(["why", str(path), str(job_id)]) == 0
        out = capsys.readouterr().out
        assert f"== why: job {job_id} ==" in out
        assert "job submitted" in out

        assert main(["why", str(path), "999999"]) == 2
        assert "does not appear" in capsys.readouterr().err

    def test_why_missing_file(self, capsys):
        assert main(["why", "/nonexistent/trace.jsonl", "1"]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_inspect_diff_cli(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"ts": 0.0, "name": "job.submit", "job_id": 1}\n')
        b.write_text('{"ts": 0.0, "name": "job.submit", "job_id": 2}\n')
        assert main(["inspect", "--diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["inspect", "--diff", str(a), str(b)]) == 1
        assert "first divergence" in capsys.readouterr().out
        assert main(["inspect", "--diff", str(a)]) == 2
        assert "exactly two" in capsys.readouterr().err
        assert main(["inspect", str(a), str(b)]) == 2
        assert "one trace" in capsys.readouterr().err
