"""Tests for the observability subsystem: tracer, metrics registry,
phase profiler, trace inspection and the CLI wiring."""

import json
import math
import time

import pytest

from repro.cli import main
from repro.elastic.controller import ElasticController
from repro.obs import (
    Observability,
    SUMMARY_EVENT,
    TraceFormatError,
    Tracer,
    inspect_trace,
    load_trace,
    render_summary,
    summarize,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER, PhaseProfiler
from repro.scenarios import default_setup, run_scheme
from repro.simulator.metrics import SimulationMetrics


class TestTracer:
    def test_events_ordered_by_time_then_seq(self):
        tracer = Tracer()
        tracer.emit("b", ts=5.0)
        tracer.emit("a", ts=1.0)
        tracer.emit("c", ts=1.0)
        ordered = tracer.sorted_events()
        assert [(e.ts, e.name) for e in ordered] == [
            (1.0, "a"), (1.0, "c"), (5.0, "b"),
        ]
        # ties broken by emission order
        assert ordered[0].seq < ordered[1].seq

    def test_category_derived_from_name(self):
        tracer = Tracer()
        tracer.emit("job.start", ts=0.0, job_id=3, workers=2)
        event = tracer.events[0]
        assert event.cat == "job"
        assert event.job_id == 3
        assert event.args == {"workers": 2}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer.disabled()
        for i in range(100):
            tracer.emit("job.start", ts=float(i), job_id=i)
        assert len(tracer) == 0
        assert tracer.sorted_events() == []

    def test_disabled_tracer_is_cheaper_than_enabled(self):
        # The whole point of the enabled-flag short-circuit: emitting
        # into a disabled tracer must beat actually recording events.
        n = 50_000
        off, on = Tracer.disabled(), Tracer()
        t0 = time.perf_counter()
        for i in range(n):
            off.emit("job.start", ts=0.0, job_id=i)
        t_off = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(n):
            on.emit("job.start", ts=0.0, job_id=i)
        t_on = time.perf_counter() - t0
        assert len(off) == 0 and len(on) == n
        assert t_off < t_on

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = Tracer()
        tracer.emit("job.submit", ts=0.0, job_id=1)
        tracer.emit("job.start", ts=2.0, job_id=1, workers=4)
        path = tmp_path / "t.jsonl"
        count = tracer.export_jsonl(str(path), summary={"phases": {}})
        lines = path.read_text().splitlines()
        assert count == len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "job.submit"
        assert records[1]["args"] == {"workers": 4}
        assert records[-1]["name"] == SUMMARY_EVENT

    def test_chrome_export_round_trips_json(self, tmp_path):
        tracer = Tracer()
        tracer.emit("job.submit", ts=0.0, job_id=1)
        tracer.emit("job.start", ts=1.0, job_id=1)
        tracer.emit("job.finish", ts=11.0, job_id=1, jct_s=11.0)
        tracer.emit("scheduler.epoch", ts=12.0)
        path = tmp_path / "t.json"
        tracer.export_chrome(str(path), summary={"metrics": {}})
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        # microsecond timestamps on the simulated clock
        assert spans[0]["ts"] == 1_000_000
        assert spans[0]["dur"] == 10_000_000
        counters = [e for e in events if e["ph"] == "C"]
        assert counters  # running/pending track exists
        assert doc["otherData"]["summary"] == {"metrics": {}}

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="jsonl|chrome"):
            Tracer().export(str(tmp_path / "t"), format="xml")


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("sim.preemptions")
        a.inc()
        assert reg.counter("sim.preemptions") is a
        assert reg.counter("sim.preemptions").value == 1

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("ops", kind="loan").inc(2)
        reg.counter("ops", kind="reclaim").inc(3)
        snap = reg.snapshot()
        assert snap["counters"]["ops{kind=loan}"] == 2
        assert snap["counters"]["ops{kind=reclaim}"] == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("usage")
        assert math.isnan(gauge.value)
        gauge.inc(0.5)
        gauge.dec(0.25)
        assert gauge.value == pytest.approx(0.25)
        hist = reg.histogram("latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean() == pytest.approx(2.5)
        assert hist.percentile(50) == pytest.approx(2.5)

    def test_snapshot_and_find(self):
        reg = MetricsRegistry()
        reg.counter("sim.submissions").inc(7)
        reg.gauge("usage.training").set(0.8)
        reg.histogram("orchestrator.collateral").observe(0.1)
        snap = reg.snapshot()
        assert snap["counters"]["sim.submissions"] == 7
        assert snap["histograms"]["orchestrator.collateral"]["count"] == 1
        only_sim = reg.find("sim.")
        assert only_sim["counters"] == {"sim.submissions": 7}
        assert only_sim["gauges"] == {}


class TestPhaseProfiler:
    def test_records_calls_and_totals(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("tick"):
                pass
        (stat,) = prof.stats()
        assert stat.name == "tick" and stat.calls == 3
        assert stat.total_s >= 0.0
        assert stat.max_ms >= stat.mean_ms * 0.5
        assert "tick" in prof.render_table()

    def test_stats_sorted_by_total(self):
        prof = PhaseProfiler()
        with prof.phase("fast"):
            pass
        with prof.phase("slow"):
            time.sleep(0.002)
        assert [s.name for s in prof.stats()] == ["slow", "fast"]

    def test_disabled_profiler_shares_null_phase(self):
        prof = PhaseProfiler.disabled()
        cm1, cm2 = prof.phase("a"), prof.phase("b")
        assert cm1 is cm2  # one shared no-op object, no allocation
        with cm1:
            pass
        assert prof.stats() == []
        assert NULL_PROFILER.phase("x") is cm1


class TestSimulationMetricsShim:
    def test_bare_construction_still_works(self):
        metrics = SimulationMetrics()
        metrics.preemptions += 2
        metrics.loan_ops.append(3)
        assert metrics.preemptions == 2
        assert metrics.loan_ops == [3]

    def test_attributes_backed_by_registry(self):
        reg = MetricsRegistry()
        metrics = SimulationMetrics(registry=reg)
        metrics.submissions = 5
        metrics.reclaim_ops.append(2)
        snap = reg.snapshot()
        assert snap["counters"]["sim.submissions"] == 5
        assert snap["histograms"]["orchestrator.reclaim_servers"]["count"] == 1


class TestElasticControllerTracing:
    def test_membership_changes_emit_events(self):
        tracer = Tracer()
        ctrl = ElasticController(
            job_id=7, min_workers=1, max_workers=4,
            tracer=tracer, clock=lambda: 42.0,
        )
        ctrl.join("w0")
        ctrl.join("w1", flexible=True)
        ctrl.leave("w1")
        ctrl.stop()
        names = [e.name for e in tracer.events]
        assert names == [
            "elastic.join", "elastic.join", "elastic.leave", "elastic.stop",
        ]
        assert all(e.ts == 42.0 and e.job_id == 7 for e in tracer.events)
        assert tracer.events[1].args["flexible"] is True


def tiny_obs_run(obs=None):
    setup = default_setup(
        num_jobs=60, days=0.5, training_servers=6, inference_servers=8,
        seed=3,
    )
    return run_scheme(setup, "lyra", obs=obs)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        obs = Observability.enabled()
        tiny_obs_run(obs)
        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        obs.export_trace(str(path))
        return obs, str(path)

    def test_lifecycle_events_present(self, traced):
        obs, _ = traced
        counts = {}
        for event in obs.tracer.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        assert counts["job.submit"] == 60
        assert counts["job.start"] == 60
        assert counts["job.finish"] == 60
        assert counts.get("scheduler.epoch", 0) > 0
        assert counts.get("scheduler.mckp", 0) > 0

    def test_phase_timings_recorded(self, traced):
        obs, _ = traced
        phases = obs.phases.to_dict()
        assert "scheduler.tick" in phases
        assert "scheduler.allocation" in phases
        assert phases["scheduler.tick"]["calls"] > 0

    def test_every_jsonl_line_parses(self, traced):
        _, path = traced
        lines = open(path).read().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert records[-1]["name"] == SUMMARY_EVENT
        assert "phases" in records[-1]["args"]

    def test_inspect_renders_all_sections(self, traced):
        _, path = traced
        report = inspect_trace(path)
        for section in ("trace overview", "event census",
                        "phase timing", "recorded metrics"):
            assert section in report

    def test_seeded_runs_produce_identical_event_streams(self):
        streams = []
        for _ in range(2):
            obs = Observability.enabled()
            tiny_obs_run(obs)
            streams.append([
                (e.ts, e.name, e.job_id, json.dumps(e.args, sort_keys=True,
                                                    default=str))
                for e in obs.tracer.sorted_events()
            ])
        assert streams[0] == streams[1]

    def test_inspect_deterministic_outside_wall_clock(self, tmp_path):
        # Everything repro inspect prints before the phase-timing table
        # is derived from simulated time only, so two seeded runs agree.
        reports = []
        for i in range(2):
            obs = Observability.enabled()
            tiny_obs_run(obs)
            path = tmp_path / f"t{i}.jsonl"
            obs.export_trace(str(path))
            reports.append(inspect_trace(str(path)))
        head = [r.split("== phase timing")[0] for r in reports]
        assert head[0] == head[1]

    def test_disabled_obs_run_matches_default(self):
        # A run with the disabled bundle reports the same numbers as a
        # bare run — observability must not perturb the simulation.
        a = tiny_obs_run()
        b = tiny_obs_run(Observability.disabled())
        assert a.jct_summary().mean == b.jct_summary().mean
        assert a.preemptions == b.preemptions

    def test_chrome_trace_loads_back(self, traced):
        obs, _ = traced
        import io

        buf = io.StringIO()
        obs.tracer.export_chrome(buf, summary=obs.summary())
        doc = json.loads(buf.getvalue())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestInspectLoader:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_trace(str(path))

    def test_garbage_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "job.submit", "ts": 0}\nnot json\n')
        with pytest.raises(TraceFormatError, match=":2:"):
            load_trace(str(path))

    def test_chrome_document_auto_detected(self, tmp_path):
        tracer = Tracer()
        tracer.emit("job.submit", ts=1.0, job_id=4)
        tracer.emit("job.start", ts=2.0, job_id=4)
        tracer.emit("job.finish", ts=3.0, job_id=4)
        path = tmp_path / "t.json"
        tracer.export_chrome(str(path))
        trace = load_trace(str(path))
        # the whole lifecycle survives the Chrome round trip as instants
        names = [e["name"] for e in trace["events"]]
        assert names == ["job.submit", "job.start", "job.finish"]
        event = next(e for e in trace["events"] if e["name"] == "job.submit")
        assert event["ts"] == pytest.approx(1.0)
        assert event["job_id"] == 4
        summary = summarize(trace)
        assert (summary.submissions, summary.starts, summary.finishes) \
            == (1, 1, 1)

    def test_summarize_preemption_breakdown(self):
        trace = {"events": [
            {"ts": 0.0, "name": "job.preempt", "job_id": 1,
             "args": {"cause": "reclaim"}},
            {"ts": 1.0, "name": "job.preempt", "job_id": 1,
             "args": {"cause": "reclaim"}},
            {"ts": 2.0, "name": "job.preempt", "job_id": 2,
             "args": {"cause": "node_failure"}},
            {"ts": 3.0, "name": "orchestrator.reclaim",
             "args": {"demand": 2, "servers": ["i0"], "preempted": [1],
                      "collateral": 0.25}},
        ], "summary": {}}
        summary = summarize(trace)
        assert summary.preemptions == 3
        assert summary.preempt_causes == {"reclaim": 2, "node_failure": 1}
        assert summary.preempt_victims == {1: 2, 2: 1}
        report = render_summary(summary)
        assert "cause reclaim" in report
        assert "job 1 ×2" in report
        assert "0.250" in report


class TestLogging:
    def test_silent_by_default_then_opt_in(self):
        import io
        import logging

        from repro.obs.log import (
            LOGGER, configure_logging, get_logger, reset_logging,
        )

        try:
            assert get_logger("simulator").name == "repro.simulator"
            # default: NullHandler only, nothing propagates to a stream
            assert all(
                isinstance(h, logging.NullHandler) for h in LOGGER.handlers
            )
            buf = io.StringIO()
            configure_logging("debug", stream=buf)
            get_logger("simulator").debug("job 1 finished")
            assert "job 1 finished" in buf.getvalue()
            # idempotent: reconfiguring replaces, not stacks
            configure_logging("debug", stream=io.StringIO())
            streams = [h for h in LOGGER.handlers
                       if isinstance(h, logging.StreamHandler)
                       and not isinstance(h, logging.NullHandler)]
            assert len(streams) == 1
            with pytest.raises(ValueError):
                configure_logging("chatty")
        finally:
            reset_logging()


class TestCLIObservability:
    def test_run_trace_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        rc = main([
            "run", "--scheme", "lyra", "--jobs", "40", "--days", "0.25",
            "--training-servers", "4", "--inference-servers", "6",
            "--trace", str(path),
        ])
        assert rc == 0
        assert "trace records" in capsys.readouterr().out
        assert path.exists()
        rc = main(["inspect", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== trace overview ==" in out
        assert "== phase timing (wall clock) ==" in out

    def test_run_trace_chrome_format(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        rc = main([
            "run", "--scheme", "lyra", "--jobs", "40", "--days", "0.25",
            "--training-servers", "4", "--inference-servers", "6",
            "--trace", str(path), "--trace-format", "chrome",
        ])
        assert rc == 0
        json.loads(path.read_text())  # a single valid JSON document
        assert main(["inspect", str(path)]) == 0
        assert "job.submit" in capsys.readouterr().out

    def test_inspect_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent/trace.jsonl"]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_inspect_bad_file(self, tmp_path, capsys):
        path = tmp_path / "junk.jsonl"
        path.write_text("definitely not json\n")
        assert main(["inspect", str(path)]) == 2
        assert "cannot parse" in capsys.readouterr().err
