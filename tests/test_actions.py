"""Tests for the decision-plan core: actions, transactions, executor.

Covers the freeze-guard contract (policies and the orchestrator emit
plans; only the PlanExecutor applies them), dry-run pricing leaving the
simulation untouched, single-use plans, declarative migration, the
explicit ``epoch_idempotent`` declarations, the on-loan-cost guard, and
the hypothesis properties pinning reclaim-plan rollback and the
scale-in-first/preempt disjointness.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec
from repro.core.actions import (
    EpochPlan,
    MigrateJob,
    PlanError,
    PlanTransaction,
)
from repro.core.orchestrator import ResourceOrchestrator
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.agnostic import LyraAgnosticScheduler
from repro.schedulers.fifo import (
    FIFOScheduler,
    OpportunisticScheduling,
    SJFScheduler,
)
from repro.schedulers.gandiva import GandivaScheduler
from repro.schedulers.lyra import LyraScheduler
from repro.schedulers.pollux import PolluxScheduler
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.traces.inference import InferenceTrace
from repro.traces.workload import TraceConfig, generate_workload

ALL_POLICIES = (
    FIFOScheduler,
    SJFScheduler,
    OpportunisticScheduling,
    LyraScheduler,
    LyraAgnosticScheduler,
    GandivaScheduler,
    AFSScheduler,
    PolluxScheduler,
)


def flat_trace(levels, num_servers=4):
    return InferenceTrace(utilization=np.array(levels, dtype=float), num_servers=num_servers)


def state_snapshot(sim) -> tuple:
    """A deep, comparable snapshot of everything a plan could touch."""
    servers = tuple(
        (
            s.server_id,
            s.on_loan,
            s.group,
            tuple(sorted(s.allocations.items())),
            s.free_gpus,
        )
        for cluster in (sim.pair.training, sim.pair.inference)
        for s in cluster.servers
    )
    jobs = tuple(
        (
            j.job_id,
            j.status.value,
            j.total_workers,
            j.remaining_work,
            tuple(sorted(j.base_placement.items())),
            tuple(sorted(j.flex_placement.items())),
            j.preemptions,
            j.scale_ops,
            j.hetero_penalty,
        )
        for j in sim.jobs.values()
    )
    containers = tuple(
        (cid, c.job_id, c.server_id, c.state.value)
        for cid, c in sorted(sim.rm._containers.items())
    )
    return (
        servers,
        jobs,
        containers,
        tuple(sorted(sim.running)),
        tuple(j.job_id for j in sim.pending),
        len(sim.activities),
        len(sim.rm.audit),
        sim.metrics.scale_ops,
        len(sim.metrics.reclaim_ops),
        len(sim.metrics.loan_ops),
    )


def mid_run_sim(policy, until=3600.0, num_jobs=40, **cfg):
    specs = generate_workload(
        TraceConfig(
            num_jobs=num_jobs,
            days=0.5,
            cluster_gpus=32,
            seed=3,
            target_load=2.0,
        )
    ).specs
    pair = ClusterPair(make_training_cluster(4), make_inference_cluster(4))
    sim = Simulation(
        specs,
        pair,
        policy,
        inference_trace=flat_trace([0.2] * 24, num_servers=4),
        config=SimulationConfig(record_activities=True, **cfg),
    )
    sim.run(until=until)
    return sim


def loaning_sim(reclaimer="lyra", scale_in_first=True, until=4000.0):
    """A mid-run orchestrated sim with servers on loan and jobs on them."""
    trace = flat_trace([0.0] * 24, num_servers=4)
    specs = [
        # filler pins the dedicated training servers
        JobSpec(job_id=0, submit_time=0.0, duration=50000.0, max_workers=16),
        JobSpec(job_id=1, submit_time=0.0, duration=50000.0, max_workers=4,
                min_workers=1, elastic=True, fungible=True),
        JobSpec(job_id=2, submit_time=100.0, duration=50000.0, max_workers=4,
                min_workers=1, elastic=True, fungible=True),
        JobSpec(job_id=3, submit_time=200.0, duration=50000.0, max_workers=2, fungible=True),
    ]
    orch = ResourceOrchestrator(reclaimer=reclaimer, seed=5, scale_in_first=scale_in_first)
    pair = ClusterPair(make_training_cluster(2), make_inference_cluster(4))
    sim = Simulation(
        specs,
        pair,
        LyraScheduler(),
        inference_trace=trace,
        orchestrator=orch,
        config=SimulationConfig(record_activities=True),
    )
    sim.run(until=until)
    return sim


# ----------------------------------------------------------------------
# explicit epoch_idempotent declarations (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", ALL_POLICIES, ids=lambda c: c.__name__)
def test_every_policy_declares_epoch_idempotent_explicitly(cls):
    assert "epoch_idempotent" in cls.__dict__, (
        f"{cls.__name__} must declare epoch_idempotent in its own class "
        f"body, not inherit it — the flag is a per-policy contract"
    )
    assert isinstance(cls.__dict__["epoch_idempotent"], bool)


# ----------------------------------------------------------------------
# free_pools on-loan cost guard (satellite)
# ----------------------------------------------------------------------
def test_free_pools_rejects_subunit_onloan_cost_from_view():
    fake_view = SimpleNamespace(pools=lambda: SimpleNamespace(onloan_cost=0.5))
    fake_sim = SimpleNamespace(view=fake_view)
    with pytest.raises(ValueError, match="on-loan cost 0.5"):
        FIFOScheduler.free_pools(fake_sim)


def test_free_pools_weakest_type_default_with_empty_onloan_pool():
    # no servers on loan anywhere: the scan collects no per-type costs
    # and must fall back to a conservative default of at least 1.0
    fake_sim = SimpleNamespace(
        pair=SimpleNamespace(),  # no inference_compute attribute
        cluster=make_training_cluster(2),
    )
    pools = FIFOScheduler.free_pools(fake_sim)
    assert pools.onloan == 0
    assert pools.onloan_cost >= 1.0
    assert pools.onloan_cost == 3.0  # the documented conservative default


# ----------------------------------------------------------------------
# freeze guard: every policy plans; dry runs leave no trace
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", ALL_POLICIES, ids=lambda c: c.__name__)
def test_policy_plans_roundtrip_through_executor(cls):
    policy = cls()
    sim = mid_run_sim(policy)
    assert sim.executor.plans_applied > 0, (
        f"{cls.__name__} never produced a plan the executor applied — "
        f"the simulation must route every epoch through the plan core"
    )
    assert sim.executor.plans_rejected == 0

    # re-queue a running job so the next epoch has real work to stage
    running = sorted(sim.running)
    if running:
        sim.preempt(sim.jobs[running[0]], cause="scheduler")
    if isinstance(policy, PolluxScheduler):
        policy._last_ga = float("-inf")  # bypass the GA cadence gate

    before = state_snapshot(sim)
    plan = policy.plan(sim)
    assert isinstance(plan, EpochPlan)
    receipt = sim.executor.apply(plan, dry_run=True)
    assert not receipt.applied
    assert receipt.pricing is not None
    assert state_snapshot(sim) == before, (
        f"dry-running a {cls.__name__} plan changed the simulation"
    )
    sim.rm.verify_books()

    # the same decisions, re-planned, commit cleanly
    if isinstance(policy, PolluxScheduler):
        policy._last_ga = float("-inf")
    plan2 = policy.plan(sim)
    receipt2 = sim.executor.apply(plan2)
    assert receipt2.applied
    sim.rm.verify_books()
    if cls in (FIFOScheduler, SJFScheduler, GandivaScheduler, AFSScheduler, LyraScheduler):
        assert len(plan2.actions) > 0, (f"{cls.__name__} should have re-admitted the preempted job")


def test_plans_are_single_use():
    sim = mid_run_sim(FIFOScheduler())
    plan = sim.policy.plan(sim)
    sim.executor.apply(plan)
    with pytest.raises(PlanError, match="single-use"):
        sim.executor.apply(plan)


def test_open_transaction_blocks_a_second_plan():
    sim = mid_run_sim(FIFOScheduler())
    txn = PlanTransaction(sim, policy="outer")
    try:
        with pytest.raises(PlanError, match="already open"):
            sim.policy.plan(sim)
    finally:
        txn.abort()


# ----------------------------------------------------------------------
# orchestrator plans: dry-run pricing and real commit
# ----------------------------------------------------------------------
def test_orchestrator_reclaim_dry_run_prices_without_state_change():
    sim = loaning_sim()
    loaned = sim.pair.loaned_count
    assert loaned > 0, "fixture must have servers on loan"
    before = state_snapshot(sim)
    plan = sim.orchestrator.plan_reclaim(sim, demand=loaned)
    assert plan.policy == "orchestrator:lyra"
    assert len(plan.actions) > 0
    receipt = sim.executor.apply(plan, dry_run=True)
    assert not receipt.applied
    assert receipt.pricing["servers_reclaimed"] > 0
    assert state_snapshot(sim) == before
    sim.rm.verify_books()
    if sim.view is not None:
        sim.view.assert_consistent()


def test_orchestrator_reclaim_plan_commits_via_executor():
    sim = loaning_sim()
    loaned = sim.pair.loaned_count
    assert loaned > 0
    plan = sim.orchestrator.plan_reclaim(sim, demand=loaned)
    receipt = sim.executor.apply(plan)
    assert receipt.applied
    assert sim.pair.loaned_count < loaned
    assert sim.activities, "commit must write the RECLAIM activity"
    sim.rm.verify_books()
    if sim.view is not None:
        sim.view.assert_consistent()


def test_orchestrated_run_routes_ticks_through_executor():
    sim = loaning_sim(until=20000.0)
    assert sim.executor.plans_applied > 0
    assert sim.metrics.loan_ops, "no loans planned"


# ----------------------------------------------------------------------
# declarative migration
# ----------------------------------------------------------------------
def test_migrate_job_moves_workers_and_logs():
    spec = JobSpec(job_id=0, submit_time=0.0, duration=9000.0, max_workers=2)
    pair = ClusterPair(make_training_cluster(3), make_inference_cluster(1))
    sim = Simulation(
        [spec],
        pair,
        FIFOScheduler(),
        config=SimulationConfig(record_activities=True),
    )
    sim.run(until=100.0)
    job = sim.jobs[0]
    assert job.job_id in sim.running
    source = next(iter(job.servers))
    target = next(
        s.server_id for s in pair.training.servers
        if s.server_id != source and s.free_gpus >= job.gpus_on(source)
    )
    plan = EpochPlan(
        now=sim.now,
        policy="test",
        actions=(MigrateJob(job_id=0, source=source, target=target),),
    )
    receipt = sim.executor.apply(plan)
    assert receipt.applied
    assert source not in job.servers
    assert target in job.servers
    assert any(a.kind.value == "migrate" for a in sim.activities)
    sim.rm.verify_books()
    # the job still finishes after being re-homed (resume the engine —
    # run() would re-schedule the arrival events)
    sim.engine.run(until=sim._last_arrival + sim.config.drain_limit)
    assert job.job_id not in sim.running


def test_migrate_to_full_server_rejects_plan():
    spec = JobSpec(job_id=0, submit_time=0.0, duration=9000.0, max_workers=8, gpus_per_worker=1)
    pair = ClusterPair(make_training_cluster(2), make_inference_cluster(1))
    sim = Simulation([spec], pair, FIFOScheduler(), config=SimulationConfig(record_activities=True))
    sim.run(until=100.0)
    job = sim.jobs[0]
    source = next(iter(job.servers))
    target = next(s.server_id for s in pair.training.servers if s.server_id != source)
    pair.training.get(target).allocate(99, 8)  # fill the target
    plan = EpochPlan(
        now=sim.now,
        policy="test",
        actions=(MigrateJob(job_id=0, source=source, target=target),),
    )
    before = state_snapshot(sim)
    with pytest.raises(PlanError):
        sim.executor.apply(plan)
    assert sim.executor.plans_rejected == 1
    assert state_snapshot(sim) == before


# ----------------------------------------------------------------------
# hypothesis properties
# ----------------------------------------------------------------------
_SIM_CACHE = {}


def _cached_loaning_sim(reclaimer, scale_in_first):
    key = (reclaimer, scale_in_first)
    if key not in _SIM_CACHE:
        _SIM_CACHE[key] = loaning_sim(reclaimer=reclaimer, scale_in_first=scale_in_first)
    return _SIM_CACHE[key]


@settings(max_examples=40, deadline=None)
@given(
    demand=st.integers(min_value=1, max_value=6),
    reclaimer=st.sampled_from(["lyra", "scf", "random"]),
    scale_in_first=st.booleans(),
)
def test_reclaim_plan_dry_run_restores_clean_books(demand, reclaimer, scale_in_first):
    """Dry-running any reclaim plan leaves verify_books()-clean state.

    The same simulation is deliberately reused across examples: if a
    single dry run leaked state, later examples would catch the drift.
    """
    sim = _cached_loaning_sim(reclaimer, scale_in_first)
    before = state_snapshot(sim)
    plan = sim.orchestrator.plan_reclaim(sim, demand)
    receipt = sim.executor.apply(plan, dry_run=True)
    assert not receipt.applied
    assert state_snapshot(sim) == before
    sim.rm.verify_books()


@settings(max_examples=30, deadline=None)
@given(demand=st.integers(min_value=1, max_value=6))
def test_scale_in_first_never_preempts_a_scaled_in_job(demand):
    """§5.3: a job the plan shrinks is spared preemption in that plan."""
    sim = _cached_loaning_sim("lyra", True)
    plan = sim.orchestrator.plan_reclaim(sim, demand)
    scaled = {a.job_id for a in plan.actions if a.kind == "scale_in" and not a.staged}
    preempted = {a.job_id for a in plan.actions if a.kind == "preempt"}
    assert scaled.isdisjoint(preempted)
    for action in plan.actions:
        if a_is_final_reclaim(action):
            assert set(action.scaled_in).isdisjoint(set(action.preempted))
    sim.executor.apply(plan, dry_run=True)  # roll back for the next example


def a_is_final_reclaim(action) -> bool:
    return action.kind == "reclaim_servers" and not action.route_around


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
_TINY_CLI = [
    "--jobs",
    "40",
    "--days",
    "0.5",
    "--training-servers",
    "4",
    "--inference-servers",
    "6",
    "--load",
    "3.0",
    "--seed",
    "1",
]


def test_cli_whatif_prices_without_state_change(capsys):
    import json as json_mod

    from repro.cli import main

    rc = main(["whatif", *_TINY_CLI, "--scheme", "lyra", "--at", "7200", "--demand", "1", "--json"])
    assert rc == 0
    payload = json_mod.loads(capsys.readouterr().out)
    assert payload["state_changed"] is False
    assert payload["demand"] == 1
    assert "pricing" in payload and "actions" in payload["plan"]


def test_cli_whatif_rejects_non_loaning_scheme(capsys):
    from repro.cli import main

    rc = main(["whatif", *_TINY_CLI, "--scheme", "baseline"])
    assert rc == 2
    assert "no resource orchestrator" in capsys.readouterr().err


def test_cli_run_explain_reports_plans(capsys):
    import json as json_mod

    from repro.cli import main

    rc = main(["run", *_TINY_CLI, "--scheme", "lyra", "--explain", "--json"])
    assert rc == 0
    payload = json_mod.loads(capsys.readouterr().out)
    assert payload["plans"], "--explain must record the applied plans"
    first = payload["plans"][0]
    assert {"now", "policy", "by_kind", "actions", "pricing"} <= set(first)
