"""Tests for server reclaiming (§4), including the Fig. 5 worked example."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.gpu import V100
from repro.cluster.server import Server
from repro.core.reclaim import (
    CostModel,
    initial_greedy_costs,
    plan_reclaim_lyra,
    plan_reclaim_optimal,
    plan_reclaim_random,
    plan_reclaim_scf,
    preemption_cost_index,
    server_preemption_cost,
)

from tests.conftest import make_job


def place(job, server, workers, flexible=False):
    """Wire a job onto a server on both sides of the bookkeeping."""
    job.record_placement(
        server.server_id, workers, flexible=flexible, on_loan=server.on_loan
    )
    server.allocate(job.job_id, workers * job.spec.gpus_per_worker)


def fig5_instance():
    """The exact Fig. 5 / Table 1 example.

    Six 8-GPU servers; job a spans servers 1-2 (4+4 GPUs), job b fills
    server 3, job c spans servers 4-5 (8+2), job d spans servers 5-6
    (2+8).
    """
    servers = [
        Server(server_id=f"s{i}", gpu_type=V100, on_loan=True,
               home_cluster="inference")
        for i in range(1, 7)
    ]
    a = make_job(job_id=1, max_workers=8)
    b = make_job(job_id=2, max_workers=8)
    c = make_job(job_id=3, max_workers=10)
    d = make_job(job_id=4, max_workers=10)
    place(a, servers[0], 4)
    place(a, servers[1], 4)
    place(b, servers[2], 8)
    place(c, servers[3], 8)
    place(c, servers[4], 2)
    place(d, servers[4], 2)
    place(d, servers[5], 8)
    jobs = {j.job_id: j for j in (a, b, c, d)}
    return servers, jobs


class TestPreemptionCost:
    """The three cost definitions must reproduce Table 1 exactly."""

    @pytest.mark.parametrize(
        "idx,expected",
        [(0, 1), (1, 1), (2, 1), (3, 1), (4, 2), (5, 1)],
    )
    def test_job_count_column(self, idx, expected):
        servers, jobs = fig5_instance()
        cost = server_preemption_cost(servers[idx], jobs, CostModel.JOB_COUNT)
        assert cost == expected

    @pytest.mark.parametrize(
        "idx,expected",
        [(0, 0.5), (1, 0.5), (2, 1.0), (3, 0.8), (4, 0.4), (5, 0.8)],
    )
    def test_gpu_fraction_column(self, idx, expected):
        servers, jobs = fig5_instance()
        cost = server_preemption_cost(
            servers[idx], jobs, CostModel.GPU_FRACTION
        )
        assert cost == pytest.approx(expected)

    @pytest.mark.parametrize(
        "idx,expected",
        [(0, 0.5), (1, 0.5), (2, 1.0), (3, 0.5), (4, 1.0), (5, 0.5)],
    )
    def test_server_fraction_column(self, idx, expected):
        servers, jobs = fig5_instance()
        cost = server_preemption_cost(
            servers[idx], jobs, CostModel.SERVER_FRACTION
        )
        assert cost == pytest.approx(expected)


class TestCostIndexDrift:
    """The cached cost index and the greedy loop's live costs must agree.

    GPU_FRACTION was historically computed two ways — GPUs over
    ``job.servers`` in the index vs workers over the working span in the
    loop — which only diverges when a job's per-server GPU cost varies
    across hosts.  Both paths now route through ``job_preemption_cost``;
    these pins keep them fused.
    """

    def _mixed_cost_instance(self):
        """A job whose GPU cost differs across its two hosts (e.g. a
        heterogeneous placement paying double on one server)."""
        servers = [
            Server(server_id=f"m{i}", gpu_type=V100, on_loan=True,
                   home_cluster="inference")
            for i in range(3)
        ]
        job = make_job(job_id=1, max_workers=8)
        job.record_placement("m0", 2, flexible=False, gpu_cost=1, on_loan=True)
        servers[0].allocate(1, 2)
        job.record_placement("m1", 2, flexible=False, gpu_cost=2, on_loan=True)
        servers[1].allocate(1, 4)
        other = make_job(job_id=2, max_workers=4)
        place(other, servers[2], 3)
        return servers, {1: job, 2: other}

    @pytest.mark.parametrize("model", list(CostModel))
    def test_index_matches_initial_greedy_costs(self, model):
        servers, jobs = self._mixed_cost_instance()
        index = preemption_cost_index(servers, jobs, model)
        live = initial_greedy_costs(servers, jobs, model)
        assert live == pytest.approx(index)

    def test_mixed_costs_price_gpu_fraction_by_gpus_not_workers(self):
        # 2 GPUs on m0 vs 4 on m1: the fractions must be 1/3 and 2/3
        # (a workers-based computation would claim 1/2 each).
        servers, jobs = self._mixed_cost_instance()
        index = preemption_cost_index(servers, jobs, CostModel.GPU_FRACTION)
        assert index["m0"] == pytest.approx(1 / 3)
        assert index["m1"] == pytest.approx(2 / 3)

    def test_index_matches_on_fig5(self):
        servers, jobs = fig5_instance()
        for model in CostModel:
            index = preemption_cost_index(servers, jobs, model)
            live = initial_greedy_costs(servers, jobs, model)
            assert live == pytest.approx(index)


class TestLyraGreedy:
    def test_fig5_reclaims_servers_1_and_2_with_one_preemption(self):
        """The paper's headline example: reclaiming two servers should
        pick servers 1 and 2 (both host halves of job a), preempting a
        single job — where a naive 0-1 knapsack would preempt two."""
        servers, jobs = fig5_instance()
        plan = plan_reclaim_lyra(servers, jobs, count=2)
        assert set(plan.servers) == {"s1", "s2"}
        assert plan.preempted_jobs == {1}
        assert plan.collateral_gpus == 0

    def test_gpu_fraction_model_picks_badly_on_fig5(self):
        # Table 1's argument: GPU-fraction cost selects server 5 first,
        # causing two preemptions.
        servers, jobs = fig5_instance()
        plan = plan_reclaim_lyra(
            servers, jobs, count=1, cost_model=CostModel.GPU_FRACTION
        )
        assert plan.servers == ["s5"]
        assert plan.num_preemptions == 2

    def test_count_zero(self):
        servers, jobs = fig5_instance()
        plan = plan_reclaim_lyra(servers, jobs, count=0)
        assert plan.servers == []
        assert plan.num_preemptions == 0

    def test_negative_count_raises(self):
        servers, jobs = fig5_instance()
        with pytest.raises(ValueError):
            plan_reclaim_lyra(servers, jobs, count=-1)

    def test_idle_servers_taken_first(self):
        servers, jobs = fig5_instance()
        idle = Server(server_id="s_idle", gpu_type=V100, on_loan=True,
                      home_cluster="inference")
        plan = plan_reclaim_lyra(servers + [idle], jobs, count=1)
        assert plan.servers == ["s_idle"]
        assert plan.num_preemptions == 0
        assert plan.free_servers == 1

    def _with_flex_server(self):
        servers, jobs = fig5_instance()
        base_server = Server(server_id="s_base", gpu_type=V100, on_loan=True,
                             home_cluster="inference")
        flex_server = Server(server_id="s_flex", gpu_type=V100, on_loan=True,
                             home_cluster="inference")
        elastic = make_job(job_id=9, max_workers=8, min_workers=2,
                           elastic=True)
        place(elastic, base_server, 2)
        place(elastic, flex_server, 3, flexible=True)
        jobs[9] = elastic
        return servers + [base_server, flex_server], jobs

    def test_flex_only_server_vacated_by_scale_in(self):
        servers, jobs = self._with_flex_server()
        plan = plan_reclaim_lyra(servers, jobs, count=1)
        assert plan.servers == ["s_flex"]
        assert plan.num_preemptions == 0
        assert plan.scaled_in == {9: {"s_flex": 3}}

    def test_scale_in_disabled_skips_phase_zero_credit(self):
        # Without the scale-in-first phase the greedy may still pick a
        # base-free server (its preemption cost is zero), but the plan
        # must not claim any preemption-free phase-zero credit.
        servers, jobs = self._with_flex_server()
        plan = plan_reclaim_lyra(servers, jobs, count=1, scale_in_first=False)
        assert plan.num_preemptions == 0
        assert plan.free_servers == 0

    def test_cascade_counts_emptied_servers(self):
        # Preempting job a empties both s1 and s2; asking for two
        # servers costs one preemption thanks to the cascade.
        servers, jobs = fig5_instance()
        plan = plan_reclaim_lyra(servers[:2], jobs, count=2)
        assert plan.num_preemptions == 1

    def test_demand_larger_than_candidates(self):
        servers, jobs = fig5_instance()
        plan = plan_reclaim_lyra(servers, jobs, count=99)
        assert len(plan.servers) == 6

    def test_collateral_counts_unreturned_gpus(self):
        # Reclaim only server 4: preempting job c vacates its 2 GPUs on
        # server 5, which is not returned -> collateral 2.
        servers, jobs = fig5_instance()
        plan = plan_reclaim_lyra([servers[3]], jobs, count=1)
        assert plan.servers == ["s4"]
        assert plan.preempted_jobs == {3}
        assert plan.collateral_gpus == 2


class TestBaselines:
    def test_scf_prefers_fewest_jobs(self):
        servers, jobs = fig5_instance()
        plan = plan_reclaim_scf(servers, jobs, count=1)
        # Server 5 hosts two jobs; SCF must not pick it first.
        assert plan.servers != ["s5"]

    def test_random_is_seeded(self):
        servers, jobs = fig5_instance()
        p1 = plan_reclaim_random(servers, jobs, 3, rng=random.Random(42))
        p2 = plan_reclaim_random(servers, jobs, 3, rng=random.Random(42))
        assert p1.servers == p2.servers

    def test_random_plan_is_consistent(self):
        servers, jobs = fig5_instance()
        plan = plan_reclaim_random(servers, jobs, 4, rng=random.Random(1))
        assert len(plan.servers) == 4
        # every preempted job had base workers on a selected server
        for job_id in plan.preempted_jobs:
            assert set(jobs[job_id].base_placement) & set(plan.servers)


class TestOptimal:
    def test_fig5_optimal_matches_lyra(self):
        servers, jobs = fig5_instance()
        optimal = plan_reclaim_optimal(servers, jobs, count=2)
        assert optimal.num_preemptions == 1

    def test_size_bound_keeps_searching_past_first_feasible_plan(self):
        """Counterexample shape for a tempting-but-wrong early exit.

        At subset size 1 the only feasible plan is {x}: preempting its
        three sliver jobs vacates x plus (by cascade) y — 3 preemptions.
        The optimum needs subset size 2 ({a, b}: 2 preemptions).  An
        exit that stops at the first feasible size would return 3; the
        actual bound (``best.num_preemptions <= size``) keeps searching
        because 3 > 1, which is exactly what the soundness proof in
        ``plan_reclaim_optimal`` licenses.
        """
        servers = {
            sid: Server(server_id=sid, gpu_type=V100, on_loan=True,
                        home_cluster="inference")
            for sid in ("x", "y", "a", "b")
        }
        jobs = {}
        spanner = make_job(job_id=0, max_workers=8)
        place(spanner, servers["x"], 1)
        place(spanner, servers["y"], 4)
        jobs[0] = spanner
        for job_id, sid in ((1, "x"), (2, "x"), (3, "a"), (4, "b")):
            job = make_job(job_id=job_id, max_workers=4)
            place(job, servers[sid], 2)
            jobs[job_id] = job
        optimal = plan_reclaim_optimal(list(servers.values()), jobs, count=2)
        assert optimal.num_preemptions == 2

    def test_guard_on_large_instances(self):
        servers, jobs = fig5_instance()
        with pytest.raises(ValueError):
            plan_reclaim_optimal(servers * 10, jobs, 2, max_candidates=10)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_lyra_never_beats_optimal(self, seed):
        """Randomized instances: greedy >= optimal preemptions, and both
        plans return the requested number of servers."""
        rng = random.Random(seed)
        servers = [
            Server(server_id=f"r{i}", gpu_type=V100, on_loan=True,
                   home_cluster="inference")
            for i in range(6)
        ]
        jobs = {}
        for job_id in range(rng.randint(1, 6)):
            job = make_job(job_id=job_id, max_workers=8)
            jobs[job_id] = job
            spread = rng.sample(servers, rng.randint(1, 2))
            for server in spread:
                workers = min(rng.randint(1, 4), server.free_gpus)
                if workers > 0:
                    place(job, server, workers)
        count = rng.randint(1, 4)
        greedy = plan_reclaim_lyra(servers, jobs, count)
        optimal = plan_reclaim_optimal(servers, jobs, count)
        assert len(greedy.servers) == count
        assert len(optimal.servers) == count
        assert greedy.num_preemptions >= optimal.num_preemptions
