"""Tests for the NumPy LSTM and the usage predictor (§6)."""

import numpy as np
import pytest

from repro.predictor.lstm import Adam, Dense, LSTMLayer, LSTMRegressor
from repro.predictor.predictor import UsagePredictor, make_windows
from repro.traces.inference import generate_inference_trace


class TestWindows:
    def test_shapes(self):
        x, y = make_windows(list(range(20)), window=10)
        assert x.shape == (10, 10, 1)
        assert y.shape == (10, 1)

    def test_values_align(self):
        x, y = make_windows([0, 1, 2, 3, 4], window=3)
        assert list(x[0, :, 0]) == [0, 1, 2]
        assert y[0, 0] == 3

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            make_windows([1, 2], window=5)

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            make_windows([1, 2, 3], window=0)


class TestLSTMGradients:
    def test_dense_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        dense = Dense(4, 2, rng)
        x = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 2))

        def loss():
            pred = dense.forward(x)
            return 0.5 * np.sum((pred - target) ** 2)

        pred = dense.forward(x)
        _, grads = dense.backward(pred - target)
        eps = 1e-6
        W = dense.params["W"]
        base = loss()
        W[0, 0] += eps
        numeric = (loss() - base) / eps
        W[0, 0] -= eps
        assert numeric == pytest.approx(grads["W"][0, 0], rel=1e-3, abs=1e-5)

    def test_lstm_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        layer = LSTMLayer(2, 3, rng)
        x = rng.normal(size=(2, 4, 2))
        target = rng.normal(size=(2, 4, 3))

        def loss():
            out = layer.forward(x)
            return 0.5 * np.sum((out - target) ** 2)

        out = layer.forward(x)
        _, grads = layer.backward(out - target)
        eps = 1e-6
        for key in ("W", "U", "b"):
            param = layer.params[key]
            idx = (0,) if param.ndim == 1 else (0, 0)
            base = loss()
            param[idx] += eps
            numeric = (loss() - base) / eps
            param[idx] -= eps
            assert numeric == pytest.approx(
                grads[key][idx], rel=1e-3, abs=1e-4
            ), key

    def test_lstm_forward_shapes(self):
        rng = np.random.default_rng(2)
        layer = LSTMLayer(1, 8, rng)
        out = layer.forward(np.zeros((5, 10, 1)))
        assert out.shape == (5, 10, 8)


class TestAdam:
    def test_minimizes_quadratic(self):
        params = [{"x": np.array([5.0])}]
        adam = Adam(params, lr=0.1)
        for _ in range(500):
            grads = [{"x": 2 * params[0]["x"]}]
            adam.step(grads)
        assert abs(params[0]["x"][0]) < 0.05

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)


class TestRegressorTraining:
    def test_learns_sine_next_step(self):
        t = np.arange(300)
        series = 0.5 + 0.4 * np.sin(2 * np.pi * t / 50)
        x, y = make_windows(series, window=10)
        model = LSTMRegressor(hidden_dim=12, lr=2e-2, seed=0)
        history = model.fit(x, y, epochs=12, batch_size=32)
        assert history[-1] < history[0] / 5
        assert history[-1] < 5e-3

    def test_deterministic_for_seed(self):
        x, y = make_windows(np.linspace(0, 1, 40), window=5)
        a = LSTMRegressor(hidden_dim=4, seed=3)
        b = LSTMRegressor(hidden_dim=4, seed=3)
        la = a.fit(x, y, epochs=2)
        lb = b.fit(x, y, epochs=2)
        assert la == lb


class TestUsagePredictor:
    @pytest.fixture(scope="class")
    def trained(self):
        trace = generate_inference_trace(days=3.0, num_servers=100, seed=1)
        predictor = UsagePredictor(window=10, hidden_dim=12, seed=0)
        predictor.fit_trace(trace, epochs=8, max_samples=600)
        return predictor, trace

    def test_loss_is_small(self, trained):
        predictor, _ = trained
        # §6 reports 4.8e-4 average loss; our synthetic trace is noisier
        # but the predictor must land in the same order of magnitude.
        assert predictor.final_loss < 5e-3

    def test_predicts_in_unit_interval(self, trained):
        predictor, trace = trained
        value = predictor.predict_next(trace.utilization[:10])
        assert 0.0 <= value <= 1.0

    def test_callable_interface(self, trained):
        predictor, trace = trained
        assert predictor(trace.utilization[:10]) == predictor.predict_next(
            trace.utilization[:10]
        )

    def test_prediction_tracks_trace(self, trained):
        predictor, trace = trained
        errors = []
        for start in range(100, 140):
            window = trace.utilization[start : start + 10]
            truth = trace.utilization[start + 10]
            errors.append(abs(predictor.predict_next(window) - truth))
        assert float(np.mean(errors)) < 0.12

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            UsagePredictor().predict_next([0.5] * 10)

    def test_short_history_raises(self, trained):
        predictor, _ = trained
        with pytest.raises(ValueError):
            predictor.predict_next([0.5] * 3)
