"""Tests for the serving daemon: protocol, wall-clock driver, service.

The service tests run a real :class:`SchedulerService` on an ephemeral
port inside ``asyncio.run`` (the suite has no async test plugin), with
``time_scale`` cranked up so kernel-time jobs finish in wall
milliseconds.  The durability test follows the daemon's actual crash
story: hard-abandon a service mid-flight (no final snapshot), restart
on the same state directory, and require every acked job back.
"""

import asyncio
import contextlib
import pickle

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.core.kernel import SimulationConfig
from repro.schedulers.fifo import FIFOScheduler
from repro.serve import SchedulerService, ServeClient, WallClockDriver
from repro.serve import protocol
from repro.serve.client import ServeError


def _pair():
    return ClusterPair(
        make_training_cluster(2), make_inference_cluster(2)
    )


def _service(**kw):
    interval = kw.pop("interval", 1.0)
    kw.setdefault("time_scale", 500.0)
    return SchedulerService(
        _pair(), FIFOScheduler(),
        SimulationConfig(scheduler_interval=interval),
        port=0, **kw,
    )


def run_with_service(body, **service_kw):
    """Start a daemon, run ``body(service, client)``, tear down."""

    async def main():
        service = _service(**service_kw)
        await service.start()
        server = asyncio.ensure_future(service.serve_forever())
        client = await ServeClient.connect(service.host, service.port)
        try:
            return await body(service, client)
        finally:
            await client.close()
            await service.stop()
            server.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await server

    return asyncio.run(main())


async def _wait_status(client, job_id, status, timeout=5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        info = await client.query(job_id)
        if info["status"] == status:
            return info
        await asyncio.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {status!r}")


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        frame = protocol.encode({"op": "ping", "id": 7})
        assert frame.endswith(b"\n")
        assert protocol.decode_line(frame) == {"op": "ping", "id": 7}

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"[1,2,3]\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"not json\n")

    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(protocol.ProtocolError, match="unknown"):
            protocol.spec_from_request(
                {"duration": 10, "max_workers": 1, "job_id": 5}, 0, 0.0
            )

    def test_spec_requires_duration_and_workers(self):
        with pytest.raises(protocol.ProtocolError, match="requires"):
            protocol.spec_from_request({"duration": 10}, 0, 0.0)

    def test_spec_dict_roundtrip(self):
        spec = protocol.spec_from_request(
            {"duration": 10, "max_workers": 2, "elastic": True}, 3, 1.5
        )
        clone = protocol.spec_from_dict(protocol.spec_to_dict(spec))
        assert clone == spec


# ----------------------------------------------------------------------
# wall-clock driver
# ----------------------------------------------------------------------
class TestWallClockDriver:
    def test_unbound_now_is_start_at(self):
        driver = WallClockDriver(start_at=42.0)
        assert driver.now == 42.0

    def test_schedule_before_bind_raises(self):
        with pytest.raises(RuntimeError, match="bind"):
            WallClockDriver().schedule(1.0, lambda: None)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            WallClockDriver(time_scale=0.0)

    def test_time_scale_maps_kernel_to_wall(self):
        async def main():
            driver = WallClockDriver(time_scale=100.0, start_at=7.0)
            driver.bind(asyncio.get_running_loop())
            t0 = driver.now
            await asyncio.sleep(0.05)
            elapsed = driver.now - t0
            assert 2.0 < elapsed < 60.0  # ~5 kernel-s, generous bounds
            assert driver.now >= 7.0

        asyncio.run(main())

    def test_callback_errors_are_swallowed(self):
        async def main():
            driver = WallClockDriver(time_scale=1000.0)
            driver.bind(asyncio.get_running_loop())

            def boom():
                raise RuntimeError("kernel bug")

            driver.schedule_after(0.0, boom, tag=("tick",))
            await asyncio.sleep(0.05)
            assert driver.callback_errors == 1
            assert driver.timers_armed == 1

        asyncio.run(main())

    def test_pickle_carries_kernel_time_not_loop(self):
        async def main():
            driver = WallClockDriver(time_scale=50.0, start_at=10.0)
            driver.bind(asyncio.get_running_loop())
            await asyncio.sleep(0.02)
            frozen = pickle.loads(pickle.dumps(driver))
            assert frozen.time_scale == 50.0
            assert not frozen.bound
            # restored time resumes from (roughly) the pickling instant
            assert frozen.now >= 10.0
            assert abs(frozen.now - driver.now) < 60.0

        asyncio.run(main())


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class TestServiceLifecycle:
    def test_submit_runs_to_completion(self):
        async def body(service, client):
            assert (await client.ping())["draining"] is False
            job_id = await client.submit(
                duration=20.0, max_workers=1, min_workers=1
            )
            info = await _wait_status(client, job_id, "finished")
            assert info["start_time"] is not None
            assert info["finish_time"] > info["submit_time"]
            summary = await client.query()
            assert summary["finished"] == 1
            assert summary["pending"] == 0

        run_with_service(body)

    def test_burst_batches_into_few_epochs(self):
        async def body(service, client):
            for _ in range(10):
                await client.submit(duration=30.0, max_workers=1)
            for job_id in range(10):
                await _wait_status(client, job_id, "finished")
            stats = await client.stats()
            # one admission epoch would be ideal; allow a little skew
            # between the burst and the first tick, but nothing like
            # one epoch per request
            assert stats["epochs"] < 10
            assert stats["plans_applied"] <= stats["epochs"]

        run_with_service(body, interval=2.0)

    def test_unknown_op_and_unknown_job(self):
        async def body(service, client):
            with pytest.raises(ServeError) as exc:
                await client.request("frobnicate")
            assert exc.value.code == "unknown_op"
            with pytest.raises(ServeError) as exc:
                await client.query(999)
            assert exc.value.code == "unknown_job"
            with pytest.raises(ServeError) as exc:
                await client.submit(duration=10.0, max_workers=1,
                                    job_id=5)
            assert exc.value.code == "bad_request"

        run_with_service(body)

    def test_admission_control_sheds_load(self):
        async def body(service, client):
            # base demand 16 GPUs fills both servers; everything behind
            # it queues
            await client.submit(duration=10_000.0, max_workers=16,
                                min_workers=16)
            accepted, rejected = 0, 0
            for _ in range(8):
                try:
                    await client.submit(duration=100.0, max_workers=1)
                    accepted += 1
                except ServeError as exc:
                    assert exc.code == "queue_full"
                    rejected += 1
            assert rejected > 0
            stats = await client.stats()
            assert stats["pending"] <= 3 + 1  # max_pending, + in-flight

        run_with_service(body, max_pending=3, interval=0.5)

    def test_cancel_pending_and_running(self):
        async def body(service, client):
            blocker = await client.submit(
                duration=10_000.0, max_workers=16, min_workers=16
            )
            await _wait_status(client, blocker, "running")
            queued = await client.submit(duration=100.0, max_workers=1)
            assert await client.cancel(queued) is True
            assert await client.cancel(queued) is False  # idempotent
            assert await client.cancel(blocker) is True
            with pytest.raises(ServeError):
                await client.query(blocker)  # cancelled jobs are gone

        run_with_service(body)

    def test_scale_running_elastic_job(self):
        async def body(service, client):
            job_id = await client.submit(
                duration=2_000.0, max_workers=4, min_workers=1,
                elastic=True,
            )
            await _wait_status(client, job_id, "running")
            info = await client.query(job_id)
            shrunk = await client.scale(job_id, 1)
            assert shrunk["applied"] in ("scale_in", "noop")
            assert shrunk["workers"] <= info["workers"]
            grown = await client.scale(job_id, 4)
            assert grown["applied"] in ("requested", "noop")
            with pytest.raises(ServeError) as exc:
                await client.scale(job_id, 0)
            assert exc.value.code == "bad_scale"

        run_with_service(body)

    def test_event_stream_delivers_lifecycle(self):
        async def body(service, client):
            subscriber = await ServeClient.connect(
                service.host, service.port
            )
            events = await subscriber.subscribe()
            seen = []

            async def consume():
                async for event in events:
                    seen.append(event)

            task = asyncio.create_task(consume())
            job_id = await client.submit(duration=20.0, max_workers=1)
            await _wait_status(client, job_id, "finished")
            await asyncio.sleep(0.05)
            kinds = {e["kind"] for e in seen}
            assert {"submit", "schedule_epoch", "start", "finish"} <= kinds
            assert any(e["job_id"] == job_id and e["kind"] == "finish"
                       for e in seen)
            task.cancel()
            await subscriber.close()

        run_with_service(body)

    def test_drain_stops_admission_then_resolves(self):
        async def body(service, client):
            await client.submit(duration=30.0, max_workers=1)
            assert await client.drain(timeout=5.0) is True
            with pytest.raises(ServeError) as exc:
                await client.submit(duration=10.0, max_workers=1)
            assert exc.value.code == "draining"
            stats = await client.stats()
            assert stats["running"] == 0 and stats["pending"] == 0

        run_with_service(body)

    def test_latency_histogram_is_recorded(self):
        async def body(service, client):
            job_id = await client.submit(duration=20.0, max_workers=1)
            await _wait_status(client, job_id, "finished")
            stats = await client.stats()
            hists = stats["metrics"]["histograms"]
            latency = hists["serve.submit_to_scheduled_s"]
            assert latency["count"] == 1
            assert latency["p99"] >= 0.0

        run_with_service(body)


class TestServeDurability:
    def test_kill_and_restart_loses_no_acked_job(self, tmp_path):
        """Hard-kill equivalence: acked work survives without the final
        snapshot — some jobs from the last epoch snapshot, the rest
        replayed from the request journal."""
        state_dir = tmp_path / "state"

        async def first_life():
            service = _service(state_dir=state_dir, interval=1.0)
            await service.start()
            server = asyncio.ensure_future(service.serve_forever())
            client = await ServeClient.connect(service.host, service.port)
            acked = []
            for i in range(6):
                acked.append(await client.submit(
                    duration=5_000.0, max_workers=1, min_workers=1
                ))
                if i == 3:
                    # let an epoch (and its snapshot) happen mid-burst
                    await _wait_status(client, acked[0], "running")
            stats = await client.stats()
            assert stats["snapshots_written"] >= 1
            await client.close()
            # the crash: no drain, no stop(), no final snapshot
            server.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await server
            service._server.close()
            service.state.journal.close()
            return acked

        acked = asyncio.run(first_life())

        async def second_life():
            service = _service(state_dir=state_dir, interval=1.0)
            await service.start()
            server = asyncio.ensure_future(service.serve_forever())
            client = await ServeClient.connect(service.host, service.port)
            try:
                assert service.recovered_jobs + service.replayed_requests \
                    >= len(acked)
                summary = await client.query()
                alive = (summary["pending"] + summary["running"]
                         + summary["finished"])
                assert alive == len(acked)
                for job_id in acked:
                    info = await client.query(job_id)
                    assert info["status"] in (
                        "pending", "running", "finished"
                    )
                stats = await client.stats()
                assert stats["recovered_jobs"] > 0
            finally:
                await client.close()
                await service.stop()
                server.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await server

        asyncio.run(second_life())

    def test_restart_does_not_duplicate_snapshotted_jobs(self, tmp_path):
        state_dir = tmp_path / "state"

        async def first_life():
            service = _service(state_dir=state_dir, interval=1.0)
            await service.start()
            server = asyncio.ensure_future(service.serve_forever())
            client = await ServeClient.connect(service.host, service.port)
            job_id = await client.submit(
                duration=5_000.0, max_workers=1, min_workers=1
            )
            await _wait_status(client, job_id, "running")
            await client.close()
            await service.stop()  # graceful: final snapshot
            server.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await server

        asyncio.run(first_life())

        async def second_life():
            service = _service(state_dir=state_dir, interval=1.0)
            await service.start()
            try:
                # the journal entry is also covered by the snapshot; the
                # replay guard must not double-register the job
                assert len(service.kernel.jobs) == 1
                assert service.kernel.metrics.submissions == 1
            finally:
                await service.stop(final_snapshot=False)

        asyncio.run(second_life())

    def test_wal_segments_per_generation(self, tmp_path):
        state_dir = tmp_path / "state"

        async def life():
            service = _service(state_dir=state_dir, interval=1.0)
            await service.start()
            client = None
            server = asyncio.ensure_future(service.serve_forever())
            try:
                client = await ServeClient.connect(
                    service.host, service.port
                )
                job_id = await client.submit(
                    duration=20.0, max_workers=1
                )
                await _wait_status(client, job_id, "finished")
            finally:
                if client is not None:
                    await client.close()
                await service.stop()
                server.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await server

        asyncio.run(life())
        asyncio.run(life())
        segments = sorted(p.name for p in state_dir.glob("wal-gen*.jsonl"))
        assert segments == ["wal-gen0.jsonl", "wal-gen1.jsonl"]
