"""End-to-end integration tests: cross-module invariants and headline
paper claims on seeded synthetic workloads."""

import pytest

from repro.cluster.job import JobStatus
from repro.scenarios import default_setup, run_scheme
from repro.schedulers.lyra import LyraScheduler
from repro.simulator.simulation import Simulation, SimulationConfig


@pytest.fixture(scope="module")
def setup():
    return default_setup(
        num_jobs=400, days=1.5, training_servers=16, inference_servers=20,
        seed=42, target_load=1.0,
    )


@pytest.fixture(scope="module")
def baseline(setup):
    return run_scheme(setup, "baseline")


@pytest.fixture(scope="module")
def lyra(setup):
    return run_scheme(setup, "lyra")


class TestHeadlineClaims:
    """Directional reproduction of §7's highlights on a small trace."""

    def test_lyra_reduces_mean_queuing(self, baseline, lyra):
        assert lyra.queuing_summary().mean < baseline.queuing_summary().mean

    def test_lyra_reduces_mean_jct(self, baseline, lyra):
        assert lyra.jct_summary().mean < baseline.jct_summary().mean

    def test_lyra_improves_overall_usage(self, baseline, lyra):
        assert lyra.overall_usage.mean() > baseline.overall_usage.mean()

    def test_loaning_alone_reduces_queuing(self, setup, baseline):
        loaning = run_scheme(setup, "lyra_loaning")
        assert (
            loaning.queuing_summary().mean < baseline.queuing_summary().mean
        )

    def test_scaling_alone_reduces_jct(self, setup, baseline):
        scaling = run_scheme(setup, "lyra_scaling")
        assert scaling.jct_summary().mean < baseline.jct_summary().mean

    def test_lyra_reclaimer_beats_random_on_preemptions(self, setup):
        ours = run_scheme(setup, "lyra_loaning", seed=1)
        rand = run_scheme(setup, "random_loaning", seed=1)
        assert ours.preemption_ratio <= rand.preemption_ratio

    def test_elastic_scaling_reduces_preemptions_vs_loaning_only(self, setup):
        # §7.2 "how scaling helps capacity loaning": flexible server
        # groups absorb reclaim demand.
        full = run_scheme(setup, "lyra", seed=1)
        loaning_only = run_scheme(setup, "lyra_loaning", seed=1)
        assert full.preemption_ratio <= loaning_only.preemption_ratio

    def test_checkpointing_reduces_jct_under_preemption(self, setup):
        from repro.scenarios import apply_scenario, with_checkpointing_fraction

        base_specs = apply_scenario(setup.workload.specs, "basic")
        ckpt_specs = with_checkpointing_fraction(base_specs, 1.0, seed=0)
        without = run_scheme(setup, "lyra_loaning", specs=base_specs, seed=2)
        with_ckpt = run_scheme(setup, "lyra_loaning", specs=ckpt_specs, seed=2)
        if without.preemptions:
            assert (
                with_ckpt.jct_summary().mean <= without.jct_summary().mean
            )


class TestConservationInvariants:
    def test_all_jobs_complete_and_cluster_drains(self, setup):
        pair = setup.make_pair()
        sim = Simulation(
            setup.workload.specs, pair, LyraScheduler(),
            inference_trace=setup.inference_trace,
            config=SimulationConfig(),
        )
        sim.run()
        assert all(
            j.status is JobStatus.FINISHED for j in sim.jobs.values()
        )
        assert pair.training.used_gpus == 0
        assert pair.loaned_count == 0

    def test_no_server_overallocated_at_end(self, setup):
        pair = setup.make_pair()
        sim = Simulation(
            setup.workload.specs, pair, LyraScheduler(),
            inference_trace=setup.inference_trace,
            config=SimulationConfig(),
        )
        sim.run()
        for server in pair.training.servers + pair.inference.servers:
            assert 0 <= server.used_gpus <= server.num_gpus

    def test_jct_at_least_minimum_running_time(self, lyra):
        for job in lyra.jobs:
            if job.jct is not None and job.preemptions == 0:
                assert job.jct >= job.spec.duration * 0.99

    def test_queuing_never_negative(self, lyra):
        for job in lyra.jobs:
            if job.queuing_time is not None:
                assert job.queuing_time >= -1e-6

    def test_jct_bounds_queuing(self, lyra):
        for job in lyra.jobs:
            if job.jct is not None and job.queuing_time is not None:
                assert job.jct >= job.queuing_time

    def test_elastic_jobs_within_worker_range_lyra(self, setup):
        """Spot-check during the run: Lyra never exceeds w_max."""
        pair = setup.make_pair()
        sim = Simulation(
            setup.workload.specs, pair, LyraScheduler(),
            inference_trace=setup.inference_trace,
            config=SimulationConfig(),
        )
        violations = []

        def check():
            for job in sim.running.values():
                if job.total_workers > job.spec.max_workers:
                    violations.append(job.job_id)
            if sim.pending or sim.running:
                sim.engine.schedule_after(1800.0, check)

        sim.engine.schedule(0.0, check)
        sim.run()
        assert not violations

    def test_base_demand_always_met_while_running(self, setup):
        pair = setup.make_pair()
        sim = Simulation(
            setup.workload.specs, pair, LyraScheduler(),
            inference_trace=setup.inference_trace,
            config=SimulationConfig(),
        )
        violations = []

        def check():
            for job in sim.running.values():
                if job.base_workers < job.spec.min_workers:
                    violations.append(job.job_id)
            if sim.pending or sim.running:
                sim.engine.schedule_after(1800.0, check)

        sim.engine.schedule(0.0, check)
        sim.run()
        assert not violations

    def test_server_accounting_matches_job_placements(self, setup):
        """Mid-run consistency: each server's allocation for a job must
        equal the job's recorded footprint on it."""
        pair = setup.make_pair()
        sim = Simulation(
            setup.workload.specs, pair, LyraScheduler(),
            inference_trace=setup.inference_trace,
            config=SimulationConfig(),
        )
        mismatches = []

        def check():
            for server in pair.training.servers:
                for job_id, gpus in server.allocations.items():
                    job = sim.jobs[job_id]
                    if job.gpus_on(server.server_id) != gpus:
                        mismatches.append((server.server_id, job_id))
            if sim.pending or sim.running:
                sim.engine.schedule_after(3600.0, check)

        sim.engine.schedule(0.0, check)
        sim.run()
        assert not mismatches
