"""Tests for the event engine and the metrics layer."""

import math

import pytest

from repro.simulator.engine import Engine
from repro.simulator.metrics import (
    DistributionSummary,
    SimulationMetrics,
    TimeSeries,
    percentile,
    reduction,
)

from tests.conftest import make_job


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = Engine()
        seen = []
        engine.schedule(5.0, lambda: seen.append("b"))
        engine.schedule(1.0, lambda: seen.append("a"))
        engine.schedule(9.0, lambda: seen.append("c"))
        engine.run()
        assert seen == ["a", "b", "c"]
        assert engine.now == 9.0

    def test_ties_run_in_insertion_order(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(1.0, lambda: seen.append(2))
        engine.run()
        assert seen == [1, 2]

    def test_schedule_in_past_raises(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(ValueError):
            engine.schedule(5.0, lambda: None)

    def test_schedule_after_negative_raises(self):
        with pytest.raises(ValueError):
            Engine().schedule_after(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(10.0, lambda: seen.append(2))
        engine.run(until=5.0)
        assert seen == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_until_is_inclusive(self):
        engine = Engine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(1))
        engine.run(until=5.0)
        assert seen == [1]

    def test_callbacks_can_schedule_more(self):
        engine = Engine()
        seen = []

        def chain():
            seen.append(engine.now)
            if engine.now < 3:
                engine.schedule_after(1.0, chain)

        engine.schedule(0.0, chain)
        engine.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_stop_aborts_loop(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, engine.stop)
        engine.schedule(2.0, lambda: seen.append("nope"))
        engine.run()
        assert seen == []

    def test_run_advances_to_until_when_idle(self):
        engine = Engine()
        engine.run(until=42.0)
        assert engine.now == 42.0


class TestDistributionSummary:
    def test_from_values(self):
        summary = DistributionSummary.from_values(list(range(1, 101)))
        assert summary.mean == pytest.approx(50.5)
        assert summary.median == pytest.approx(50.5)
        assert summary.p95 == pytest.approx(95.05)
        assert summary.count == 100

    def test_empty_is_nan(self):
        summary = DistributionSummary.from_values([])
        assert math.isnan(summary.mean)
        assert summary.count == 0

    def test_percentile_helper(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
        assert math.isnan(percentile([], 50))


class TestTimeSeries:
    def test_mean(self):
        series = TimeSeries()
        series.append(0, 0.5)
        series.append(300, 1.0)
        assert series.mean() == pytest.approx(0.75)

    def test_hourly_means_buckets(self):
        series = TimeSeries()
        for t, v in [(0, 0.2), (1800, 0.4), (3600, 1.0)]:
            series.append(t, v)
        assert series.hourly_means() == [pytest.approx(0.3), 1.0]

    def test_empty(self):
        assert math.isnan(TimeSeries().mean())
        assert TimeSeries().hourly_means() == []
        assert TimeSeries().hourly_max() == []
        assert TimeSeries().hourly_bounds() == []

    def test_hourly_max_and_bounds(self):
        series = TimeSeries()
        for t, v in [(0, 0.2), (1800, 0.4), (3600, 1.0), (5400, 0.6)]:
            series.append(t, v)
        assert series.hourly_max() == [pytest.approx(0.4), 1.0]
        assert series.hourly_bounds() == [(0.0, 3600.0), (3600.0, 7200.0)]

    def test_custom_bucket_width(self):
        series = TimeSeries()
        for t, v in [(0, 1.0), (100, 3.0), (200, 5.0)]:
            series.append(t, v)
        assert series.bucket_means(width=200.0) == [pytest.approx(2.0), 5.0]
        assert series.bucket_max(width=200.0) == [3.0, 5.0]
        assert series.buckets(width=200.0) == {0: [1.0, 3.0], 1: [5.0]}

    def test_from_samples(self):
        series = TimeSeries.from_samples([0.1, 0.2, 0.3], interval=300.0)
        assert series.times == [0.0, 300.0, 600.0]
        assert series.values == [0.1, 0.2, 0.3]


class TestSimulationMetrics:
    def finished_job(self, job_id, submit, start, finish, onloan=0.0):
        job = make_job(job_id=job_id, submit_time=submit, duration=100,
                       max_workers=2)
        job.record_placement("s", 2, flexible=False)
        job.mark_started(start)
        job.onloan_work = onloan * job.spec.total_work
        job.mark_finished(finish)
        return job

    def test_queuing_and_jct_distributions(self):
        metrics = SimulationMetrics()
        metrics.jobs = [
            self.finished_job(1, 0, 10, 110),
            self.finished_job(2, 0, 0, 50),
        ]
        assert metrics.queuing_summary().mean == pytest.approx(5.0)
        assert metrics.jct_summary().mean == pytest.approx(80.0)

    def test_queued_only_filter(self):
        metrics = SimulationMetrics()
        metrics.jobs = [
            self.finished_job(1, 0, 10, 110),
            self.finished_job(2, 0, 0, 50),
        ]
        assert metrics.queuing_times(queued_only=True) == [10.0]

    def test_preemption_ratio(self):
        metrics = SimulationMetrics()
        metrics.submissions = 50
        metrics.preemptions = 5
        assert metrics.preemption_ratio == pytest.approx(0.1)

    def test_preemption_ratio_no_submissions(self):
        assert SimulationMetrics().preemption_ratio == 0.0

    def test_onloan_job_selection(self):
        metrics = SimulationMetrics()
        metrics.jobs = [
            self.finished_job(1, 0, 0, 100, onloan=0.9),
            self.finished_job(2, 0, 0, 100, onloan=0.1),
        ]
        assert metrics.onloan_job_ids() == [1]
        assert metrics.onloan_job_ids(min_fraction=0.05) == [1, 2]

    def test_summary_for_subset(self):
        metrics = SimulationMetrics()
        metrics.jobs = [
            self.finished_job(1, 0, 10, 110),
            self.finished_job(2, 0, 0, 50),
        ]
        summaries = metrics.summary_for([1])
        assert summaries["jct"].mean == pytest.approx(110.0)
        assert summaries["queuing"].count == 1

    def test_reduction_metric(self):
        assert reduction(3072.0, 2010.0) == pytest.approx(1.528, abs=1e-3)
        assert reduction(1.0, 0.0) == math.inf

    def test_completion_ratio(self):
        metrics = SimulationMetrics()
        unfinished = make_job(job_id=3)
        metrics.jobs = [self.finished_job(1, 0, 0, 50), unfinished]
        assert metrics.completion_ratio() == pytest.approx(0.5)
