"""Unit tests for the driver-agnostic scheduling kernel.

The kernel/driver seam is exercised directly with a hand-cranked
ManualDriver — no engine, no event loop — so these tests pin the
protocol the simulator and the serving daemon both rely on: epoch
batching through ``trigger_schedule``, the coalescing interval, the
``epoch_finished`` hook, drain detection, and cancellation (pending,
running with a live completion timer, unknown, finished).
"""

import math

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec, JobStatus
from repro.core.kernel import Driver, SchedulerKernel, SimulationConfig
from repro.schedulers.fifo import FIFOScheduler


class ManualDriver(Driver):
    """A hand-cranked clock: tests control time and fire timers."""

    def __init__(self, start: float = 0.0):
        self._now = start
        #: armed timers as ``(when, seq, callback, tag)``; fired in
        #: (when, arming-order) order like the engine's heap
        self.timers = []
        self._seq = 0
        self.epochs_finished = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, when, callback, tag=None):
        self._seq += 1
        self.timers.append((when, self._seq, callback, tag))

    def schedule_after(self, delay, callback, tag=None):
        self.schedule(self._now + delay, callback, tag=tag)

    def epoch_finished(self):
        self.epochs_finished += 1

    # -- test controls -------------------------------------------------
    def advance_to(self, t: float) -> int:
        """Fire every timer due at or before ``t``; returns fire count."""
        fired = 0
        while True:
            due = [timer for timer in self.timers if timer[0] <= t]
            if not due:
                break
            timer = min(due, key=lambda x: (x[0], x[1]))
            self.timers.remove(timer)
            self._now = max(self._now, timer[0])
            timer[2]()
            fired += 1
        self._now = max(self._now, t)
        return fired

    def armed_tags(self):
        return [timer[3] for timer in self.timers]


def _spec(job_id, duration=100.0, max_workers=2, **kw):
    kw.setdefault("submit_time", 0.0)
    return JobSpec(job_id=job_id, duration=duration,
                   max_workers=max_workers, **kw)


def _kernel(interval=10.0, **config_kw):
    pair = ClusterPair(make_training_cluster(2), make_inference_cluster(2))
    driver = ManualDriver()
    kernel = SchedulerKernel(
        [], pair, FIFOScheduler(),
        config=SimulationConfig(scheduler_interval=interval, **config_kw),
        driver=driver,
    )
    return kernel, driver


def _submit(kernel, job_id, **kw):
    job = kernel.register_job(_spec(job_id, **kw))
    kernel.admit_job(job)
    return job


class TestDriverProtocol:
    def test_base_class_raises(self):
        driver = Driver()
        with pytest.raises(NotImplementedError):
            driver.now
        with pytest.raises(NotImplementedError):
            driver.schedule(0.0, lambda: None)
        with pytest.raises(NotImplementedError):
            driver.schedule_after(0.0, lambda: None)
        with pytest.raises(NotImplementedError):
            driver.epoch_finished()

    def test_kernel_without_driver_is_its_own(self):
        pair = ClusterPair(
            make_training_cluster(1), make_inference_cluster(1)
        )
        kernel = SchedulerKernel([], pair, FIFOScheduler())
        assert kernel.driver is kernel

    def test_kernel_now_delegates_to_driver(self):
        kernel, driver = _kernel()
        driver._now = 42.5
        assert kernel.now == 42.5


class TestEpochBatching:
    def test_burst_of_submits_arms_one_tick(self):
        kernel, driver = _kernel(interval=10.0)
        for i in range(5):
            _submit(kernel, i)
        assert driver.armed_tags().count(("tick",)) == 1

    def test_one_epoch_plans_the_whole_batch(self):
        kernel, driver = _kernel(interval=10.0)
        for i in range(5):
            _submit(kernel, i, max_workers=1)
        driver.advance_to(0.0)
        assert driver.epochs_finished == 1
        assert kernel.executor.plans_applied == 1
        assert len(kernel.running) == 5
        assert not kernel.pending

    def test_coalescing_respects_min_interval(self):
        kernel, driver = _kernel(interval=10.0)
        _submit(kernel, 0, max_workers=1)
        driver.advance_to(0.0)  # first epoch at t=0
        _submit(kernel, 1, max_workers=1)
        # the new tick must not land before last_tick + interval
        ticks = [t for t in driver.timers if t[3] == ("tick",)]
        assert len(ticks) == 1
        assert ticks[0][0] == pytest.approx(10.0)
        # nothing fires before the interval elapses
        assert driver.advance_to(9.99) == 0
        driver.advance_to(10.0)
        assert kernel.running[1].status is JobStatus.RUNNING
        assert driver.epochs_finished == 2

    def test_trigger_while_tick_pending_is_absorbed(self):
        kernel, driver = _kernel(interval=10.0)
        _submit(kernel, 0)
        kernel.trigger_schedule()
        kernel.trigger_schedule()
        assert driver.armed_tags().count(("tick",)) == 1


class TestDrain:
    def test_drained_after_work_completes(self):
        kernel, driver = _kernel(interval=1.0)
        _submit(kernel, 0, duration=50.0, max_workers=1)
        driver.advance_to(0.0)
        assert not kernel.drained
        driver.advance_to(1000.0)  # completion + follow-up epoch
        assert kernel.jobs[0].status is JobStatus.FINISHED
        assert kernel.drained

    def test_empty_kernel_is_drained(self):
        kernel, _ = _kernel()
        assert kernel.drained

    def test_epoch_finished_fires_per_epoch(self):
        kernel, driver = _kernel(interval=1.0)
        _submit(kernel, 0, duration=5.0, max_workers=1)
        driver.advance_to(1000.0)
        # at least the admission epoch and the post-completion epoch
        assert driver.epochs_finished >= 2


class TestCancel:
    def test_cancel_pending_job(self):
        kernel, driver = _kernel(interval=10.0)
        _submit(kernel, 0)
        assert kernel.cancel_job(0) is True
        assert 0 not in kernel.jobs
        assert not kernel.pending
        driver.advance_to(100.0)
        assert not kernel.running

    def test_cancel_running_mid_epoch_frees_gpus(self):
        kernel, driver = _kernel(interval=10.0)
        _submit(kernel, 0, duration=500.0, max_workers=1)
        driver.advance_to(0.0)
        free_before = kernel.pair.training.free_gpus
        assert kernel.cancel_job(0) is True
        assert kernel.pair.training.free_gpus > free_before
        assert 0 not in kernel.running and 0 not in kernel.jobs
        # the orphaned completion timer must fire as a harmless no-op
        driver.advance_to(10_000.0)
        assert not kernel.running

    def test_cancel_is_idempotent_and_safe(self):
        kernel, driver = _kernel()
        assert kernel.cancel_job(99) is False  # unknown
        _submit(kernel, 0, duration=10.0, max_workers=1)
        driver.advance_to(10_000.0)
        assert kernel.jobs[0].status is JobStatus.FINISHED
        assert kernel.cancel_job(0) is False  # finished
        assert 0 in kernel.jobs  # finished jobs keep their metrics row

    def test_cancel_triggers_reschedule_for_waiters(self):
        kernel, driver = _kernel(interval=1.0)
        # fill the cluster with one fat job, queue a second behind it
        fat = 2 * 8  # two servers of 8 GPUs
        _submit(kernel, 0, duration=10_000.0, max_workers=fat,
                min_workers=fat)
        driver.advance_to(0.0)
        _submit(kernel, 1, duration=10.0, max_workers=1, min_workers=1)
        driver.advance_to(2.0)
        assert 1 not in kernel.running  # blocked behind the fat job
        kernel.cancel_job(0)
        driver.advance_to(20.0)
        assert kernel.jobs[1].status in (
            JobStatus.RUNNING, JobStatus.FINISHED
        )


class TestActivitySink:
    def test_sink_sees_every_logged_activity(self):
        kernel, driver = _kernel(interval=1.0, record_activities=True)
        seen = []
        kernel.activity_sink = lambda a, extra: seen.append(a.kind.value)
        _submit(kernel, 0, duration=10.0, max_workers=1)
        driver.advance_to(1000.0)
        assert "submit" in seen
        assert "start" in seen
        assert "finish" in seen
        assert seen == [a.kind.value for a in kernel.activities]


class TestKernelMisc:
    def test_infinite_eta_arms_no_timer(self):
        kernel, driver = _kernel()
        job = kernel.register_job(_spec(0))
        before = len(driver.timers)
        kernel._schedule_completion_at(job, math.inf)
        assert len(driver.timers) == before

    def test_register_job_keeps_metrics_roster_in_step(self):
        kernel, _ = _kernel()
        kernel.register_job(_spec(0))
        kernel.register_job(_spec(1))
        assert kernel.metrics.submissions == 2
        assert {j.job_id for j in kernel.metrics.jobs} == {0, 1}
