"""Unit tests for servers, clusters and the whitelist loaning API."""

import pytest

from repro.cluster.cluster import (
    Cluster,
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.gpu import T4, V100
from repro.cluster.server import Server


class TestServer:
    def make(self, **kw):
        return Server(server_id="s1", gpu_type=V100, **kw)

    def test_initially_idle(self):
        server = self.make()
        assert server.idle
        assert server.free_gpus == 8
        assert server.job_count == 0

    def test_allocate_and_release(self):
        server = self.make()
        server.allocate(1, 3)
        server.allocate(2, 2)
        assert server.used_gpus == 5
        assert server.free_gpus == 3
        assert server.release(1) == 3
        assert server.free_gpus == 6

    def test_allocate_accumulates_per_job(self):
        server = self.make()
        server.allocate(1, 2)
        server.allocate(1, 2)
        assert server.allocations[1] == 4

    def test_allocate_over_capacity_raises(self):
        server = self.make()
        with pytest.raises(ValueError, match="only 8 free"):
            server.allocate(1, 9)

    def test_allocate_zero_raises(self):
        with pytest.raises(ValueError):
            self.make().allocate(1, 0)

    def test_partial_release(self):
        server = self.make()
        server.allocate(1, 6)
        assert server.release(1, 2) == 2
        assert server.allocations[1] == 4

    def test_release_more_than_held_releases_all(self):
        server = self.make()
        server.allocate(1, 4)
        assert server.release(1, 10) == 4
        assert 1 not in server.allocations

    def test_release_absent_job_is_noop(self):
        assert self.make().release(99) == 0

    def test_normalized_gpus_for_t4(self):
        server = Server(server_id="i1", gpu_type=T4, home_cluster="inference")
        assert server.normalized_gpus == pytest.approx(8 / 3)

    def test_rejects_bad_home_cluster(self):
        # any non-empty cluster/region name is a valid home (the
        # capacity market names its member clusters freely) ...
        Server(server_id="x", gpu_type=V100, home_cluster="edge")
        # ... but a missing home is still rejected
        with pytest.raises(ValueError):
            Server(server_id="x", gpu_type=V100, home_cluster="")
        with pytest.raises(ValueError):
            Server(server_id="x", gpu_type=V100, home_cluster=None)

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            Server(server_id="x", gpu_type=V100, num_gpus=0)


class TestCluster:
    def test_factories_build_expected_sizes(self):
        training = make_training_cluster(4)
        inference = make_inference_cluster(3)
        assert training.total_gpus == 32
        assert inference.total_gpus == 24
        assert all(s.gpu_type is V100 for s in training.servers)
        assert all(s.gpu_type is T4 for s in inference.servers)

    def test_duplicate_server_rejected(self):
        cluster = make_training_cluster(1)
        with pytest.raises(ValueError, match="duplicate"):
            cluster.add_server(cluster.servers[0])

    def test_remove_requires_vacant(self):
        cluster = make_training_cluster(1)
        cluster.servers[0].allocate(1, 2)
        with pytest.raises(RuntimeError, match="still hosts"):
            cluster.remove_server(cluster.servers[0].server_id)

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            make_training_cluster(1).remove_server("nope")

    def test_utilization(self):
        cluster = make_training_cluster(2)
        assert cluster.utilization() == 0.0
        cluster.servers[0].allocate(1, 8)
        assert cluster.utilization() == pytest.approx(0.5)

    def test_release_job_everywhere(self):
        cluster = make_training_cluster(2)
        cluster.servers[0].allocate(7, 4)
        cluster.servers[1].allocate(7, 2)
        assert cluster.release_job(7) == 6
        assert cluster.free_gpus == 16

    def test_contains_and_len(self):
        cluster = make_training_cluster(3)
        assert len(cluster) == 3
        assert "train-0000" in cluster
        assert "nope" not in cluster

    def test_empty_cluster_utilization_zero(self):
        assert Cluster("empty").utilization() == 0.0


class TestClusterPair:
    def make_pair(self):
        return ClusterPair(make_training_cluster(2), make_inference_cluster(3))

    def test_loan_moves_idle_servers(self):
        pair = self.make_pair()
        moved = pair.loan(2)
        assert len(moved) == 2
        assert pair.loaned_count == 2
        assert len(pair.inference) == 1
        assert all(s.on_loan for s in moved)
        assert all(s.server_id in pair.training for s in moved)

    def test_loan_skips_busy_servers(self):
        pair = self.make_pair()
        pair.inference.servers[0].allocate(1, 1)
        moved = pair.loan(3)
        assert len(moved) == 2  # only the idle ones move

    def test_loan_more_than_available(self):
        pair = self.make_pair()
        assert len(pair.loan(10)) == 3

    def test_loan_negative_raises(self):
        with pytest.raises(ValueError):
            self.make_pair().loan(-1)

    def test_return_server_round_trip(self):
        pair = self.make_pair()
        server = pair.loan(1)[0]
        returned = pair.return_server(server.server_id)
        assert not returned.on_loan
        assert returned.group is None
        assert pair.loaned_count == 0
        assert len(pair.inference) == 3

    def test_return_requires_on_loan(self):
        pair = self.make_pair()
        with pytest.raises(ValueError, match="not on loan"):
            pair.return_server(pair.training.servers[0].server_id)

    def test_return_requires_vacant(self):
        pair = self.make_pair()
        server = pair.loan(1)[0]
        server.allocate(1, 2)
        with pytest.raises(RuntimeError):
            pair.return_server(server.server_id)

    def test_training_views_split_loaned(self):
        pair = self.make_pair()
        pair.loan(2)
        assert len(pair.training.on_loan_servers) == 2
        assert len(pair.training.dedicated_servers) == 2
