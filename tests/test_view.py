"""Unit tests for the incremental ClusterView and its consumers.

Covers: pool totals vs a manual scan, the deterministic on-loan cost
(the old scan derived it from iteration order), the cached pending-queue
ordering, candidate/capacity queries vs the full-scan placement path,
the reclaim-cost index, engine wake-up peeking, epoch skipping and
heartbeat skip-ahead in the simulator.
"""

import math

import pytest

from repro.cluster.cluster import (
    Cluster,
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.gpu import A100, T4
from repro.cluster.job import Job, JobSpec
from repro.cluster.server import Server
from repro.core.placement import PlacementEngine, PlacementRequest
from repro.core.reclaim import server_preemption_cost
from repro.core.view import ClusterView, deterministic_onloan_cost
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.fifo import FIFOScheduler, SJFScheduler
from repro.simulator.engine import Engine
from repro.simulator.simulation import Simulation, SimulationConfig
from tests.conftest import make_job


def _pair(train=3, infer=3):
    return ClusterPair(
        make_training_cluster(train), make_inference_cluster(infer)
    )


class TestViewPools:
    def test_pools_match_manual_scan(self):
        pair = _pair()
        view = ClusterView(pair.training)
        pair.loan(2)
        job = make_job(job_id=1, gpus_per_worker=2, max_workers=3)
        engine = PlacementEngine(pair.training)
        engine.place([PlacementRequest(job, base_workers=2, flex_workers=1)])
        pools = view.pools()
        training = sum(
            s.free_gpus for s in pair.training.servers if not s.on_loan
        )
        onloan = sum(
            s.free_gpus for s in pair.training.servers if s.on_loan
        )
        assert pools.training == training
        assert pools.onloan == onloan

    def test_dedicated_free_tracks_allocations(self):
        pair = _pair()
        view = ClusterView(pair.training)
        total = pair.training.free_gpus
        assert view.dedicated_free == total
        server = pair.training.servers[0]
        server.allocate(7, 3)
        assert view.dedicated_free == total - 3
        server.release(7)
        assert view.dedicated_free == total

    def test_loan_and_return_move_capacity_between_pools(self):
        pair = _pair()
        view = ClusterView(pair.training)
        assert view.onloan_free == 0
        moved = pair.loan(2)
        assert view.onloan_free == sum(s.num_gpus for s in moved)
        pair.return_server(moved[0].server_id)
        assert view.onloan_free == moved[1].num_gpus


class TestDeterministicOnloanCost:
    """Regression for the iteration-order-dependent onloan_cost bug."""

    def _hetero_pair(self, order):
        """A training cluster plus hand-built loaned T4 and A100 servers
        added in the given order."""
        training = make_training_cluster(2)
        for i, gpu_type in enumerate(order):
            server = Server(
                server_id=f"loan-{i}",
                gpu_type=gpu_type,
                home_cluster="inference",
                on_loan=True,
            )
            training.add_server(server)
        return training

    class _FakeSim:
        def __init__(self, cluster, view=None):
            self.cluster = cluster
            self.pair = object()
            self.view = view

    def test_cost_independent_of_iteration_order(self):
        a = self._hetero_pair([T4, A100])
        b = self._hetero_pair([A100, T4])
        pa = SchedulerPolicy.free_pools(self._FakeSim(a))
        pb = SchedulerPolicy.free_pools(self._FakeSim(b))
        assert pa.onloan_cost == pb.onloan_cost
        # weakest loaned type (T4, relative_compute 1/3) sets the cost
        assert pa.onloan_cost == pytest.approx(1.0 / T4.relative_compute)

    def test_view_and_scan_paths_agree(self):
        cluster = self._hetero_pair([A100, T4])
        view = ClusterView(cluster)
        scan = SchedulerPolicy.free_pools(self._FakeSim(cluster, view=None))
        via_view = SchedulerPolicy.free_pools(
            self._FakeSim(cluster, view=view)
        )
        assert scan == via_view

    def test_default_when_nothing_loaned(self):
        assert deterministic_onloan_cost([], default=3.0) == 3.0
        assert deterministic_onloan_cost([], default=0.5) == 1.0

    def test_cost_never_below_one(self):
        # loaned hardware stronger than training GPUs clamps at 1
        assert deterministic_onloan_cost([2.0]) == 1.0


class TestViewIndexes:
    def test_candidates_equal_full_scan(self):
        pair = _pair(train=4, infer=4)
        view = ClusterView(pair.training)
        pair.loan(3)
        # partially fill a mix of servers
        filler = make_job(job_id=50, gpus_per_worker=1, max_workers=9,
                          min_workers=9, fungible=True)
        engine_scan = PlacementEngine(pair.training)
        engine_scan.place([PlacementRequest(filler, base_workers=9)])
        engine_view = PlacementEngine(pair.training, view=view)
        job = make_job(job_id=51, gpus_per_worker=2, max_workers=2,
                       fungible=True)
        for flexible in (False, True):
            scan = engine_scan._candidates(job, flexible)
            indexed = engine_view._candidates(job, flexible)
            assert [s.server_id for s in scan] == [
                s.server_id for s in indexed
            ]

    def test_domain_capacity_equals_scan(self):
        pair = _pair(train=3, infer=3)
        view = ClusterView(pair.training)
        pair.loan(2)
        job = make_job(job_id=60, gpus_per_worker=3, heterogeneous=True)
        engine = PlacementEngine(pair.training)
        pair.training.servers[0].allocate(99, 7)
        for on_loan in (False, True):
            scan = sum(
                s.free_gpus // engine.worker_cost(job, s)
                for s in pair.training.servers
                if s.on_loan == on_loan
            )
            def cost_for(t):
                return math.ceil(
                    job.spec.gpus_per_worker / view.rel_compute(t)
                )

            assert view.domain_capacity(on_loan, cost_for) == scan

    def test_reclaim_cost_matches_direct_computation(self):
        pair = _pair(train=0, infer=4)
        view = ClusterView(pair.training)
        pair.loan(4)
        jobs = {}
        engine = PlacementEngine(pair.training, view=view)
        for i in range(3):
            job = make_job(job_id=i, gpus_per_worker=2, max_workers=4,
                           min_workers=2, fungible=True, elastic=True)
            jobs[job.job_id] = job
            engine.place(
                [PlacementRequest(job, base_workers=2, flex_workers=1)]
            )
        view.jobs = jobs
        for server in pair.training.servers:
            assert view.reclaim_cost(server.server_id) == pytest.approx(
                server_preemption_cost(server, jobs)
            )

    def test_ordered_pending_caches_until_delta(self):
        pair = _pair()
        view = ClusterView(pair.training)
        jobs = [make_job(job_id=i, submit_time=float(10 - i)) for i in range(4)]
        def key(j):
            return (j.spec.submit_time, j.job_id)

        first = view.ordered_pending("fifo", key, jobs)
        assert [j.job_id for j in first] == [3, 2, 1, 0]
        # same version: the very same list object is reused
        assert view.ordered_pending("fifo", key, jobs) is first
        view.note_queue_change()
        jobs.append(make_job(job_id=9, submit_time=0.0))
        second = view.ordered_pending("fifo", key, jobs)
        assert second is not first
        assert [j.job_id for j in second] == [9, 3, 2, 1, 0]

    def test_assert_consistent_detects_drift(self):
        pair = _pair()
        view = ClusterView(pair.training)
        view.assert_consistent()
        # corrupt the cached total behind the view's back
        view._free_total[False] -= 1
        with pytest.raises(AssertionError):
            view.assert_consistent()


class TestEnginePeek:
    def test_peek_next_time(self):
        engine = Engine()
        assert engine.peek_next_time() is None
        engine.schedule(5.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.peek_next_time() == 2.0
        engine.run(until=3.0)
        assert engine.peek_next_time() == 5.0


class TestSimulationFastPath:
    def _specs(self, n=40):
        return [
            JobSpec(
                job_id=i,
                submit_time=float(i * 37 % 1200),
                duration=900.0 + (i % 7) * 300.0,
                max_workers=2,
                min_workers=1,
                gpus_per_worker=1 + i % 2,
                elastic=True,
            )
            for i in range(n)
        ]

    def _run(self, incremental, policy=None):
        pair = _pair(train=2, infer=2)
        backend = "incremental" if incremental else "legacy"
        sim = Simulation(
            self._specs(),
            pair,
            policy or FIFOScheduler(),
            config=SimulationConfig(
                record_activities=True, view_backend=backend
            ),
        )
        sim.run()
        return sim

    def test_epochs_skipped_with_identical_logs(self):
        legacy = self._run(False)
        fast = self._run(True)
        assert fast._epochs_skipped > 0
        assert legacy._epochs_skipped == 0
        assert legacy.activities == fast.activities

    def test_heartbeat_skip_ahead_reduces_wakeups(self):
        legacy = self._run(False, policy=SJFScheduler())
        fast = self._run(True, policy=SJFScheduler())
        assert fast._heartbeats < legacy._heartbeats
        assert legacy.activities == fast.activities

    def test_view_consistent_after_full_run(self):
        sim = self._run(True)
        sim.view.assert_consistent()

    def test_legacy_mode_has_no_view(self):
        sim = self._run(False)
        assert sim.view is None


class TestIncrementalViewDeprecation:
    """``incremental_view`` is deprecated in favor of ``view_backend``;
    the warning and the bool→backend mapping are pinned here."""

    def test_true_warns_and_maps_to_incremental(self):
        with pytest.warns(DeprecationWarning, match="incremental_view"):
            cfg = SimulationConfig(incremental_view=True)
        assert cfg.resolved_view_backend() == "incremental"

    def test_false_warns_and_maps_to_legacy(self):
        with pytest.warns(DeprecationWarning, match="view_backend='legacy'"):
            cfg = SimulationConfig(incremental_view=False)
        assert cfg.resolved_view_backend() == "legacy"

    def test_explicit_view_backend_wins(self):
        with pytest.warns(DeprecationWarning):
            cfg = SimulationConfig(
                incremental_view=False, view_backend="array"
            )
        assert cfg.resolved_view_backend() == "array"

    def test_default_is_incremental_without_warning(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            cfg = SimulationConfig()
        assert cfg.resolved_view_backend() == "incremental"
