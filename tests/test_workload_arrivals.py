"""Additional workload-generator properties: arrivals, congestion, and
scenario interactions not covered by the calibration tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import apply_scenario, with_elastic_fraction
from repro.traces.workload import DAY, TraceConfig, generate_workload


class TestArrivalProcess:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_workload(
            TraceConfig(num_jobs=4000, days=7.0, cluster_gpus=512, seed=3)
        )

    def test_every_day_receives_arrivals(self, workload):
        days = {int(s.submit_time // DAY) for s in workload.specs}
        assert days == set(range(7))

    def test_arrival_rate_varies_by_hour(self, workload):
        """The diurnal intensity must produce non-uniform hourly counts."""
        counts = np.zeros(24)
        for s in workload.specs:
            counts[int((s.submit_time % DAY) // 3600)] += 1
        assert counts.max() > 1.4 * counts.min()

    def test_no_single_hour_dominates(self, workload):
        counts = {}
        for s in workload.specs:
            counts.setdefault(int(s.submit_time // 3600), 0)
            counts[int(s.submit_time // 3600)] += 1
        assert max(counts.values()) < 0.1 * len(workload.specs)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_every_seed_is_valid(self, seed):
        workload = generate_workload(
            TraceConfig(num_jobs=60, days=1.0, cluster_gpus=64, seed=seed)
        )
        assert len(workload.specs) == 60
        # tiny traces cannot always hit the target exactly once the
        # span-relative duration caps bind; the 3,000-job calibration
        # test asserts the tight band
        assert workload.offered_load() == pytest.approx(0.95, abs=0.3)
        for spec in workload.specs:
            assert spec.duration >= 60.0
            assert 1 <= spec.min_workers <= spec.max_workers
            assert spec.gpus_per_worker in (1, 2)


class TestDurationCaps:
    def test_regular_durations_capped_relative_to_span(self):
        workload = generate_workload(
            TraceConfig(num_jobs=800, days=2.0, cluster_gpus=128, seed=5)
        )
        cap = 2.0 * DAY / 4.0
        for spec in workload.specs:
            if not spec.elastic:
                assert spec.duration <= cap + 1e-6

    def test_elastic_durations_capped_at_half_span(self):
        workload = generate_workload(
            TraceConfig(num_jobs=800, days=2.0, cluster_gpus=128, seed=5)
        )
        cap = 2.0 * DAY / 2.0
        for spec in workload.specs:
            if spec.elastic:
                assert spec.duration <= cap + 1e-6


class TestScenarioInteractions:
    @pytest.fixture(scope="class")
    def specs(self):
        return generate_workload(
            TraceConfig(num_jobs=300, days=1.0, cluster_gpus=96, seed=8)
        ).specs

    def test_ideal_preserves_total_work(self, specs):
        ideal = apply_scenario(specs, "ideal")
        assert sum(s.total_work for s in ideal) == pytest.approx(
            sum(s.total_work for s in specs)
        )

    def test_heterogeneous_scenario_preserves_elasticity(self, specs):
        out = apply_scenario(specs, "heterogeneous", seed=1)
        assert sum(s.elastic for s in out) == sum(s.elastic for s in specs)

    def test_elastic_fraction_idempotent_at_current_level(self, specs):
        current = sum(1 for s in specs if s.elastic) / len(specs)
        out = with_elastic_fraction(specs, current, seed=1)
        assert [s.elastic for s in out] == [s.elastic for s in specs]

    def test_transforms_keep_ids_stable(self, specs):
        for scenario in ("advanced", "heterogeneous", "ideal"):
            out = apply_scenario(specs, scenario, seed=2)
            assert [s.job_id for s in out] == [s.job_id for s in specs]

    def test_transforms_keep_arrivals_stable(self, specs):
        out = apply_scenario(specs, "ideal")
        assert [s.submit_time for s in out] == [
            s.submit_time for s in specs
        ]
