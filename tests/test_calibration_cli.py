"""Tests for the calibration harness, the CLI, the paper-data module and
the information-agnostic scheduler."""

import json

import pytest

from repro import paper
from repro.cli import main
from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec
from repro.scenarios import default_setup, run_scheme
from repro.schedulers.agnostic import (
    LyraAgnosticScheduler,
    attained_service,
    las_order_key,
    throughput_gain_value,
)
from repro.schedulers.lyra import LyraScheduler
from repro.simulator.calibration import first_divergence, match_fraction
from repro.simulator.events import Activity, EventKind
from repro.simulator.simulation import Simulation, SimulationConfig

from tests.conftest import make_job


def run_logged(specs, seed_policy=None):
    pair = ClusterPair(make_training_cluster(2), make_inference_cluster(2))
    sim = Simulation(
        specs, pair, seed_policy or LyraScheduler(),
        config=SimulationConfig(record_activities=True),
    )
    sim.run()
    return sim.activities


def tiny_trace():
    return [
        JobSpec(job_id=0, submit_time=0.0, duration=600.0, max_workers=4),
        JobSpec(job_id=1, submit_time=60.0, duration=300.0, max_workers=8),
        JobSpec(job_id=2, submit_time=120.0, duration=900.0, max_workers=8,
                min_workers=4, elastic=True),
    ]


class TestCalibration:
    def test_identical_runs_match(self):
        a = run_logged(tiny_trace())
        b = run_logged(tiny_trace())
        assert first_divergence(a, b) is None
        assert match_fraction(a, b) == 1.0

    def test_decision_divergence_detected(self):
        a = [Activity(0.0, EventKind.START, 1)]
        b = [Activity(0.0, EventKind.START, 2)]
        div = first_divergence(a, b)
        assert div is not None and div.reason == "decision"

    def test_timestamp_divergence_detected(self):
        a = [Activity(0.0, EventKind.START, 1)]
        b = [Activity(5.0, EventKind.START, 1)]
        div = first_divergence(a, b)
        assert div is not None and div.reason == "timestamp"
        assert div.index == 0

    def test_two_second_tolerance(self):
        # §7.2: only larger-than-two-seconds drift counts.
        a = [Activity(0.0, EventKind.START, 1)]
        b = [Activity(1.9, EventKind.START, 1)]
        assert first_divergence(a, b) is None

    def test_length_divergence(self):
        a = [Activity(0.0, EventKind.START, 1)]
        div = first_divergence(a, [])
        assert div is not None and div.reason == "length"

    def test_schedule_epochs_ignored(self):
        a = [Activity(0.0, EventKind.SCHEDULE_EPOCH, None),
             Activity(1.0, EventKind.START, 1)]
        b = [Activity(1.0, EventKind.START, 1)]
        assert first_divergence(a, b) is None

    def test_different_policies_diverge(self):
        # A trace where ordering differs (SJF vs FIFO) must diverge.
        from repro.schedulers.fifo import FIFOScheduler, SJFScheduler

        specs = [
            JobSpec(job_id=0, submit_time=0.0, duration=5000.0,
                    max_workers=16),
            JobSpec(job_id=1, submit_time=10.0, duration=5000.0,
                    max_workers=16),
            JobSpec(job_id=2, submit_time=20.0, duration=100.0,
                    max_workers=16),
        ]
        a = run_logged(specs, FIFOScheduler())
        b = run_logged(specs, SJFScheduler())
        assert first_divergence(a, b) is not None
        assert match_fraction(a, b) < 1.0


class TestAgnosticScheduler:
    def test_attained_service_counts_work(self):
        job = make_job(duration=100, max_workers=2)
        job.record_placement("s", 2, flexible=False)
        job.mark_started(0.0)
        job.advance(25.0)
        assert attained_service(job) == pytest.approx(50.0)

    def test_order_prefers_less_served_then_smaller(self):
        young = make_job(job_id=1, max_workers=4)
        old = make_job(job_id=2, max_workers=4)
        old.remaining_work = old.spec.total_work / 2
        small = make_job(job_id=3, max_workers=1)
        order = sorted([old, young, small], key=las_order_key)
        assert [j.job_id for j in order] == [3, 1, 2]

    def test_value_needs_no_runtime(self):
        job = make_job(duration=123456.0, max_workers=8, min_workers=2,
                       elastic=True)
        value = throughput_gain_value(job, 2)
        # pure throughput: 2 extra linear workers x 1 GPU each
        assert value == pytest.approx(2.0)

    def test_value_discounted_by_age(self):
        job = make_job(duration=100.0, max_workers=8, min_workers=2,
                       elastic=True)
        fresh = throughput_gain_value(job, 2)
        job.remaining_work = 0.0
        assert throughput_gain_value(job, 2) == pytest.approx(fresh / 2)

    def test_end_to_end_between_baseline_and_lyra(self):
        setup = default_setup(num_jobs=150, days=0.75, training_servers=8,
                              inference_servers=10, seed=9, target_load=1.0)
        baseline = run_scheme(setup, "baseline")
        oracle = run_scheme(setup, "lyra")
        agnostic = run_scheme(setup, "lyra_agnostic")
        assert agnostic.completion_ratio() == 1.0
        assert (
            agnostic.queuing_summary().mean
            <= baseline.queuing_summary().mean
        )
        assert (
            oracle.jct_summary().mean
            <= agnostic.jct_summary().mean * 1.10
        )

    def test_scheduler_name(self):
        assert LyraAgnosticScheduler().name == "lyra_agnostic"


class TestPaperData:
    def test_table5_has_all_schemes(self):
        assert set(paper.TABLE5) >= {
            "baseline", "basic", "ideal", "lyra_loaning", "pollux",
        }

    def test_headline_reductions_consistent_with_table5(self):
        base = paper.TABLE5["baseline"]
        basic = paper.TABLE5["basic"]
        assert base.queuing_mean / basic.queuing_mean == pytest.approx(
            paper.HEADLINES["queuing_reduction_basic"], abs=0.01
        )
        assert base.jct_mean / basic.jct_mean == pytest.approx(
            paper.HEADLINES["jct_reduction_basic"], abs=0.01
        )

    def test_usage_improvement(self):
        base = paper.TABLE5["baseline"]
        basic = paper.TABLE5["basic"]
        assert basic.usage_overall / base.usage_overall - 1 == pytest.approx(
            0.25, abs=0.01
        )


class TestCLI:
    def test_run_json(self, capsys):
        rc = main([
            "run", "--scheme", "baseline", "--jobs", "60", "--days", "0.5",
            "--training-servers", "6", "--inference-servers", "8",
            "--json",
        ])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["completed"] >= 0.9
        assert "queuing" in data and "jct" in data

    def test_compare_prints_reductions(self, capsys):
        rc = main([
            "compare", "--schemes", "baseline", "lyra",
            "--jobs", "60", "--days", "0.5",
            "--training-servers", "6", "--inference-servers", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lyra vs baseline" in out
        assert "x queuing" in out

    def test_trace_export(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        rc = main([
            "trace", "--jobs", "40", "--days", "0.5",
            "--training-servers", "4", "--out", str(out_file),
        ])
        assert rc == 0
        data = json.loads(out_file.read_text())
        assert len(data["jobs"]) == 40
        assert 0 < data["stats"]["offered_load"] < 2

    def test_paper_command(self, capsys):
        rc = main(["paper", "headlines"])
        assert rc == 0
        assert "queuing_reduction_basic" in capsys.readouterr().out

    def test_paper_unknown_table(self, capsys):
        assert main(["paper", "table99"]) == 2

    def test_unknown_scheme_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "magic"])

    def test_run_replays_saved_trace(self, tmp_path, capsys):
        from repro.traces.io import save_workload
        from repro.traces.workload import TraceConfig, generate_workload

        workload = generate_workload(
            TraceConfig(num_jobs=30, days=0.25, cluster_gpus=48, seed=2)
        )
        path = tmp_path / "t.json"
        save_workload(workload, path)
        rc = main([
            "run", "--scheme", "baseline", "--replay", str(path),
            "--training-servers", "6", "--inference-servers", "6",
            "--json",
        ])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["completed"] == 1.0

    def test_report_command(self, capsys):
        rc = main([
            "report", "--jobs", "120", "--days", "0.5",
            "--training-servers", "8", "--inference-servers", "10",
            "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert "shape verdict" in out
        assert rc in (0, 1)
