"""Behavioral tests for the discrete-event simulation."""

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec, JobStatus
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.lyra import LyraScheduler
from repro.simulator.events import EventKind
from repro.simulator.simulation import Simulation, SimulationConfig


def pair(training=2, inference=2):
    return ClusterPair(
        make_training_cluster(training), make_inference_cluster(inference)
    )


def spec(job_id=0, submit=0.0, duration=100.0, workers=2, **kw):
    return JobSpec(
        job_id=job_id, submit_time=submit, duration=duration,
        max_workers=workers, **kw,
    )


def run(specs, policy=None, p=None, config=None, **kw):
    sim = Simulation(
        specs,
        p or pair(),
        policy or FIFOScheduler(),
        config=config or SimulationConfig(record_activities=True),
        **kw,
    )
    metrics = sim.run()
    return sim, metrics


class TestSingleJob:
    def test_runs_exactly_its_duration(self):
        sim, metrics = run([spec(duration=500.0)])
        job = sim.jobs[0]
        assert job.status is JobStatus.FINISHED
        assert job.jct == pytest.approx(500.0, abs=1.0)
        assert job.queuing_time == pytest.approx(0.0, abs=1.0)

    def test_cluster_empty_after_finish(self):
        sim, _ = run([spec()])
        assert sim.cluster.used_gpus == 0

    def test_activity_log_records_lifecycle(self):
        sim, _ = run([spec()])
        kinds = [a.kind for a in sim.activities if a.job_id == 0]
        assert kinds[0] is EventKind.SUBMIT
        assert EventKind.START in kinds
        assert kinds[-1] is EventKind.FINISH

    def test_submit_before_start_ordering(self):
        sim, _ = run([spec(submit=100.0)])
        job = sim.jobs[0]
        assert job.first_start_time >= 100.0


class TestQueueing:
    def test_second_job_waits_for_capacity(self):
        # Two 16-GPU jobs on a 16-GPU cluster: strictly serial.
        specs = [
            spec(job_id=0, duration=300.0, workers=16),
            spec(job_id=1, submit=1.0, duration=300.0, workers=16),
        ]
        sim, metrics = run(specs)
        first, second = sim.jobs[0], sim.jobs[1]
        assert first.queuing_time == pytest.approx(0.0, abs=1.0)
        assert second.queuing_time >= 290.0
        assert second.first_start_time >= first.finish_time

    def test_backfill_lets_small_job_pass(self):
        # Job 0 holds 15 of 16 GPUs; job 1 (16 GPUs) is blocked but the
        # 1-GPU job 2 backfills into the remaining slot immediately.
        specs = [
            spec(job_id=0, duration=300.0, workers=15),
            spec(job_id=1, submit=1.0, duration=300.0, workers=16),
            spec(job_id=2, submit=2.0, duration=50.0, workers=1),
        ]
        sim, _ = run(specs)
        assert sim.jobs[2].first_start_time < sim.jobs[1].first_start_time
        assert sim.jobs[2].queuing_time < 60.0

    def test_hourly_queuing_ratio(self):
        specs = [
            spec(job_id=0, duration=5000.0, workers=16),
            spec(job_id=1, submit=10.0, duration=100.0, workers=16),
        ]
        _, metrics = run(specs)
        # both submitted in hour 0; job 1 queued -> ratio 0.5
        assert metrics.hourly_queuing_ratio[0] == pytest.approx(0.5)

    def test_oversized_job_clamped_to_cluster(self):
        # 100 workers x 1 GPU on a 16-GPU cluster: clamped, same work.
        big = spec(job_id=0, duration=10.0, workers=100)
        sim, _ = run([big])
        job = sim.jobs[0]
        assert job.spec.max_workers == 16
        assert job.spec.total_work == pytest.approx(1000.0)
        assert job.status is JobStatus.FINISHED


class TestElasticLifecycle:
    def elastic_spec(self, job_id=0, submit=0.0, duration=100.0):
        return JobSpec(
            job_id=job_id, submit_time=submit, duration=duration,
            max_workers=8, min_workers=4, elastic=True, gpus_per_worker=1,
        )

    def test_elastic_job_scaled_to_max_when_alone(self):
        sim, metrics = run([self.elastic_spec()], policy=LyraScheduler())
        job = sim.jobs[0]
        # alone in the cluster, the MCKP grants full flexible demand
        assert job.jct == pytest.approx(100.0, abs=2.0)
        assert metrics.scale_ops == 0 or job.preemptions == 0

    def test_elastic_disabled_runs_at_base(self):
        config = SimulationConfig(elastic=False)
        sim, _ = run([self.elastic_spec()], policy=LyraScheduler(),
                     config=config)
        job = sim.jobs[0]
        # at base demand (4 of 8 workers) the job takes twice as long
        assert job.jct == pytest.approx(200.0, abs=2.0)

    def test_scale_in_frees_capacity_for_inelastic(self):
        # elastic job holds the whole 8-GPU cluster; an inelastic
        # arrival forces it back toward base demand.
        specs = [
            self.elastic_spec(job_id=0, duration=2000.0),
            spec(job_id=1, submit=100.0, duration=100.0, workers=4),
        ]
        sim, metrics = run(specs, policy=LyraScheduler(),
                           p=pair(training=1))
        inelastic = sim.jobs[1]
        assert inelastic.status is JobStatus.FINISHED
        # it did not wait for the elastic job to finish
        assert inelastic.first_start_time < 1000.0
        assert metrics.scale_ops >= 1

    def test_sublinear_scaling_slows_elastic_job(self):
        config = SimulationConfig(scaling_model="sublinear20")
        sim, _ = run([self.elastic_spec()], policy=LyraScheduler(),
                     config=config)
        linear_sim, _ = run([self.elastic_spec()], policy=LyraScheduler())
        assert sim.jobs[0].jct > linear_sim.jobs[0].jct


class TestPreemption:
    def test_preempt_requeues_and_restarts(self):
        sim = Simulation(
            [spec(duration=400.0)], pair(), FIFOScheduler(),
            config=SimulationConfig(),
        )
        preempted = {}

        def preempt_at_100():
            job = sim.jobs[0]
            preempted["workers"] = job.total_workers
            sim.preempt(job)

        sim.engine.schedule(100.0, preempt_at_100)
        sim.run()
        job = sim.jobs[0]
        assert job.preemptions == 1
        assert job.status is JobStatus.FINISHED
        # restart from scratch + 63 s overhead
        assert job.jct == pytest.approx(100.0 + 400.0 + 63.0, abs=2.0)

    def test_preempt_with_checkpoint_resumes(self):
        sim = Simulation(
            [spec(duration=400.0, checkpointing=True)], pair(),
            FIFOScheduler(), config=SimulationConfig(),
        )
        sim.engine.schedule(100.0, lambda: sim.preempt(sim.jobs[0]))
        sim.run()
        job = sim.jobs[0]
        assert job.jct == pytest.approx(400.0 + 63.0, abs=2.0)

    def test_preempting_not_running_raises(self):
        sim = Simulation([spec(submit=50.0)], pair(), FIFOScheduler())
        with pytest.raises(RuntimeError):
            sim.preempt(sim.jobs[0])


class TestUsageSampling:
    def test_training_usage_sampled(self):
        # A second late arrival keeps the sampling window open (samples
        # cover the trace window, i.e. up to the last arrival).
        specs = [
            spec(job_id=0, duration=2000.0, workers=8),
            spec(job_id=1, submit=1500.0, duration=10.0, workers=1),
        ]
        _, metrics = run(specs)
        assert metrics.training_usage.values
        assert max(metrics.training_usage.values) >= 0.5

    def test_stale_completion_events_ignored(self):
        # Rescheduling a job's completion must not fire the old event.
        sim = Simulation(
            [JobSpec(job_id=0, submit_time=0, duration=100, max_workers=8,
                     min_workers=4, elastic=True)],
            pair(), LyraScheduler(), config=SimulationConfig(),
        )
        sim.run()
        job = sim.jobs[0]
        assert job.status is JobStatus.FINISHED
        assert job.remaining_work <= 1e-3


class TestActivateGuards:
    def test_activate_below_base_demand_raises(self):
        sim = Simulation([spec(workers=4)], pair(), FIFOScheduler())
        job = sim.jobs[0]
        sim.pending.append(job)
        job.record_placement("train-0000", 2, flexible=False)
        with pytest.raises(RuntimeError, match="base demand"):
            sim.activate(job)
