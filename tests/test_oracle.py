"""Tests for the correctness-oracle subsystem (repro.oracle).

Three layers: the oracles themselves must be right on known instances
(Fig. 5), the production paths must conform on seeded sweeps, and —
the part that justifies the subsystem's existence — deliberately
re-introducing each historical bug must produce a pointed divergence.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.allocation as allocation_mod
import repro.core.reclaim as reclaim_mod
import repro.oracle.conformance as conformance_mod
from repro.core.reclaim import CostModel, plan_reclaim_lyra, plan_reclaim_optimal
from repro.oracle import (
    AllocationInstance,
    MCKPInstance,
    ReclaimInstance,
    allocation_divergence,
    check_capacity_monotonic,
    check_dry_run_pricing,
    check_mckp_permutation,
    check_permutation_invariance,
    gen_allocation_instance,
    gen_mckp_instance,
    gen_reclaim_instance,
    mckp_divergence,
    metamorphic_divergence,
    minimize,
    plan_reclaim_bruteforce,
    reclaim_divergence,
    run_check,
)
from tests.test_reclaim import fig5_instance


class TestReclaimOracle:
    def test_fig5_optimum_is_one_preemption(self):
        servers, jobs = fig5_instance()
        oracle = plan_reclaim_bruteforce(servers, jobs, count=2)
        assert oracle.num_preemptions == 1
        assert oracle.preempted_jobs == {1}
        assert set(oracle.servers) == {"s1", "s2"}

    def test_idle_capacity_is_free(self):
        servers, jobs = fig5_instance()
        oracle = plan_reclaim_bruteforce(servers, jobs, count=0)
        assert oracle.num_preemptions == 0

    def test_guard_on_large_instances(self):
        servers, jobs = fig5_instance()
        with pytest.raises(ValueError):
            plan_reclaim_bruteforce(servers, jobs, 2, max_jobs=2)

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=40, deadline=None)
    def test_production_planners_vs_oracle(self, seed):
        """Greedy never beats the true optimum; exhaustive matches it."""
        servers, jobs = gen_reclaim_instance(seed).build()
        count = gen_reclaim_instance(seed).count
        oracle = plan_reclaim_bruteforce(servers, jobs, count)
        for model in CostModel:
            greedy = plan_reclaim_lyra(servers, jobs, count, cost_model=model)
            assert greedy.num_preemptions >= oracle.num_preemptions
        optimal = plan_reclaim_optimal(servers, jobs, count)
        assert optimal.num_preemptions == oracle.num_preemptions


class TestDifferentialSweeps:
    @pytest.mark.parametrize(
        "gen,check",
        [
            (gen_reclaim_instance, reclaim_divergence),
            (gen_mckp_instance, mckp_divergence),
            (gen_allocation_instance, allocation_divergence),
        ],
        ids=["reclaim", "mckp", "allocation"],
    )
    def test_production_conforms(self, gen, check):
        for seed in range(40):
            assert check(gen(seed)) is None, f"seed {seed}"

    def test_metamorphic_properties_hold(self):
        for seed in range(40):
            assert metamorphic_divergence(seed) is None, f"seed {seed}"

    def test_capacity_monotonic_on_fig5_shape(self):
        instance = gen_reclaim_instance(3)
        assert check_capacity_monotonic(instance) is None
        assert check_permutation_invariance(instance) is None
        assert check_mckp_permutation(gen_mckp_instance(3)) is None

    def test_dry_run_pricing_probe_is_not_vacuous(self):
        # Seed 0's mini-scenario has a server on loan at the probe
        # point (pinned so the check keeps exercising real pricing).
        from repro.scenarios import build_sim, default_setup

        setup = default_setup(
            num_jobs=40, days=0.5, training_servers=3, inference_servers=5,
            seed=0, target_load=3.0,
        )
        sim = build_sim(setup, "lyra", seed=0)
        sim.run(until=41_000.0)
        assert sim.pair.loaned_count > 0
        assert check_dry_run_pricing(0) is None


class TestMinimizer:
    def test_shrinks_to_fixpoint(self):
        instance = gen_reclaim_instance(11)

        def diverges(inst):
            # Pretend the bug reproduces whenever job 0 appears at all.
            return (
                "job 0 present"
                if any(p[0] == 0 for p in inst.placements)
                else None
            )

        small = minimize(instance, diverges)
        assert diverges(small)
        assert all(diverges(s) is None for s in small.shrinks()
                   if _builds(s))
        assert len(small.placements) <= len(instance.placements)

    def test_repr_round_trips(self):
        for instance, cls in (
            (gen_reclaim_instance(5), ReclaimInstance),
            (gen_mckp_instance(5), MCKPInstance),
            (gen_allocation_instance(5), AllocationInstance),
        ):
            rebuilt = eval(repr(instance), {cls.__name__: cls})
            assert rebuilt == instance

    def test_script_names_the_failing_check(self):
        script = gen_reclaim_instance(5).to_script("reclaim_divergence")
        assert "from repro.oracle.conformance import reclaim_divergence" in script
        assert "ReclaimInstance(" in script


def _builds(instance) -> bool:
    try:
        instance.build()
    except Exception:
        return False
    return True


class TestRunCheck:
    def test_smoke_clean_report(self):
        report = run_check(policies=["lyra"], n=4)
        assert report.ok
        assert report.checks["reclaim"] == 4
        assert report.checks["replay"] == 1
        assert "no divergence" in report.summary()

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            run_check(policies=["not-a-scheme"], n=1)

    def test_report_serializes(self):
        report = run_check(policies=["lyra"], n=2, replay=False)
        data = report.to_dict()
        assert data["ok"] is True
        assert data["divergences"] == []


# ----------------------------------------------------------------------
# the acceptance criterion: re-introduced bugs must be caught, pointedly
# ----------------------------------------------------------------------
class TestBugReintroduction:
    """Each historical bug, put back, must yield a pointed divergence."""

    def test_nonfungible_spill_to_onloan_is_caught(self, monkeypatch):
        def buggy_deduct(pools, job, gpus):
            # The old code: fungibility ignored, spill billed on-loan.
            taken = min(gpus, pools.onloan_normalized)
            pools.onloan -= int(round(taken * pools.onloan_cost))
            pools.training -= gpus - taken
            pools.training = max(0, pools.training)
            pools.onloan = max(0, pools.onloan)

        monkeypatch.setattr(allocation_mod, "_deduct_flex", buggy_deduct)
        instance = AllocationInstance(
            jobs=((0, 100.0, 1, 8, 1, True, False, False, False, 0.0),),
            training=2, onloan=9, onloan_cost=3.0,
        )
        msg = allocation_divergence(instance)
        assert msg is not None
        assert "leftover pools mis-accounted" in msg

    def test_gpu_fraction_drift_is_caught(self, monkeypatch):
        real = reclaim_mod.job_preemption_cost

        def buggy_cost(job, server_id, model=CostModel.SERVER_FRACTION,
                       base_span=None, full_span=None):
            # The old greedy loop: workers over the working span instead
            # of GPUs over the placement.
            if model is CostModel.GPU_FRACTION and full_span is not None:
                total = sum(job.workers_on(sid) for sid in full_span)
                return job.workers_on(server_id) / total if total else 0.0
            return real(job, server_id, model,
                        base_span=base_span, full_span=full_span)

        monkeypatch.setattr(reclaim_mod, "job_preemption_cost", buggy_cost)
        # One job paying double GPU cost on one of its two hosts: worker
        # fractions are 1/2 each, GPU fractions 1/3 vs 2/3.
        instance = ReclaimInstance(
            num_servers=3,
            placements=((0, "r0", 2, False, 1), (0, "r1", 2, False, 2),
                        (1, "r2", 2, False, 1)),
            count=1,
        )
        msg = reclaim_divergence(instance)
        assert msg is not None
        assert "cost-model drift under gpu_fraction" in msg

    def test_optimal_early_exit_is_caught(self, monkeypatch):
        import itertools

        from repro.core.reclaim import _base_jobs_on, _plan_from_order

        def buggy_optimal(candidates, jobs, count, max_candidates=24):
            # The tempting-but-wrong exit: stop at the first subset size
            # with any feasible plan, even if its preemption count
            # exceeds the size bound.
            count = min(count, len(candidates))
            best = None
            for size in range(0, count + 1):
                for subset in itertools.combinations(candidates, size):
                    plan = _plan_from_order(list(subset), jobs, len(subset))
                    vacated = set(plan.servers)
                    for server in candidates:
                        if server.server_id in vacated:
                            continue
                        live = [
                            j for j in _base_jobs_on(server, jobs)
                            if j.job_id not in plan.preempted_jobs
                        ]
                        if not live:
                            vacated.add(server.server_id)
                            plan.servers.append(server.server_id)
                        if len(plan.servers) >= count:
                            break
                    if len(plan.servers) < count:
                        continue
                    plan.servers = plan.servers[:count]
                    if best is None or (
                        plan.num_preemptions < best.num_preemptions
                    ):
                        best = plan
                if best is not None:
                    break
            return best or _plan_from_order(list(candidates), jobs, count)

        monkeypatch.setattr(
            conformance_mod, "plan_reclaim_optimal", buggy_optimal
        )
        # The counterexample shape: size 1 admits only a 3-preemption
        # plan ({r0} + cascade r1); the 2-preemption optimum needs
        # size 2 ({r2, r3}).
        instance = ReclaimInstance(
            num_servers=4,
            placements=(
                (0, "r0", 1, False, 1), (0, "r1", 4, False, 1),
                (1, "r0", 2, False, 1), (2, "r0", 2, False, 1),
                (3, "r2", 2, False, 1), (4, "r3", 2, False, 1),
            ),
            count=2,
        )
        msg = reclaim_divergence(instance)
        assert msg is not None
        assert "brute force proves" in msg

    def test_run_check_surfaces_the_divergence_with_a_repro(
        self, monkeypatch
    ):
        def buggy_deduct(pools, job, gpus):
            taken = min(gpus, pools.onloan_normalized)
            pools.onloan -= int(round(taken * pools.onloan_cost))
            pools.training -= gpus - taken
            pools.training = max(0, pools.training)
            pools.onloan = max(0, pools.onloan)

        monkeypatch.setattr(allocation_mod, "_deduct_flex", buggy_deduct)
        # Seed 0's stream hits the bug within the first instances (the
        # generator makes non-fungible elastic jobs against tight pools
        # common on purpose); the report must carry a runnable repro.
        report = run_check(policies=["lyra"], n=50, replay=False)
        assert not report.ok
        div = report.divergences[0]
        assert div.check == "allocation"
        assert div.repro is not None
        assert "AllocationInstance(" in div.repro
        assert "allocation_divergence" in div.repro
        assert div.render().startswith("[allocation")

    def test_random_reclaimer_noise_does_not_false_positive(self):
        # Sanity guard against over-tight oracles: a valid-but-greedy
        # random plan must still satisfy the *inequality* direction.
        servers, jobs = gen_reclaim_instance(17).build()
        count = gen_reclaim_instance(17).count
        oracle = plan_reclaim_bruteforce(servers, jobs, count)
        from repro.core.reclaim import plan_reclaim_random

        plan = plan_reclaim_random(servers, jobs, count,
                                   rng=random.Random(3))
        assert plan.num_preemptions >= oracle.num_preemptions
