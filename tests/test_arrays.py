"""The structure-of-arrays scheduling core (``repro.core.arrays``).

Property-based coverage of the array backend's central contract: the
numpy column mirror, maintained incrementally from the same deltas that
feed the dict-indexed :class:`ClusterView`, must equal a from-scratch
rebuild after *any* interleaving of cluster mutations — and every
vectorized query (candidate sets, domain capacity, best-candidate
selection, the MCKP DP kernel, the batched reclaim index) must return
bit-identical answers to its scalar reference.

The golden-log suite (``tests/test_equivalence.py``) pins end-to-end
behaviour; these tests pin the *mechanisms* so a mirror bug is caught at
the delta that introduced it, not as an opaque digest mismatch.
"""

import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import Job, JobSpec
from repro.core.arrays import ArrayClusterView
from repro.core.mckp import (
    Item,
    solve_mckp,
    solve_mckp_bruteforce,
    solution_cost,
)
from repro.core.reclaim import (
    CostModel,
    preemption_cost_index,
    preemption_cost_matrix,
)
from repro.core.view import ClusterView
from repro.faults.crash import (
    BARRIER_BETWEEN_EVENTS,
    CrashInjector,
    CrashPoint,
    SimulatedCrash,
)
from repro.recovery import RecoveryManager
from repro.rm.manager import ResourceManager
from tests.test_equivalence import digest, run_scenario
from tests.test_recovery import CHECKPOINT_EVERY, KILL_AT, build_sim


def _make_jobs(count: int = 4) -> dict:
    return {
        i: Job(JobSpec(
            job_id=i, submit_time=0.0, duration=1000.0,
            max_workers=6, min_workers=1, gpus_per_worker=1,
            elastic=True, fungible=True,
        ))
        for i in range(count)
    }


def _random_walk(view, rm, pair, jobs, rng, steps=50, per_step=None):
    """Drive every mutation source the delta protocol must survive."""
    ops = ("launch", "scale_in", "release", "loan", "return",
           "fail", "recover", "direct_alloc", "direct_release",
           "group", "degrade")
    now = 0.0
    for _ in range(steps):
        now += 1.0
        op = rng.choice(ops)
        job = jobs[rng.randrange(len(jobs))]
        all_servers = pair.training.servers + pair.inference.servers
        server = rng.choice(all_servers)
        try:
            if op == "launch":
                rm.launch(
                    job, server, rng.randint(1, 2), 1,
                    flexible=rng.random() < 0.5, now=now,
                )
            elif op == "scale_in":
                rm.scale_in(job, server.server_id, rng.randint(1, 3),
                            now=now)
            elif op == "release":
                rm.release_job(job, now=now)
            elif op == "loan":
                rm.loan_servers(rng.randint(1, 2), now=now)
            elif op == "return":
                rm.return_server(server.server_id, now=now)
            elif op == "fail":
                report = rm.fail_node(server.server_id, now=now)
                for job_id in report.jobs_lost_base:
                    rm.release_job(jobs[job_id], now=now)
                    jobs[job_id].clear_placement()
            elif op == "recover":
                rm.recover_node(server.server_id, now=now)
            elif op == "direct_alloc":
                server.allocate(job.job_id, rng.randint(1, 2))
            elif op == "direct_release":
                server.release(job.job_id)
            elif op == "group":
                # the explicit post-allocation group hook (placement path)
                server.group = rng.choice([None, "base", "flex"])
                view.note_group_change(server)
            elif op == "degrade":
                server.perf_factor = rng.choice([1.0, 0.5, 0.25])
                view.note_server_attrs(server)
        except (ValueError, RuntimeError, KeyError):
            pass  # invalid op rejected — must leave the mirror intact
        if per_step is not None:
            per_step()


# ----------------------------------------------------------------------
# the column mirror stays delta-exact
# ----------------------------------------------------------------------
class TestArrayMirrorProperties:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_mirror_equals_rebuild_after_every_delta(self, seed):
        rng = random.Random(seed)
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(3))
        view = ArrayClusterView(pair.training)
        rm = ResourceManager(pair)
        jobs = _make_jobs()
        view.jobs = jobs
        # assert_consistent() compares every column against the live
        # Server objects *and* runs the parent dict-index audit
        _random_walk(view, rm, pair, jobs, rng,
                     per_step=view.assert_consistent)
        rebuilt = ArrayClusterView(
            pair.training, jobs=jobs, attach=False,
            default_onloan_cost=view.default_onloan_cost,
        )
        assert view.array_snapshot() == rebuilt.array_snapshot()
        assert view.pools() == rebuilt.pools()
        assert view.reclaim_cost_index() == rebuilt.reclaim_cost_index()

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_vectorized_queries_match_dict_view(self, seed):
        """candidates()/domain_capacity() agree with the bucket walk."""
        rng = random.Random(seed)
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(3))
        arr = ArrayClusterView(pair.training)
        rm = ResourceManager(pair)
        jobs = _make_jobs()
        arr.jobs = jobs
        _random_walk(arr, rm, pair, jobs, rng)
        # detached from-scratch reference (servers hold one _on_change
        # slot, so a second *attached* view would steal the deltas)
        ref = ClusterView(pair.training, jobs=jobs, attach=False)

        def cost_for_type(tname):
            return int(np.ceil(1 / arr.rel_compute(tname)))

        for train_ok, loan_ok in ((True, True), (True, False), (False, True)):
            def domain_ok(on_loan, _t=train_ok, _l=loan_ok):
                return _l if on_loan else _t

            got = arr.candidates(cost_for_type, domain_ok)
            want = ref.candidates(cost_for_type, domain_ok)
            assert (
                {s.server_id for s in got} == {s.server_id for s in want}
            )
        for on_loan in (False, True):
            assert arr.domain_capacity(on_loan, cost_for_type) == (
                ref.domain_capacity(on_loan, cost_for_type)
            )

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_select_best_is_head_of_sorted_candidates(self, seed):
        """np.lexsort over the columns = head of the Python-sorted list."""
        rng = random.Random(seed)
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(3))
        view = ArrayClusterView(pair.training)
        rm = ResourceManager(pair)
        jobs = _make_jobs()
        view.jobs = jobs
        _random_walk(view, rm, pair, jobs, rng)
        for flexible in (False, True):
            for special, hetero, elastic in (
                (True, False, True), (True, True, False),
                (True, False, False), (False, False, True),
            ):
                got = view.select_best(
                    gpus_per_worker=1, train_ok=True, loan_ok=True,
                    type_lock=None, flexible=flexible,
                    heterogeneous=hetero, elastic=elastic,
                    special_grouping=special,
                )

                def pref(s):
                    if not special:
                        return 1 if s.on_loan else 0
                    if hetero:
                        if flexible:
                            return 0 if s.on_loan else 1
                        return 0 if not s.on_loan else 1
                    if elastic:
                        if s.on_loan:
                            wanted = "flex" if flexible else "base"
                            if s.group == wanted:
                                return 0
                            if s.group is None:
                                return 1
                            return 3
                        return 2
                    return 1 if s.on_loan else 0

                eligible = [
                    s for s in pair.training.servers
                    if s.free_gpus >= int(
                        np.ceil(1 / s.gpu_type.relative_compute)
                    )
                ]
                want = min(
                    eligible,
                    key=lambda s: (pref(s), -s.perf_factor, s.idle,
                                   s.free_gpus, s.server_id),
                    default=None,
                )
                assert (got is None) == (want is None)
                if got is not None:
                    assert got.server_id == want.server_id


# ----------------------------------------------------------------------
# pickling: columns are derived state, rebuilt lazily after restore
# ----------------------------------------------------------------------
def test_pickle_roundtrip_rebuilds_columns():
    pair = ClusterPair(make_training_cluster(3), make_inference_cluster(3))
    view = ArrayClusterView(pair.training)
    jobs = _make_jobs()
    view.jobs = jobs
    pair.training.servers[0].allocate(0, 2)
    clone = pickle.loads(pickle.dumps(view))
    assert clone._arrays_ready is False
    # deltas arriving before the first query must not explode
    clone.cluster.servers[1].allocate(1, 1)
    clone.server_changed(clone.cluster.servers[1])
    # first query triggers the lazy rebuild; the mirror is then exact
    best = clone.select_best(
        gpus_per_worker=1, train_ok=True, loan_ok=True, type_lock=None,
        flexible=False, heterogeneous=False, elastic=True,
        special_grouping=True,
    )
    assert best is not None
    assert clone._arrays_ready is True
    clone.assert_consistent()


def test_recovery_roundtrip_under_array_backend(tmp_path):
    """Kill-anywhere restart equivalence holds with view_backend="array":
    the recovered run reproduces the continuous run's golden digest and
    comes back up on a consistent array view."""
    reference = run_scenario("lyra_loaning", backend="array")
    sim = build_sim("lyra_loaning", backend="array")
    manager = RecoveryManager(
        tmp_path,
        checkpoint_every=CHECKPOINT_EVERY,
        crash=CrashInjector([CrashPoint(KILL_AT, BARRIER_BETWEEN_EVENTS)]),
    )
    manager.attach(sim)
    with pytest.raises(SimulatedCrash):
        sim.run()
    assert manager.checkpoints > 0
    del sim

    recovered = RecoveryManager.recover(tmp_path)
    recovered.resume()
    assert digest(recovered.activities) == digest(reference.activities)
    assert isinstance(recovered.view, ArrayClusterView)
    assert recovered.view.backend == "array"
    recovered.view.assert_consistent()


# ----------------------------------------------------------------------
# the vectorized MCKP kernel is bit-exact
# ----------------------------------------------------------------------
@st.composite
def mckp_instances(draw):
    num_groups = draw(st.integers(0, 4))
    groups = []
    for _ in range(num_groups):
        items = [
            Item(
                weight=draw(st.integers(0, 6)),
                value=float(draw(st.integers(-2, 20))) / 2.0,
            )
            for _ in range(draw(st.integers(1, 3)))
        ]
        groups.append(items)
    capacity = draw(st.integers(0, 12))
    return groups, capacity


class TestMCKPKernels:
    @given(inst=mckp_instances())
    @settings(max_examples=200, deadline=None)
    def test_numpy_dp_bit_equals_scalar_dp(self, inst):
        groups, capacity = inst
        v_np, c_np = solve_mckp(groups, capacity, use_numpy=True)
        v_py, c_py = solve_mckp(groups, capacity, use_numpy=False)
        assert v_np == v_py  # bit-equal floats, not approx
        assert c_np == c_py  # identical item choices, group by group
        _, weight = solution_cost(c_np)
        assert weight <= capacity

    @given(inst=mckp_instances())
    @settings(max_examples=100, deadline=None)
    def test_numpy_dp_matches_bruteforce_optimum(self, inst):
        groups, capacity = inst
        v_np, _ = solve_mckp(groups, capacity, use_numpy=True)
        v_bf, _ = solve_mckp_bruteforce(groups, capacity)
        assert v_np == pytest.approx(v_bf)


# ----------------------------------------------------------------------
# the batched reclaim index keeps its scalar presentation
# ----------------------------------------------------------------------
class TestReclaimIndex:
    def _placed(self):
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(2))
        rm = ResourceManager(pair)
        jobs = _make_jobs(3)
        now = 0.0
        rng = random.Random(11)
        for job in jobs.values():
            for _ in range(2):
                server = rng.choice(pair.training.servers)
                try:
                    rm.launch(job, server, 1, 1, flexible=False, now=now)
                except (ValueError, RuntimeError):
                    pass
        return pair, jobs

    @pytest.mark.parametrize("model", list(CostModel))
    def test_matrix_agrees_with_index(self, model):
        pair, jobs = self._placed()
        index = preemption_cost_index(pair.training.servers, jobs, model)
        ids, costs = preemption_cost_matrix(pair.training.servers, jobs, model)
        assert ids == [s.server_id for s in pair.training.servers]
        for sid, cost in zip(ids, costs):
            assert float(index[sid]) == float(cost)

    def test_empty_server_cost_is_the_int_zero(self):
        """The historical ``sum([])`` returned the int 0; its repr (``0``,
        not ``0.0``) leaks into logged plan-cost details, so the batched
        index must preserve it exactly."""
        pair = ClusterPair(make_training_cluster(2), make_inference_cluster(1))
        index = preemption_cost_index(pair.training.servers, {})
        for cost in index.values():
            assert cost == 0
            assert isinstance(cost, int)
