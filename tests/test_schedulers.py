"""Tests for the scheduling policies and their distinguishing behaviors."""

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec, JobStatus
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.fifo import (
    FIFOScheduler,
    OpportunisticScheduling,
    SJFScheduler,
)
from repro.schedulers.gandiva import GandivaScheduler
from repro.schedulers.lyra import LyraScheduler
from repro.schedulers.pollux import PolluxScheduler
from repro.simulator.simulation import Simulation, SimulationConfig


def run_policy(policy, specs, training=2, inference=2, **cfg):
    pair = ClusterPair(
        make_training_cluster(training), make_inference_cluster(inference)
    )
    sim = Simulation(specs, pair, policy, config=SimulationConfig(**cfg))
    metrics = sim.run()
    return sim, metrics


def inelastic(job_id, submit=0.0, duration=100.0, workers=2, **kw):
    return JobSpec(job_id=job_id, submit_time=submit, duration=duration,
                   max_workers=workers, **kw)


def elastic(job_id, submit=0.0, duration=100.0, wmin=2, wmax=4, **kw):
    return JobSpec(job_id=job_id, submit_time=submit, duration=duration,
                   max_workers=wmax, min_workers=wmin, elastic=True, **kw)


class TestFIFO:
    def test_serves_in_arrival_order_under_contention(self):
        specs = [
            inelastic(0, submit=0.0, duration=1000.0, workers=16),
            inelastic(1, submit=10.0, duration=5.0, workers=16),
            inelastic(2, submit=5.0, duration=5.0, workers=16),
        ]
        sim, _ = run_policy(FIFOScheduler(), specs)
        # job 2 arrived before job 1 and must start first
        assert sim.jobs[2].first_start_time < sim.jobs[1].first_start_time

    def test_all_jobs_finish(self):
        specs = [inelastic(i, submit=i * 1.0) for i in range(10)]
        sim, metrics = run_policy(FIFOScheduler(), specs)
        assert metrics.completion_ratio() == 1.0


class TestSJF:
    def test_shortest_job_jumps_queue(self):
        specs = [
            inelastic(0, submit=0.0, duration=1000.0, workers=16),
            inelastic(1, submit=5.0, duration=500.0, workers=16),
            inelastic(2, submit=10.0, duration=5.0, workers=16),
        ]
        sim, _ = run_policy(SJFScheduler(), specs)
        assert sim.jobs[2].first_start_time < sim.jobs[1].first_start_time


class TestLyra:
    def test_elastic_job_gets_flexible_workers(self):
        sim, _ = run_policy(LyraScheduler(), [elastic(0, wmin=2, wmax=8)])
        # finished at max speed: duration is defined at wmax
        assert sim.jobs[0].jct == pytest.approx(100.0, abs=2.0)

    def test_mckp_prefers_higher_value_job(self):
        """Two elastic jobs compete for 4 leftover GPUs; the one with
        the bigger JCT reduction per GPU must win them."""
        heavy = elastic(0, duration=1000.0, wmin=2, wmax=6)   # big value
        light = elastic(1, duration=10.0, wmin=2, wmax=6)     # small value
        sim, _ = run_policy(LyraScheduler(), [heavy, light], training=1)
        # 8 GPUs: base 2+2, leftover 4 -> heavy should take all 4
        assert sim.jobs[0].total_workers == 0  # finished by now
        # verify outcome via completion times: heavy ran near max speed
        assert sim.jobs[0].jct < 1000.0 * 6 / 4

    def test_scale_ops_counted(self):
        specs = [
            elastic(0, duration=2000.0, wmin=4, wmax=8),
            inelastic(1, submit=100.0, duration=50.0, workers=4),
        ]
        sim, metrics = run_policy(LyraScheduler(), specs, training=1)
        assert metrics.scale_ops >= 1

    def test_elastic_off_treats_all_as_inelastic(self):
        sim, metrics = run_policy(
            LyraScheduler(), [elastic(0, wmin=2, wmax=8)], elastic=False
        )
        assert metrics.scale_ops == 0
        assert sim.jobs[0].jct == pytest.approx(400.0, abs=5.0)


class TestGandiva:
    def test_grows_only_when_queue_empty(self):
        specs = [
            elastic(0, duration=3000.0, wmin=2, wmax=16),
            inelastic(1, submit=50.0, duration=6000.0, workers=14),
        ]
        sim, _ = run_policy(GandivaScheduler(), specs)
        # with job 1 pending/running, job 0 was grown only while alone;
        # once grown workers are held they are not proactively released.
        assert sim.jobs[0].status is JobStatus.FINISHED

    def test_no_shrink_for_pending_jobs(self):
        # elastic job grows to fill the cluster; a later inelastic job
        # must wait (Gandiva does not scale in to admit).
        specs = [
            elastic(0, duration=2000.0, wmin=2, wmax=16),
            inelastic(1, submit=500.0, duration=50.0, workers=16),
        ]
        sim, metrics = run_policy(GandivaScheduler(), specs)
        job1 = sim.jobs[1]
        job0 = sim.jobs[0]
        assert job1.first_start_time >= job0.finish_time


class TestAFS:
    def test_marginal_allocation_grows_jobs(self):
        sim, metrics = run_policy(AFSScheduler(), [elastic(0, wmin=2, wmax=8)])
        assert sim.jobs[0].jct <= 210.0  # grew beyond base demand

    def test_grows_beyond_declared_range(self):
        # AFS assumes unbounded elasticity (§7.4); alone in a big
        # cluster the job exceeds w_max.
        specs = [elastic(0, duration=5000.0, wmin=2, wmax=4)]
        sim, _ = run_policy(AFSScheduler(), specs)
        job = sim.jobs[0]
        # it cannot have taken the full 5000 * (4/2) seconds at base
        assert job.jct < 5000.0

    def test_smaller_workers_prioritized_per_gpu(self):
        a = AFSScheduler()
        from tests.conftest import make_job
        cheap = make_job(job_id=1, max_workers=4, min_workers=1,
                         gpus_per_worker=1, elastic=True)
        costly = make_job(job_id=2, max_workers=4, min_workers=1,
                          gpus_per_worker=4, elastic=True)
        cheap.record_placement("s", 1, flexible=False)
        costly.record_placement("s", 1, flexible=False)
        assert a._marginal_gain(cheap) > a._marginal_gain(costly)


class TestPollux:
    def make(self, **kw):
        return PolluxScheduler(generations=10, population=8, seed=1, **kw)

    def test_goodput_diminishing_in_surplus(self):
        from tests.conftest import make_job
        job = make_job(max_workers=8, min_workers=2, elastic=True)
        g = [PolluxScheduler.goodput(job, w) for w in range(2, 9)]
        marginal = [b - a for a, b in zip(g, g[1:])]
        assert all(m2 <= m1 + 1e-9 for m1, m2 in zip(marginal, marginal[1:]))

    def test_goodput_decays_with_progress(self):
        from tests.conftest import make_job
        job = make_job(max_workers=4, min_workers=2, elastic=True)
        fresh = PolluxScheduler.goodput(job, 4)
        job.remaining_work = 0.1 * job.spec.total_work
        assert PolluxScheduler.goodput(job, 4) < fresh

    def test_schedules_and_finishes(self):
        specs = [elastic(i, submit=i * 10.0) for i in range(4)]
        sim, metrics = run_policy(self.make(), specs, tuned_jobs=True)
        assert metrics.completion_ratio() == 1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PolluxScheduler(generations=0)
        with pytest.raises(ValueError):
            PolluxScheduler(population=1)

    def test_repair_respects_capacity(self):
        pollux = self.make()
        from tests.conftest import make_job
        jobs = [
            make_job(job_id=i, max_workers=8, min_workers=2, elastic=True)
            for i in range(3)
        ]
        pollux._running_ids = set()
        genome = [8, 8, 8]
        pollux._repair(genome, jobs, capacity=10)
        used = sum(w * j.spec.gpus_per_worker for j, w in zip(jobs, genome))
        assert used <= 10


class TestOpportunistic:
    def test_fungible_jobs_wait_for_loaned_servers(self):
        # without any loaned servers, fungible jobs starve while
        # non-fungible ones run on training hardware.
        specs = [
            inelastic(0, duration=50.0, workers=2, fungible=True),
            inelastic(1, duration=50.0, workers=2),
        ]
        pair = ClusterPair(
            make_training_cluster(2), make_inference_cluster(2)
        )
        sim = Simulation(
            specs, pair, OpportunisticScheduling(),
            config=SimulationConfig(drain_limit=3600.0),
        )
        sim.run()
        assert sim.jobs[1].status is JobStatus.FINISHED
        assert sim.jobs[0].status is JobStatus.PENDING
