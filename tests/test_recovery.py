"""Durable state: checkpoint/WAL crash recovery.

The correctness bar is *kill-anywhere restart equivalence*: a run killed
at any crash barrier (between engine events, mid plan-commit, or right
after the WAL append) and recovered from its checkpoint directory must
produce an Activity log byte-identical to the uninterrupted run — which
is pinned by the golden fixture in ``tests/data/golden_logs.json``, so
no reference run is needed here.

Also covered: the snapshot codec's integrity envelope (magic, schema,
checksum), WAL replay idempotence and divergence detection, atomic
artifact writes under a mid-write kill, RNG-stream preservation across
snapshot round-trips, and the zero-cost guarantee when checkpointing is
off.
"""

import json
import pickle
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.core.orchestrator import ResourceOrchestrator
from repro.faults.crash import (
    BARRIER_BETWEEN_EVENTS,
    BARRIERS,
    CrashInjector,
    CrashPoint,
    SimulatedCrash,
    seeded_crash_schedule,
)
from repro.faults.plan import FaultPlan, builtin_plan
from repro.ioutil import atomic_write, atomic_write_text
from repro.recovery import (
    PlanWAL,
    RecoveryError,
    RecoveryManager,
    SnapshotCodec,
    SnapshotError,
    WALError,
    capture_payload,
    restore_payload,
)
from repro.rm.containers import container_id_state
from repro.simulator.simulation import DAY, Simulation, SimulationConfig
from repro.traces.inference import generate_inference_trace
from repro.traces.workload import TraceConfig, generate_workload
from tests.test_equivalence import GOLDEN_PATH, SCENARIOS, digest, run_scenario

KILL_AT = 30000.0
CHECKPOINT_EVERY = 3000.0


def build_sim(name: str, backend: str = "incremental") -> Simulation:
    """The golden-suite scenario ``name``, built but not run."""
    policy_fn, opts = SCENARIOS[name]
    specs = generate_workload(
        TraceConfig(
            num_jobs=90,
            days=1.0,
            cluster_gpus=48,
            seed=7,
            target_load=opts.get("load", 0.8),
        )
    ).specs
    pair = ClusterPair(make_training_cluster(6), make_inference_cluster(8))
    orchestrated = opts.get("orchestrated", False)
    trace = (
        generate_inference_trace(days=2.0, num_servers=8, seed=3)
        if orchestrated or opts.get("inference")
        else None
    )
    config = SimulationConfig(
        record_activities=True,
        view_backend=backend,
        elastic=opts.get("elastic", True),
        node_mtbf=opts.get("node_mtbf"),
        drain_limit=opts.get("drain_days", 30.0) * DAY,
    )
    return Simulation(
        specs,
        pair,
        policy_fn(),
        inference_trace=trace,
        orchestrator=ResourceOrchestrator() if orchestrated else None,
        config=config,
    )


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# kill-anywhere restart equivalence
# ----------------------------------------------------------------------
class TestKillAnywhereEquivalence:
    @pytest.mark.parametrize("barrier", BARRIERS)
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_killed_run_recovers_byte_identical(
        self, name, barrier, golden, tmp_path
    ):
        sim = build_sim(name)
        manager = RecoveryManager(
            tmp_path,
            checkpoint_every=CHECKPOINT_EVERY,
            crash=CrashInjector([CrashPoint(KILL_AT, barrier)]),
        )
        manager.attach(sim)
        with pytest.raises(SimulatedCrash) as exc:
            sim.run()
        assert exc.value.barrier == barrier
        assert manager.checkpoints > 0
        del sim

        recovered = RecoveryManager.recover(tmp_path)
        recovered.resume()

        entry = golden[name]
        assert len(recovered.activities) == entry["events"]
        assert digest(recovered.activities) == entry["sha256"], (
            f"scenario {name!r} killed at {barrier} did not recover to the "
            f"golden activity log"
        )
        # the run actually went through the durable machinery
        assert recovered.recovery is not None
        wal = recovered.recovery.wal
        assert wal.appended + wal.replayed > 0
        assert recovered.executor.plans_applied > 0
        if recovered.view is not None:
            recovered.view.assert_consistent()

    def test_checkpointing_alone_is_invisible(self, golden, tmp_path):
        """A checkpointed-but-uninterrupted run is byte-identical to the
        plain run — snapshotting must not perturb the simulation."""
        sim = build_sim("lyra_loaning")
        manager = RecoveryManager(tmp_path, checkpoint_every=CHECKPOINT_EVERY)
        manager.attach(sim)
        sim.run()
        assert digest(sim.activities) == golden["lyra_loaning"]["sha256"]
        assert manager.checkpoints > 0
        assert list(tmp_path.glob("snapshot-*.ckpt"))
        assert (tmp_path / "wal.jsonl").exists()

    def test_disabled_recovery_allocates_nothing(self, golden):
        """With no checkpoint directory the recovery subsystem must cost
        nothing: no objects wired, behaviour bit-identical to pre-PR."""
        sim = run_scenario("lyra_elastic", incremental=True)
        assert sim.recovery is None
        assert sim.executor.wal is None
        assert sim.executor.crash_probe is None
        assert digest(sim.activities) == golden["lyra_elastic"]["sha256"]

    def test_recover_refuses_non_recovery_directory(self, tmp_path):
        with pytest.raises(RecoveryError):
            RecoveryManager.recover(tmp_path)

    def test_recover_skips_corrupt_newest_snapshot(self, golden, tmp_path):
        """A torn newest snapshot falls back to the previous one; the
        recovered run still reaches the golden log."""
        sim = build_sim("fifo_contention")
        manager = RecoveryManager(
            tmp_path,
            checkpoint_every=CHECKPOINT_EVERY,
            crash=CrashInjector([CrashPoint(KILL_AT, BARRIER_BETWEEN_EVENTS)]),
        )
        manager.attach(sim)
        with pytest.raises(SimulatedCrash):
            sim.run()
        del sim
        snapshots = sorted(tmp_path.glob("snapshot-*.ckpt"))
        assert len(snapshots) >= 2
        # tear the newest snapshot mid-payload
        data = snapshots[-1].read_bytes()
        snapshots[-1].write_bytes(data[: len(data) // 2])

        recovered = RecoveryManager.recover(tmp_path)
        recovered.resume()
        assert digest(recovered.activities) == (
            golden["fifo_contention"]["sha256"]
        )


# ----------------------------------------------------------------------
# snapshot payload round-trip (state surgery, RNG streams)
# ----------------------------------------------------------------------
class TestSnapshotRoundTrip:
    def _killed(self, name, tmp):
        sim = build_sim(name)
        manager = RecoveryManager(
            tmp,
            checkpoint_every=CHECKPOINT_EVERY,
            crash=CrashInjector([CrashPoint(KILL_AT, BARRIER_BETWEEN_EVENTS)]),
        )
        manager.attach(sim)
        with pytest.raises(SimulatedCrash):
            sim.run()
        return sim

    def test_round_trip_preserves_engine_and_rng_streams(self, tmp_path):
        """capture → restore reproduces the event heap, every seeded RNG
        stream, the activity prefix, and the container-id counter."""
        sim = self._killed("node_failures", tmp_path)
        seq_before = container_id_state()
        payload = capture_payload(sim)
        assert payload["container_seq"] == seq_before
        restored = restore_payload(payload)

        assert restored is not sim
        assert restored.engine.now == sim.engine.now
        assert (
            restored.engine.snapshot_events() == sim.engine.snapshot_events()
        )
        assert restored.activities == sim.activities
        # seeded fault streams must continue exactly where they stopped
        inj, rinj = sim.fault_injector, restored.fault_injector
        assert rinj is not None
        assert rinj._rng_process.getstate() == inj._rng_process.getstate()
        assert rinj._rng_target.getstate() == inj._rng_target.getstate()
        assert rinj._rng_launch.getstate() == inj._rng_launch.getstate()
        assert (
            restored.orchestrator.rng.getstate()
            == sim.orchestrator.rng.getstate()
        )
        # the capture left the live sim rewired, not gutted
        assert sim.recovery is not None
        assert sim.executor.wal is not None

    def test_round_trip_preserves_policy_rng(self, tmp_path):
        sim = self._killed("pollux_seeded", tmp_path)
        restored = restore_payload(capture_payload(sim))
        assert restored.policy.rng.getstate() == sim.policy.rng.getstate()

    def test_capture_strips_durable_machinery_from_payload(self, tmp_path):
        """Snapshots never contain the recovery manager, WAL, or crash
        probe — a restored payload starts clean for re-attachment."""
        sim = self._killed("fifo_contention", tmp_path)
        restored = restore_payload(capture_payload(sim))
        assert restored.recovery is None
        assert restored.executor.wal is None
        assert restored.executor.crash_probe is None
        # ... while the live sim keeps its wiring
        assert sim.recovery is not None
        assert sim.executor.wal is not None

    def test_restore_rejects_incomplete_payload(self):
        with pytest.raises(SnapshotError):
            restore_payload({"sim": None})


# ----------------------------------------------------------------------
# snapshot file format
# ----------------------------------------------------------------------
class TestSnapshotCodec:
    PAYLOAD = {"sim": ["nested", {"state": 1.5}], "container_seq": 42}

    def test_encode_decode_round_trip(self):
        data = SnapshotCodec.encode(self.PAYLOAD)
        assert SnapshotCodec.decode(data) == self.PAYLOAD

    def test_dump_load_round_trip(self, tmp_path):
        path = tmp_path / "snapshot-000001.ckpt"
        size = SnapshotCodec.dump(self.PAYLOAD, path)
        assert path.stat().st_size == size
        assert SnapshotCodec.load(path) == self.PAYLOAD

    def test_rejects_bad_magic(self):
        data = SnapshotCodec.encode(self.PAYLOAD)
        with pytest.raises(SnapshotError, match="magic"):
            SnapshotCodec.decode(b"NOTASNAP" + data)

    def test_rejects_truncation(self):
        data = SnapshotCodec.encode(self.PAYLOAD)
        for cut in (len(data) // 2, len(data) - 1, 12):
            with pytest.raises(SnapshotError):
                SnapshotCodec.decode(data[:cut])

    def test_rejects_corrupt_payload(self):
        data = bytearray(SnapshotCodec.encode(self.PAYLOAD))
        data[-1] ^= 0xFF
        with pytest.raises(SnapshotError, match="checksum"):
            SnapshotCodec.decode(bytes(data))

    def test_rejects_foreign_schema(self):
        from repro.recovery.codec import MAGIC

        data = SnapshotCodec.encode(self.PAYLOAD)
        header_len = int.from_bytes(data[len(MAGIC):len(MAGIC) + 4], "big")
        start = len(MAGIC) + 4
        header = json.loads(data[start:start + header_len])
        header["schema"] = SnapshotCodec.version + 1
        raw = json.dumps(header, sort_keys=True).encode()
        forged = (
            MAGIC + len(raw).to_bytes(4, "big") + raw
            + data[start + header_len:]
        )
        with pytest.raises(SnapshotError, match="schema"):
            SnapshotCodec.decode(forged)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotCodec.load(tmp_path / "nope.ckpt")


# ----------------------------------------------------------------------
# write-ahead plan journal
# ----------------------------------------------------------------------
class _FakePlan:
    def __init__(self, payload):
        self._payload = payload

    def to_dict(self):
        return dict(self._payload)


def _wal_lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestPlanWAL:
    def test_replay_is_an_idempotent_noop(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        plan = _FakePlan({"actions": ["launch 3"], "epoch": 7})
        wal = PlanWAL(path)
        assert wal.append(1, plan) == "appended"
        wal.close()

        # a recovered run re-derives plan 1 and re-appends it
        wal2 = PlanWAL(path)
        assert wal2.append(1, plan) == "replayed"
        assert wal2.append(1, plan) == "replayed"
        assert wal2.append(2, _FakePlan({"actions": []})) == "appended"
        wal2.close()

        lines = _wal_lines(path)
        plans = [r for r in lines if r["type"] == "plan"]
        noops = [r for r in lines if r["type"] == "noop"]
        # replay never writes a second plan record (no double-commit) —
        # only audit noops
        assert [r["plan_id"] for r in plans] == [1, 2]
        assert [r["plan_id"] for r in noops] == [1, 1]
        assert all(
            n["digest"] == plans[0]["digest"] for n in noops
        )

        # and the journal re-loads cleanly, noops and all
        wal3 = PlanWAL(path)
        assert wal3.plan_ids == [1, 2]
        assert wal3.last_plan_id() == 2

    def test_divergent_replay_is_a_hard_error(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = PlanWAL(path)
        wal.append(1, _FakePlan({"actions": ["launch 3"]}))
        wal.close()
        wal2 = PlanWAL(path)
        with pytest.raises(WALError, match="diverged"):
            wal2.append(1, _FakePlan({"actions": ["preempt 3"]}))

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = PlanWAL(path)
        wal.append(1, _FakePlan({"actions": []}))
        wal.close()
        with path.open("a") as fh:
            fh.write('{"type": "plan", "plan_id": 2, "act')  # crash mid-write

        wal2 = PlanWAL(path)
        assert wal2.plan_ids == [1]
        # the torn plan was never committed; re-journaling it is fresh
        assert wal2.append(2, _FakePlan({"actions": ["x"]})) == "appended"

    def test_interior_corruption_is_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = PlanWAL(path)
        wal.append(1, _FakePlan({"actions": []}))
        wal.close()
        records = path.read_text()
        path.write_text("garbage not json\n" + records)
        with pytest.raises(WALError, match="corrupt"):
            PlanWAL(path)

    def test_tampered_digest_is_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = PlanWAL(path)
        wal.append(1, _FakePlan({"actions": ["launch 3"]}))
        wal.close()
        record = _wal_lines(path)[0]
        record["actions"] = ["launch 4"]  # edit without re-digesting
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        with pytest.raises(WALError, match="digest"):
            PlanWAL(path)


# ----------------------------------------------------------------------
# atomic artifact writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_kill_mid_write_leaves_previous_file(self, tmp_path):
        """A process death mid-write (even via BaseException, like
        SimulatedCrash) leaves the old complete file, never a hybrid."""
        path = tmp_path / "report.json"
        atomic_write_text(path, "old complete contents")
        with pytest.raises(SimulatedCrash):
            with atomic_write(path) as fh:
                fh.write("new partial cont")
                raise SimulatedCrash(BARRIER_BETWEEN_EVENTS, 123.0)
        assert path.read_text() == "old complete contents"
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_kill_before_first_version_leaves_nothing(self, tmp_path):
        path = tmp_path / "fresh.json"
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write("part")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_clean_write_replaces(self, tmp_path):
        path = tmp_path / "report.json"
        atomic_write_text(path, "v1")
        atomic_write_text(path, "v2")
        assert path.read_text() == "v2"
        assert list(tmp_path.iterdir()) == [path]


# ----------------------------------------------------------------------
# process-crash chaos plan family
# ----------------------------------------------------------------------
class TestProcessCrashPlan:
    def test_builtin_plan_carries_a_seeded_schedule(self):
        plan = builtin_plan("process-crash")
        assert plan.crashes == seeded_crash_schedule(seed=0, count=3)
        assert not plan.is_empty()

    def test_with_seed_regenerates_seed_derived_schedules(self):
        plan = builtin_plan("process-crash").with_seed(5)
        assert plan.crashes == seeded_crash_schedule(seed=5, count=3)
        # a hand-written schedule is never silently replaced
        custom = FaultPlan(
            name="custom", seed=0, crashes=(CrashPoint(100.0),)
        ).with_seed(5)
        assert custom.crashes == (CrashPoint(100.0),)

    def test_crash_points_round_trip_through_dict(self):
        plan = builtin_plan("process-crash")
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.crashes == plan.crashes
        assert again.to_dict() == plan.to_dict()

    def test_injector_consumes_points_in_order(self):
        schedule = [
            CrashPoint(100.0, BARRIER_BETWEEN_EVENTS),
            CrashPoint(200.0, BARRIER_BETWEEN_EVENTS),
        ]
        injector = CrashInjector(schedule)
        injector.maybe_fire("mid_epoch", 150.0)  # wrong barrier: no fire
        injector.maybe_fire(BARRIER_BETWEEN_EVENTS, 50.0)  # too early
        with pytest.raises(SimulatedCrash) as exc:
            injector.maybe_fire(BARRIER_BETWEEN_EVENTS, 150.0)
        assert exc.value.at == 150.0
        assert injector.remaining() == (schedule[1],)
        assert injector.fired == [schedule[0]]


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
_GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: cheap-but-diverse slice of the golden suite for the randomized
#: kill-point property (the full 11×3 grid runs above)
_PROPERTY_SCENARIOS = (
    "fifo_contention",
    "lyra_elastic",
    "lyra_loaning",
    "node_failures",
)


@settings(max_examples=6, deadline=None)
@given(
    name=st.sampled_from(_PROPERTY_SCENARIOS),
    frac=st.floats(min_value=0.1, max_value=0.9),
    barrier=st.sampled_from(BARRIERS),
)
def test_property_random_kill_recovers_byte_identical(name, frac, barrier):
    """Any scenario killed at any random time/barrier and recovered is
    byte-identical to the uninterrupted run."""
    kill_at = round(frac * 60000.0, 3)
    workdir = Path(tempfile.mkdtemp(prefix="repro-recovery-prop-"))
    try:
        sim = build_sim(name)
        manager = RecoveryManager(
            workdir,
            checkpoint_every=CHECKPOINT_EVERY,
            crash=CrashInjector([CrashPoint(kill_at, barrier)]),
        )
        manager.attach(sim)
        try:
            sim.run()
            # a late kill point whose barrier never recurs: the run just
            # completes, and must still match the golden log
            final = sim
        except SimulatedCrash:
            del sim
            final = RecoveryManager.recover(workdir)
            final.resume()
        assert digest(final.activities) == _GOLDEN[name]["sha256"]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


_JSON_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 6), max_value=10 ** 6),
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", max_size=12
    ),
)


@settings(max_examples=25, deadline=None)
@given(
    payload=st.dictionaries(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1,
                max_size=10),
        _JSON_SCALARS,
        max_size=5,
    ).filter(lambda d: not {"type", "plan_id", "digest"} & d.keys()),
    plan_id=st.integers(min_value=1, max_value=10 ** 6),
)
def test_property_wal_replay_idempotent(payload, plan_id):
    """Re-appending any journaled plan — across any number of reopens —
    writes audit noops only, never a second plan record."""
    workdir = Path(tempfile.mkdtemp(prefix="repro-wal-prop-"))
    try:
        path = workdir / "wal.jsonl"
        plan = _FakePlan(payload)
        wal = PlanWAL(path)
        assert wal.append(plan_id, plan) == "appended"
        wal.close()
        for _ in range(2):
            wal = PlanWAL(path)
            assert wal.append(plan_id, plan) == "replayed"
            wal.close()
        plans = [r for r in _wal_lines(path) if r["type"] == "plan"]
        assert len(plans) == 1
        assert plans[0]["plan_id"] == plan_id
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def test_payload_pickle_survives_codec_protocol():
    """RNG state round-trips at the codec's pinned pickle protocol."""
    import random

    rng = random.Random("7:process")
    [rng.random() for _ in range(100)]
    clone = pickle.loads(pickle.dumps(rng, protocol=4))
    assert clone.getstate() == rng.getstate()
    assert [clone.random() for _ in range(10)] == (
        [rng.random() for _ in range(10)]
    )
