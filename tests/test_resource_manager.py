"""Tests for the resource-manager substrate and failure injection."""

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec, JobStatus
from repro.rm.containers import Container, ContainerState
from repro.rm.manager import ResourceManager
from repro.schedulers.lyra import LyraScheduler
from repro.simulator.simulation import Simulation, SimulationConfig

from tests.conftest import make_job


@pytest.fixture
def rm():
    pair = ClusterPair(make_training_cluster(2), make_inference_cluster(2))
    return ResourceManager(pair)


def first_server(rm):
    return rm.pair.training.servers[0]


class TestContainer:
    def test_lifecycle(self):
        c = Container(job_id=1, server_id="s", gpus=2)
        assert c.running
        c.stop(10.0)
        assert c.state is ContainerState.RELEASED
        assert c.end_time == 10.0

    def test_stop_idempotent(self):
        c = Container(job_id=1, server_id="s", gpus=2)
        c.stop(10.0)
        c.stop(20.0, lost=True)
        assert c.state is ContainerState.RELEASED
        assert c.end_time == 10.0

    def test_lost_state(self):
        c = Container(job_id=1, server_id="s", gpus=2)
        c.stop(5.0, lost=True)
        assert c.state is ContainerState.LOST

    def test_unique_ids(self):
        a = Container(job_id=1, server_id="s", gpus=1)
        b = Container(job_id=1, server_id="s", gpus=1)
        assert a.container_id != b.container_id

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            Container(job_id=1, server_id="s", gpus=0)


class TestLaunchRelease:
    def test_launch_books_both_sides(self, rm):
        job = make_job(max_workers=3)
        server = first_server(rm)
        containers = rm.launch(job, server, 3, 1, flexible=False, now=5.0)
        assert len(containers) == 3
        assert server.allocations[job.job_id] == 3
        assert job.base_workers == 3
        rm.verify_books()

    def test_launch_over_capacity_rejected(self, rm):
        job = make_job(max_workers=5, gpus_per_worker=2)
        with pytest.raises(ValueError, match="free"):
            rm.launch(job, first_server(rm), 5, 2, flexible=False)
        rm.verify_books()

    def test_launch_on_unhealthy_rejected(self, rm):
        job = make_job()
        server = first_server(rm)
        rm.fail_node(server.server_id)
        with pytest.raises(ValueError, match="unhealthy"):
            rm.launch(job, server, 1, 1, flexible=False)

    def test_release_job_frees_everything(self, rm):
        job = make_job(max_workers=4)
        rm.launch(job, rm.pair.training.servers[0], 2, 1, flexible=False)
        rm.launch(job, rm.pair.training.servers[1], 2, 1, flexible=False)
        released = rm.release_job(job, now=9.0)
        assert released == 4
        assert rm.pair.training.used_gpus == 0
        assert job.total_workers == 0
        assert not rm.containers_of(job.job_id)
        rm.verify_books()

    def test_scale_in_releases_flex_only(self, rm):
        job = make_job(max_workers=6, min_workers=2, elastic=True)
        server = first_server(rm)
        rm.launch(job, server, 2, 1, flexible=False)
        rm.launch(job, server, 3, 1, flexible=True)
        stopped = rm.scale_in(job, server.server_id, 2, now=3.0)
        assert stopped == 2
        assert job.flex_workers == 1
        assert job.base_workers == 2
        assert server.allocations[job.job_id] == 3
        rm.verify_books()

    def test_scale_in_never_touches_base(self, rm):
        job = make_job(max_workers=4, min_workers=2, elastic=True)
        server = first_server(rm)
        rm.launch(job, server, 2, 1, flexible=False)
        assert rm.scale_in(job, server.server_id, 5) == 0
        assert job.base_workers == 2

    def test_audit_trail(self, rm):
        job = make_job(max_workers=2)
        rm.launch(job, first_server(rm), 2, 1, flexible=False, now=1.0)
        rm.release_job(job, now=2.0)
        ops = [record.op for record in rm.audit]
        assert ops == ["launch", "release_job"]


class TestWhitelist:
    def test_loan_and_return(self, rm):
        moved = rm.loan_servers(1, now=0.0)
        assert len(moved) == 1
        returned = rm.return_server(moved[0].server_id, now=1.0)
        assert not returned.on_loan
        assert [r.op for r in rm.audit] == ["loan", "return"]

    def test_return_refused_while_containers_run(self, rm):
        moved = rm.loan_servers(1)[0]
        job = make_job(fungible=True)
        rm.launch(job, moved, 1, 1, flexible=False)
        with pytest.raises(RuntimeError, match="vacated"):
            rm.return_server(moved.server_id)


class TestNodeFailure:
    def test_base_loss_reported(self, rm):
        job = make_job(max_workers=2)
        server = first_server(rm)
        rm.launch(job, server, 2, 1, flexible=False)
        report = rm.fail_node(server.server_id, now=4.0)
        assert report.jobs_lost_base == {job.job_id}
        assert len(report.lost_containers) == 2
        assert all(
            c.state is ContainerState.LOST for c in report.lost_containers
        )
        assert server.used_gpus == 0
        assert not rm.is_healthy(server.server_id)

    def test_flex_only_loss_reported_separately(self, rm):
        job = make_job(max_workers=6, min_workers=2, elastic=True)
        base_server, flex_server = rm.pair.training.servers[:2]
        rm.launch(job, base_server, 2, 1, flexible=False)
        rm.launch(job, flex_server, 3, 1, flexible=True)
        report = rm.fail_node(flex_server.server_id)
        assert report.jobs_lost_base == set()
        assert report.jobs_lost_flex == {job.job_id: 3}

    def test_base_loss_subsumes_flex_loss(self, rm):
        job = make_job(max_workers=6, min_workers=2, elastic=True)
        server = first_server(rm)
        rm.launch(job, server, 2, 1, flexible=False)
        rm.launch(job, server, 2, 1, flexible=True)
        report = rm.fail_node(server.server_id)
        assert report.jobs_lost_base == {job.job_id}
        assert job.job_id not in report.jobs_lost_flex

    def test_recovery(self, rm):
        server = first_server(rm)
        rm.fail_node(server.server_id)
        rm.recover_node(server.server_id)
        assert rm.is_healthy(server.server_id)
        job = make_job()
        rm.launch(job, server, 1, 1, flexible=False)  # usable again

    def test_verify_books_detects_drift(self, rm):
        job = make_job(max_workers=2)
        server = first_server(rm)
        rm.launch(job, server, 2, 1, flexible=False)
        server.release(job.job_id, 1)  # sabotage behind the RM's back
        with pytest.raises(RuntimeError, match="mismatch"):
            rm.verify_books()


class TestFailureInjection:
    def run_with_failures(self, mtbf, specs=None, seed=1):
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(2))
        specs = specs or [
            JobSpec(job_id=i, submit_time=i * 50.0, duration=2000.0,
                    max_workers=4)
            for i in range(8)
        ]
        sim = Simulation(
            specs, pair, LyraScheduler(),
            config=SimulationConfig(node_mtbf=mtbf, node_repair_time=600.0,
                                    failure_seed=seed),
        )
        metrics = sim.run()
        return sim, metrics

    def test_failures_happen_and_jobs_still_finish(self):
        sim, metrics = self.run_with_failures(mtbf=1200.0)
        assert metrics.node_failures > 0
        assert all(
            j.status is JobStatus.FINISHED for j in sim.jobs.values()
        )
        assert sim.pair.training.used_gpus == 0

    def test_failed_jobs_pay_restart(self):
        sim, metrics = self.run_with_failures(mtbf=1500.0)
        restarted = [j for j in sim.jobs.values() if j.preemptions > 0]
        if restarted:  # failures hit at least one occupied server
            for job in restarted:
                assert job.jct > job.spec.duration

    def test_no_failures_without_mtbf(self):
        sim, metrics = self.run_with_failures(mtbf=None)
        assert metrics.node_failures == 0
        assert metrics.preemptions == 0

    def test_deterministic_failures(self):
        _, a = self.run_with_failures(mtbf=1000.0, seed=3)
        _, b = self.run_with_failures(mtbf=1000.0, seed=3)
        assert a.node_failures == b.node_failures
        assert a.jct_summary().mean == b.jct_summary().mean

    def test_elastic_job_survives_flex_loss(self):
        # One elastic job spanning base+flex: flex losses shrink it but
        # the job keeps running (no preemption) unless base is hit.
        specs = [
            JobSpec(job_id=0, submit_time=0.0, duration=4000.0,
                    max_workers=16, min_workers=4, elastic=True),
        ]
        sim, metrics = self.run_with_failures(mtbf=2000.0, specs=specs)
        job = sim.jobs[0]
        assert job.status is JobStatus.FINISHED


class TestOnLoanFailures:
    """Regression: node failures hitting loaned servers keep the books
    clean and attribute preemptions to the right cause."""

    def make_sim(self):
        # job 0 fills the only training server; job 1 (fungible, 2
        # workers at the 3x T4 footprint) fits only on a loaned server.
        pair = ClusterPair(make_training_cluster(1), make_inference_cluster(2))
        specs = [
            JobSpec(job_id=0, submit_time=0.0, duration=5000.0,
                    max_workers=8),
            JobSpec(job_id=1, submit_time=0.0, duration=5000.0,
                    max_workers=2, fungible=True),
        ]
        return Simulation(specs, pair, LyraScheduler(),
                          config=SimulationConfig())

    def loaned_busy_server(self, sim):
        for server in sim.cluster.servers:
            if server.on_loan and server.allocations:
                return server
        return None

    def test_failure_on_loaned_server_books_clean(self):
        sim = self.make_sim()

        def loan():
            assert sim.rm.loan_servers(1, now=sim.now)
            sim.trigger_schedule()

        observed = {}

        def fail():
            server = self.loaned_busy_server(sim)
            assert server is not None, "no job landed on the loaned server"
            observed["victims"] = set(server.allocations)
            assert sim.apply_node_failure(server.server_id, repair_time=600.0)
            sim.rm.verify_books()  # clean immediately after the failure

        sim.engine.schedule(10.0, loan)
        sim.engine.schedule(2000.0, fail)
        metrics = sim.run()

        assert observed["victims"], "failure hit an empty server"
        assert metrics.node_failures == 1
        by_cause = metrics.registry.counter(
            "sim.preemptions_by_cause", cause="node_failure"
        )
        assert by_cause.value == len(observed["victims"])
        assert all(
            j.status is JobStatus.FINISHED for j in sim.jobs.values()
        )
        sim.rm.verify_books()

    def test_failure_mid_reclaim_books_clean(self):
        # The orchestrator has vacated a loaned server (reclaim preempts
        # its job) and the node dies before the whitelist return
        # completes.  The return must still go through, the dead server
        # must not be re-loaned while unhealthy, and causes must stay
        # attributed: the preemption was the reclaim's, not the crash's.
        sim = self.make_sim()

        def loan():
            assert sim.rm.loan_servers(1, now=sim.now)
            sim.trigger_schedule()

        def reclaim_then_fail():
            server = self.loaned_busy_server(sim)
            assert server is not None
            victim = sim.jobs[next(iter(server.allocations))]
            sim.preempt(victim, cause="reclaim")
            sim.rm.verify_books()
            # node dies mid-reclaim, before the whitelist return
            assert sim.apply_node_failure(server.server_id,
                                          repair_time=600.0)
            sim.rm.verify_books()
            # the return still completes (server is vacated)...
            returned = sim.rm.return_server(server.server_id, now=sim.now)
            assert not returned.on_loan
            # ...and the unhealthy server is never loaned back out
            reloaned = sim.rm.loan_servers(1, now=sim.now)
            assert all(
                s.server_id != server.server_id for s in reloaned
            )
            sim.rm.verify_books()

        sim.engine.schedule(10.0, loan)
        sim.engine.schedule(2000.0, reclaim_then_fail)
        metrics = sim.run()

        reclaim_count = metrics.registry.counter(
            "sim.preemptions_by_cause", cause="reclaim"
        )
        crash_count = metrics.registry.counter(
            "sim.preemptions_by_cause", cause="node_failure"
        )
        assert reclaim_count.value == 1
        assert crash_count.value == 0  # the server was empty when it died
        assert all(
            j.status is JobStatus.FINISHED for j in sim.jobs.values()
        )
        sim.rm.verify_books()
