"""The multi-cluster capacity market, and the loan-path bugfix sweep.

Covers:

* the three loan-path regressions this PR fixes — each test fails on the
  pre-fix code:
  - ``return_server`` routing by ``home_cluster`` (it used to dump every
    return into ``self.inference``, wherever the server came from);
  - ``loan_ids`` all-or-nothing validation (it used to raise mid-list,
    leaving earlier servers already moved);
  - one shared loan-eligibility predicate (``peek_loanable`` used to
    re-implement the filter inline, so an eligibility change could make
    plans diverge from commits);
* the market layer itself: contracts, broker clearing across lenders,
  regional outages, config parsing;
* the degenerate-equivalence rule: a 1×1 ClusterSet driven by a
  CapacityBroker reproduces the committed golden logs byte-identically;
* a Hypothesis property: any interleaving of loan / loan_ids /
  return_server, fully unwound, restores every whitelist exactly.
"""

import json

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.market import (
    CapacityBroker,
    ClusterSet,
    ContractTerms,
    FederatedCluster,
    build_market_setup,
    market_config_from_file,
    market_config_from_spec,
    resolve_market,
)
from repro.rm.manager import ResourceManager
from repro.scenarios import build_sim, default_setup

from tests.test_equivalence import digest, run_scenario, GOLDEN_PATH, BACKENDS


def two_lender_set(**kwargs) -> ClusterSet:
    return ClusterSet(
        training_regions=[
            make_training_cluster(2, name="train-r0", id_prefix="train-r0")
        ],
        inference_clusters=[
            make_inference_cluster(3, name="infer-r0", id_prefix="infer-r0"),
            make_inference_cluster(3, name="infer-r1", id_prefix="infer-r1"),
        ],
        **kwargs,
    )


# ----------------------------------------------------------------------
# bugfix regressions
# ----------------------------------------------------------------------
class TestReturnRouting:
    def test_return_server_routes_by_home_cluster(self):
        """A mixed-origin loan pool must unwind each server to the
        member whitelist it came from, not to "the" inference cluster."""
        pair = two_lender_set()
        a = pair.inference.member("infer-r0")
        b = pair.inference.member("infer-r1")
        pair.loan_ids(["infer-r0-0000", "infer-r1-0000", "infer-r1-0001"])
        assert len(a) == 2 and len(b) == 1
        for sid in ("infer-r1-0000", "infer-r0-0000", "infer-r1-0001"):
            server = pair.return_server(sid)
            assert not server.on_loan
        assert sorted(s.server_id for s in a.servers) == [
            "infer-r0-0000", "infer-r0-0001", "infer-r0-0002"
        ]
        assert sorted(s.server_id for s in b.servers) == [
            "infer-r1-0000", "infer-r1-0001", "infer-r1-0002"
        ]
        assert pair.training.on_loan_servers == []

    def test_plain_pair_return_also_routes_by_home(self):
        """The base-pair path goes through the same routing."""
        pair = ClusterPair(make_training_cluster(2), make_inference_cluster(2))
        pair.loan(1)
        sid = pair.training.on_loan_servers[0].server_id
        server = pair.return_server(sid)
        assert server.server_id in pair.inference
        assert not server.on_loan


class TestLoanIdsAtomicity:
    def test_loan_ids_all_or_nothing_on_busy_id(self):
        """A busy id at position k must leave both whitelists untouched —
        the pre-fix code had already moved positions 0..k-1."""
        pair = ClusterPair(make_training_cluster(2), make_inference_cluster(4))
        ids = [s.server_id for s in pair.inference.servers]
        busy = pair.inference.get(ids[2])
        busy.allocate(job_id=1, gpus=1)
        before_inference = [s.server_id for s in pair.inference.servers]
        before_training = [s.server_id for s in pair.training.servers]
        with pytest.raises(ValueError, match="busy"):
            pair.loan_ids([ids[0], ids[1], ids[2], ids[3]])
        assert [s.server_id for s in pair.inference.servers] == before_inference
        assert [s.server_id for s in pair.training.servers] == before_training
        assert all(not s.on_loan for s in pair.inference.servers)

    def test_loan_ids_all_or_nothing_on_unknown_id(self):
        pair = ClusterPair(make_training_cluster(2), make_inference_cluster(3))
        ids = [s.server_id for s in pair.inference.servers]
        before = [s.server_id for s in pair.inference.servers]
        with pytest.raises(ValueError, match="not in the inference"):
            pair.loan_ids([ids[0], "nope", ids[1]])
        assert [s.server_id for s in pair.inference.servers] == before
        assert pair.loaned_count == 0


class TestSharedEligibility:
    def test_peek_matches_move_under_custom_eligibility(self):
        """peek (plan) and loan (commit) must share one predicate: an
        eligibility override changes both or neither."""

        class PickyRM(ResourceManager):
            banned = "infer-0001"

            def loan_eligible(self, server):
                return (
                    super().loan_eligible(server)
                    and server.server_id != self.banned
                )

        pair = ClusterPair(make_training_cluster(2), make_inference_cluster(4))
        rm = PickyRM(pair)
        peeked = rm.peek_loanable(3)
        assert PickyRM.banned not in peeked
        moved = rm.loan_servers(3, now=0.0)
        assert [s.server_id for s in moved] == peeked

    def test_unhealthy_server_excluded_from_peek_and_move(self):
        pair = ClusterPair(make_training_cluster(2), make_inference_cluster(3))
        rm = ResourceManager(pair)
        first = pair.inference.servers[0].server_id
        rm.fail_node(first)
        peeked = rm.peek_loanable(3)
        assert first not in peeked
        moved = rm.loan_servers(3, now=0.0)
        assert [s.server_id for s in moved] == peeked


# ----------------------------------------------------------------------
# federation + contracts
# ----------------------------------------------------------------------
class TestFederation:
    def test_union_reads_and_no_insertion(self):
        pair = two_lender_set()
        union = pair.inference
        assert isinstance(union, FederatedCluster)
        assert len(union) == 6
        assert union.total_gpus == sum(
            m.total_gpus for m in pair.inference_members
        )
        assert "infer-r1-0002" in union
        with pytest.raises(TypeError, match="no insertion point"):
            union.add_server(union.get("infer-r1-0002"))

    def test_degenerate_set_uses_members_directly(self):
        pair = ClusterSet(
            training_regions=[make_training_cluster(2)],
            inference_clusters=[make_inference_cluster(2)],
        )
        assert not pair.market_active
        assert not isinstance(pair.inference, FederatedCluster)
        assert pair.inference.name == "inference"

    def test_home_cluster_of_unknown_region_raises(self):
        pair = two_lender_set()
        stray = make_inference_cluster(1, name="elsewhere").servers[0]
        with pytest.raises(KeyError, match="no member cluster"):
            pair.home_cluster_of(stray)


class TestContracts:
    def test_contract_lifecycle_and_penalties(self):
        terms = ContractTerms(min_duration=100.0, recall_penalty=2.5)
        pair = two_lender_set(terms=terms)
        pair.clock = 10.0
        pair.loan_ids(["infer-r0-0000", "infer-r1-0000"], borrower="train-r0")
        assert pair.contracts_opened == 2
        assert pair.outstanding_by_lender() == {
            "infer-r0": 1, "infer-r1": 1
        }
        contract = pair.contracts["infer-r0-0000"]
        assert contract.lender == "infer-r0"
        assert contract.borrower == "train-r0"
        assert not contract.mature(50.0)
        # early recall: penalty accrues
        pair.clock = 50.0
        pair.return_server("infer-r0-0000")
        assert pair.early_recalls == 1
        assert pair.penalties_accrued == pytest.approx(2.5)
        # mature recall: free
        pair.clock = 500.0
        pair.return_server("infer-r1-0000")
        assert pair.early_recalls == 1
        assert pair.recalls == 2
        assert not pair.contracts

    def test_transfer_costs(self):
        pair = two_lender_set(
            transfer_costs={("infer-r0", "train-r0"): 0.5},
            default_transfer_cost=3.0,
        )
        assert pair.transfer_cost("infer-r0", "train-r0") == 0.5
        assert pair.transfer_cost("infer-r1", "train-r0") == 3.0
        pair.loan_ids(["infer-r1-0000"], borrower="train-r0")
        assert pair.transfer_cost_paid == pytest.approx(3.0)

    def test_region_of_tracks_borrower(self):
        pair = two_lender_set()
        pair.loan_ids(["infer-r0-0000"], borrower="train-r0")
        loaned = pair.training.get("infer-r0-0000")
        assert pair.region_of(loaned) == "train-r0"
        dedicated = pair.training.servers[0]
        assert pair.region_of(dedicated) == "train-r0"


# ----------------------------------------------------------------------
# config parsing
# ----------------------------------------------------------------------
class TestMarketConfig:
    def test_spec_shapes_and_staggered_peaks(self):
        cfg = market_config_from_spec("3x2")
        assert cfg.shape == "3x2"
        peaks = [r.peak_hour for r in cfg.inference]
        assert peaks == [22.0, 14.0, 6.0]
        assert [r.name for r in cfg.training] == ["train-r0", "train-r1"]

    def test_bad_specs_rejected(self):
        for bad in ("", "2x", "x2", "0x1", "axb"):
            with pytest.raises(ValueError):
                market_config_from_spec(bad)
        with pytest.raises(ValueError, match="--clusters"):
            resolve_market("not-a-spec")

    def test_config_file_round_trip(self, tmp_path):
        path = tmp_path / "market.json"
        path.write_text(json.dumps({
            "inference": [
                {"name": "infer-eu", "servers": 2, "peak_hour": 20},
                {"name": "infer-us", "servers": 2, "peak_hour": 4},
            ],
            "training": [{"name": "train-eu", "servers": 2}],
            "transfer_costs": {"infer-us->train-eu": 2.0},
            "min_duration": 1800.0,
            "recall_penalty": 0.25,
        }))
        cfg = market_config_from_file(str(path))
        assert cfg.shape == "2x1"
        assert cfg.transfer_cost_map()[("infer-us", "train-eu")] == 2.0
        assert cfg.terms.min_duration == 1800.0
        assert resolve_market(str(path)) == cfg

    def test_build_splits_hardware_evenly(self):
        setup = default_setup(
            num_jobs=5, days=0.5, training_servers=5, inference_servers=7
        )
        built = build_market_setup(setup, market_config_from_spec("2x2"))
        pair = built.pair
        sizes = [len(m) for m in pair.inference_members]
        assert sizes == [4, 3]
        regions = pair.training_region_free_gpus()
        assert set(regions) == {"train-r0", "train-r1"}
        assert len(pair.training) == 5
        assert built.aggregate_trace.num_servers == 7
        assert set(built.lender_traces) == {"infer-r0", "infer-r1"}


# ----------------------------------------------------------------------
# broker clearing
# ----------------------------------------------------------------------
class TestBroker:
    def test_market_smoke_2x2(self):
        """A 2×2 market run loans across lenders, opens contracts, keeps
        the books clean, and completes the workload."""
        setup = default_setup(
            num_jobs=80, days=1.0, training_servers=12,
            inference_servers=16, seed=0,
        )
        sim = build_sim(setup, "lyra", market=market_config_from_spec("2x2"))
        metrics = sim.run()
        assert metrics.completion_ratio() > 0
        snapshot = sim.pair.market_snapshot()
        assert snapshot["contracts_opened"] > 0
        assert snapshot["lenders_used"], "no lender ever participated"
        sim.rm.verify_books()
        # every still-open contract matches an actually-loaned server
        for sid in sim.pair.contracts:
            assert sim.pair.training.get(sid).on_loan

    def test_degenerate_market_has_no_contract_machinery_cost(self):
        """A 1×1 market behaves as the plain pair (inert bookkeeping)."""
        setup = default_setup(
            num_jobs=30, days=0.5, training_servers=6, inference_servers=8
        )
        sim = build_sim(setup, "lyra", market=market_config_from_spec("1x1"))
        assert isinstance(sim.orchestrator, CapacityBroker)
        assert not sim.pair.market_active
        sim.run()
        sim.rm.verify_books()

    def test_split_want_is_front_loaded_and_exact(self):
        assert CapacityBroker._split_want(7, 3) == [3, 2, 2]
        assert CapacityBroker._split_want(2, 3) == [1, 1, 0]
        assert sum(CapacityBroker._split_want(11, 4)) == 11
        assert CapacityBroker._split_want(5, 0) == []


class TestRegionalOutage:
    def test_outage_targets_only_the_named_region(self):
        from repro.faults.plan import resolve_plan

        setup = default_setup(
            num_jobs=60, days=1.0, training_servers=10,
            inference_servers=12, seed=1,
        )
        sim = build_sim(
            setup, "lyra", market=market_config_from_spec("2x2"),
            sim_overrides={"fault_plan": resolve_plan("regional-outage")},
        )
        sim.run()
        assert sim.metrics.node_failures > 0
        failed = [
            record.detail[0] for record in sim.rm.audit
            if record.op == "fail_node"
        ]
        assert failed, "outage fired but no fail_node audit records"
        for server_id in failed:
            assert str(server_id).startswith("infer-r0"), (
                f"regional outage leaked outside infer-r0: {server_id}"
            )

    def test_region_with_no_servers_is_a_recorded_noop(self):
        from repro.faults.plan import FaultPlan, NodeOutage

        setup = default_setup(
            num_jobs=10, days=0.5, training_servers=4, inference_servers=4
        )
        plan = FaultPlan(
            name="ghost-region",
            outages=(NodeOutage(at=3600.0, servers=2, region="nowhere"),),
        )
        sim = build_sim(
            setup, "lyra", market=market_config_from_spec("2x2"),
            sim_overrides={"fault_plan": plan},
        )
        sim.run()  # must not raise
        assert sim.metrics.node_failures == 0


# ----------------------------------------------------------------------
# degenerate golden equivalence (the tentpole's safety rail)
# ----------------------------------------------------------------------
def degenerate_pair():
    return ClusterSet(
        training_regions=[make_training_cluster(6)],
        inference_clusters=[make_inference_cluster(8)],
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ["lyra_loaning", "lyra_elastic"])
def test_degenerate_market_matches_golden_logs(name, backend):
    """ClusterSet(1×1) + CapacityBroker ≡ ClusterPair + orchestrator,
    byte-for-byte against the committed golden fixture."""
    with GOLDEN_PATH.open() as fh:
        golden = json.load(fh)
    sim = run_scenario(
        name,
        backend=backend,
        pair_factory=degenerate_pair,
        orchestrator_factory=CapacityBroker,
    )
    assert digest(sim.activities) == golden[name]["sha256"], (
        f"degenerate 1x1 market drifted from the plain pair on "
        f"{name!r}/{backend!r}"
    )


# ----------------------------------------------------------------------
# property: every interleaving fully unwinds
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["loan", "loan_ids", "ret"]),
                          st.integers(0, 5)),
                max_size=24))
def test_any_interleaving_unwinds_cleanly(ops):
    """Any interleaving of loan / loan_ids / return_server over a
    multi-cluster set, fully unwound, restores every whitelist's exact
    membership, clears every on_loan flag, and leaves the RM books
    clean."""
    pair = two_lender_set()
    rm = ResourceManager(pair)
    original = {
        m.name: [s.server_id for s in m.servers]
        for m in pair.inference_members
    }
    original_training = [s.server_id for s in pair.training.servers]
    for op, arg in ops:
        if op == "loan":
            rm.loan_servers(arg % 3, now=float(arg))
        elif op == "loan_ids":
            ids = rm.peek_loanable(arg % 3)
            if ids:
                rm.loan_selected(ids, now=float(arg))
        else:  # return one on-loan server, if any
            loaned = pair.training.on_loan_servers
            if loaned:
                rm.return_server(loaned[arg % len(loaned)].server_id,
                                 now=float(arg))
        rm.verify_books()
    # unwind everything still out
    for server in list(pair.training.on_loan_servers):
        rm.return_server(server.server_id, now=999.0)
    rm.verify_books()
    assert [s.server_id for s in pair.training.servers] == original_training
    for member in pair.inference_members:
        assert sorted(s.server_id for s in member.servers) == sorted(
            original[member.name]
        )
        assert all(not s.on_loan for s in member.servers)
    assert pair.outstanding_by_lender() == {
        "infer-r0": 0, "infer-r1": 0
    }
