"""Tests for the elastic substrate: scaling models, controller, tuning."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elastic.controller import (
    ControllerState,
    ElasticController,
    ElasticControllerError,
)
from repro.elastic.throughput import (
    LINEAR,
    SUBLINEAR_20,
    ScalingModel,
    get_scaling_model,
)
from repro.elastic.tuning import (
    TrainingHyperparams,
    adascale_gain,
    adascale_lr,
    retune,
    scale_batch_for_workers,
    shrink_batch_for_memory,
    workers_for_global_batch,
)


class TestScalingModel:
    def test_linear_is_identity(self):
        for w in (1, 2, 8, 64):
            assert LINEAR.effective_workers(w) == w
            assert LINEAR.efficiency(w) == 1.0

    def test_sublinear_charges_added_workers(self):
        # §7.2: each added worker brings 20 % less throughput.
        assert SUBLINEAR_20.effective_workers(1) == 1.0
        assert SUBLINEAR_20.effective_workers(2) == pytest.approx(1.8)
        assert SUBLINEAR_20.effective_workers(6) == pytest.approx(5.0)

    def test_zero_and_one_fixed_points(self):
        model = ScalingModel("m", 0.37)
        assert model.effective_workers(0) == 0.0
        assert model.effective_workers(1) == 1.0

    def test_speedup(self):
        assert SUBLINEAR_20.speedup(6, 2) == pytest.approx(5.0 / 1.8)
        assert LINEAR.speedup(4, 0) == math.inf

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            ScalingModel("bad", 1.0)
        with pytest.raises(ValueError):
            ScalingModel("bad", -0.1)

    def test_negative_workers_raise(self):
        with pytest.raises(ValueError):
            LINEAR.effective_workers(-1)

    def test_registry(self):
        assert get_scaling_model("linear") is LINEAR
        assert get_scaling_model("sublinear20") is SUBLINEAR_20
        with pytest.raises(KeyError):
            get_scaling_model("quadratic")

    @given(
        loss=st.floats(0.0, 0.99),
        workers=st.integers(1, 256),
    )
    @settings(max_examples=100, deadline=None)
    def test_efficiency_bounded(self, loss, workers):
        model = ScalingModel("p", loss)
        eff = model.efficiency(workers)
        assert 0 < eff <= 1.0
        # effective workers monotone in worker count
        assert model.effective_workers(workers + 1) > model.effective_workers(
            workers
        )


class TestElasticController:
    def make(self, wmin=2, wmax=4):
        return ElasticController(job_id=1, min_workers=wmin, max_workers=wmax)

    def test_gang_start_semantics(self):
        ctrl = self.make()
        assert ctrl.state is ControllerState.WAITING
        ctrl.join("w0")
        assert ctrl.state is ControllerState.WAITING
        ctrl.join("w1")
        assert ctrl.state is ControllerState.RUNNING

    def test_flexible_join_after_start(self):
        ctrl = self.make()
        ctrl.join("w0")
        ctrl.join("w1")
        generation = ctrl.join("w2", flexible=True)
        assert ctrl.worker_count == 3
        assert generation == 3

    def test_base_join_after_start_rejected(self):
        ctrl = self.make()
        ctrl.join("w0")
        ctrl.join("w1")
        with pytest.raises(ElasticControllerError, match="gang"):
            ctrl.join("w2", flexible=False)

    def test_max_workers_enforced(self):
        ctrl = self.make(wmin=1, wmax=2)
        ctrl.join("w0")
        ctrl.join("w1", flexible=True)
        with pytest.raises(ElasticControllerError, match="max"):
            ctrl.join("w2", flexible=True)

    def test_flexible_leave(self):
        ctrl = self.make()
        ctrl.join("w0")
        ctrl.join("w1")
        ctrl.join("w2", flexible=True)
        ctrl.leave("w2")
        assert ctrl.worker_count == 2
        assert ctrl.state is ControllerState.RUNNING

    def test_base_leave_while_running_rejected(self):
        ctrl = self.make()
        ctrl.join("w0")
        ctrl.join("w1")
        with pytest.raises(ElasticControllerError, match="preempt"):
            ctrl.leave("w0")

    def test_duplicate_join_rejected(self):
        ctrl = self.make()
        ctrl.join("w0")
        with pytest.raises(ElasticControllerError, match="duplicate"):
            ctrl.join("w0")

    def test_unknown_leave_rejected(self):
        with pytest.raises(ElasticControllerError):
            self.make().leave("ghost")

    def test_generation_bumps_on_every_change(self):
        ctrl = self.make()
        g1 = ctrl.join("w0")
        g2 = ctrl.join("w1")
        g3 = ctrl.join("w2", flexible=True)
        g4 = ctrl.leave("w2")
        assert (g1, g2, g3, g4) == (1, 2, 3, 4)
        assert len(ctrl.history) == 4

    def test_stop_clears_membership(self):
        ctrl = self.make()
        ctrl.join("w0")
        ctrl.stop()
        assert ctrl.state is ControllerState.STOPPED
        assert ctrl.worker_count == 0
        with pytest.raises(ElasticControllerError):
            ctrl.join("w9")

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            ElasticController(job_id=1, min_workers=3, max_workers=2)


class TestTuning:
    def params(self):
        return TrainingHyperparams(
            local_batch_size=32, global_batch_size=64, learning_rate=0.1
        )

    def test_batch_scales_with_workers(self):
        scaled = scale_batch_for_workers(self.params(), 2, 4)
        assert scaled.global_batch_size == 128
        assert scaled.local_batch_size == 32

    def test_memory_shrink_preserves_global_batch(self):
        # §2.1: T4 has half the V100's memory -> halve the local batch,
        # double the workers, same global batch.
        shrunk = shrink_batch_for_memory(self.params(), 0.5)
        assert shrunk.local_batch_size == 16
        assert shrunk.global_batch_size == 64
        assert workers_for_global_batch(shrunk) == 4

    def test_memory_ratio_validation(self):
        with pytest.raises(ValueError):
            shrink_batch_for_memory(self.params(), 0.0)
        with pytest.raises(ValueError):
            shrink_batch_for_memory(self.params(), 1.5)

    def test_adascale_gain_bounds(self):
        # 1 <= r <= k for any gradient statistics.
        r = adascale_gain(4.0, grad_var=1.0, grad_sqnorm=1.0)
        assert 1.0 <= r <= 4.0

    def test_adascale_noise_dominated_is_linear(self):
        r = adascale_gain(8.0, grad_var=1e9, grad_sqnorm=1.0)
        assert r == pytest.approx(8.0, rel=1e-3)

    def test_adascale_bias_dominated_is_constant(self):
        r = adascale_gain(8.0, grad_var=1e-9, grad_sqnorm=1.0)
        assert r == pytest.approx(1.0, rel=1e-3)

    @given(
        k=st.floats(1.0, 64.0),
        var=st.floats(0.01, 100.0),
        sqn=st.floats(0.01, 100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_adascale_gain_always_in_range(self, k, var, sqn):
        r = adascale_gain(k, var, sqn)
        assert 1.0 - 1e-9 <= r <= k + 1e-9

    def test_adascale_lr(self):
        assert adascale_lr(0.1, 1.0) == pytest.approx(0.1)
        assert adascale_lr(0.1, 4.0, grad_var=1e9) == pytest.approx(0.4, rel=1e-3)

    def test_retune_round_trip(self):
        params = self.params()
        up = retune(params, 2, 4)
        down = retune(up, 4, 2)
        assert down.global_batch_size == params.global_batch_size
        assert down.learning_rate == pytest.approx(params.learning_rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingHyperparams(0, 64, 0.1)
        with pytest.raises(ValueError):
            TrainingHyperparams(32, 64, 0.0)
        with pytest.raises(ValueError):
            adascale_gain(0.5)
        with pytest.raises(ValueError):
            adascale_lr(-0.1, 2.0)
