"""Unit tests for GPU device models."""

import pytest

from repro.cluster.gpu import A100, GPUType, T4, V100, get_gpu_type


class TestGPUType:
    def test_v100_is_reference(self):
        assert V100.relative_compute == 1.0
        assert V100.memory_gb == 32

    def test_t4_is_one_third_of_v100(self):
        # §7.5: three loaned T4 servers ~ one V100 training server.
        assert T4.relative_compute == pytest.approx(1.0 / 3.0)

    def test_a100_faster_than_v100(self):
        assert A100.relative_compute > V100.relative_compute

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            GPUType(name="bad", memory_gb=0, relative_compute=1.0)

    def test_rejects_nonpositive_compute(self):
        with pytest.raises(ValueError):
            GPUType(name="bad", memory_gb=16, relative_compute=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            V100.memory_gb = 64  # type: ignore[misc]

    def test_hashable_for_dict_keys(self):
        assert len({V100: 1, T4: 2}) == 2


class TestBatchShrink:
    def test_t4_halves_v100_batch(self):
        # 16 GB T4 fits half of a 32 GB V100's local batch (§2.1).
        assert T4.batch_shrink_factor(V100) == pytest.approx(0.5)

    def test_never_grows_batch(self):
        assert V100.batch_shrink_factor(T4) == 1.0

    def test_same_gpu_is_identity(self):
        assert V100.batch_shrink_factor(V100) == 1.0


class TestRegistry:
    @pytest.mark.parametrize("name", ["V100", "T4", "A100"])
    def test_lookup(self, name):
        assert get_gpu_type(name).name == name

    def test_lookup_case_insensitive(self):
        assert get_gpu_type("v100") is V100

    def test_lookup_strips_vendor_prefix(self):
        assert get_gpu_type("Nvidia T4") is T4

    def test_unknown_raises_keyerror_with_choices(self):
        with pytest.raises(KeyError, match="V100"):
            get_gpu_type("H100")
