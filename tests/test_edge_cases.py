"""Edge-case tests for scheduler helpers, pools, and simulator limits."""

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec, JobStatus
from repro.core.allocation import MIXED, Pools, _deduct
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.lyra import LyraScheduler
from repro.simulator.simulation import Simulation, SimulationConfig

from tests.conftest import make_job


def make_sim(specs=(), training=2, inference=2, **cfg):
    pair = ClusterPair(
        make_training_cluster(training), make_inference_cluster(inference)
    )
    return Simulation(
        list(specs), pair, LyraScheduler(), config=SimulationConfig(**cfg)
    )


class TestPoolsDeduct:
    def test_mixed_drains_training_first(self):
        pools = Pools(training=4, onloan=30, onloan_cost=3.0)
        _deduct(pools, MIXED, 6)
        assert pools.training == 0
        assert pools.onloan == 24  # 2 normalized GPUs -> 6 physical

    def test_underflow_raises(self):
        pools = Pools(training=1, onloan=0)
        with pytest.raises(RuntimeError, match="underflow"):
            _deduct(pools, "training", 5)


class TestBaseHelpers:
    def test_free_pools_derives_onloan_cost(self):
        sim = make_sim()
        sim.pair.loan(1)
        pools = SchedulerPolicy.free_pools(sim)
        assert pools.onloan == 8
        assert pools.onloan_cost == pytest.approx(3.0)

    def test_free_pools_without_loans(self):
        sim = make_sim()
        pools = SchedulerPolicy.free_pools(sim)
        assert pools.onloan == 0
        assert pools.training == 16

    def test_credit_flex_splits_by_domain(self):
        sim = make_sim()
        sim.pair.loan(1)
        loaned = sim.pair.training.on_loan_servers[0]
        job = make_job(max_workers=8, min_workers=2, elastic=True,
                       fungible=True)
        job.record_placement("train-0000", 1, flexible=True, gpu_cost=1)
        job.record_placement(loaned.server_id, 1, flexible=True,
                             gpu_cost=3, on_loan=True)
        pools = Pools(training=0, onloan=0, onloan_cost=3.0)
        SchedulerPolicy.credit_flex(sim, pools, [job])
        assert pools.training == 1
        assert pools.onloan == 3

    def test_choose_flex_removals_prefers_training(self):
        sim = make_sim()
        sim.pair.loan(1)
        loaned = sim.pair.training.on_loan_servers[0]
        job = make_job(max_workers=8, min_workers=2, elastic=True,
                       fungible=True)
        job.record_placement("train-0000", 2, flexible=True, gpu_cost=1)
        job.record_placement(loaned.server_id, 2, flexible=True,
                             gpu_cost=3, on_loan=True)
        removals = SchedulerPolicy.choose_flex_removals(sim, job, 2)
        assert removals == {"train-0000": 2}

    def test_choose_flex_removals_spills_to_loaned(self):
        sim = make_sim()
        sim.pair.loan(1)
        loaned = sim.pair.training.on_loan_servers[0]
        job = make_job(max_workers=8, min_workers=2, elastic=True,
                       fungible=True)
        job.record_placement("train-0000", 1, flexible=True, gpu_cost=1)
        job.record_placement(loaned.server_id, 2, flexible=True,
                             gpu_cost=3, on_loan=True)
        removals = SchedulerPolicy.choose_flex_removals(sim, job, 3)
        assert removals["train-0000"] == 1
        assert removals[loaned.server_id] == 2


class TestSimulatorLimits:
    def test_drain_limit_cuts_off_unfinishable_work(self):
        # a job that can never run (needs loans that never come) must not
        # hang the run: the drain limit bounds it.
        spec = JobSpec(job_id=0, submit_time=0.0, duration=100.0,
                       max_workers=2, fungible=True)
        pair = ClusterPair(make_training_cluster(0),
                           make_inference_cluster(2))
        sim = Simulation(
            [spec], pair, FIFOScheduler(),
            config=SimulationConfig(drain_limit=1800.0),
        )
        metrics = sim.run()
        assert sim.now <= 1800.0 + 1e-6
        assert metrics.completion_ratio() == 0.0

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(scheduler_interval=0)
        with pytest.raises(ValueError):
            SimulationConfig(orchestrator_interval=-5)

    def test_trigger_coalescing(self):
        sim = make_sim()
        sim.trigger_schedule()
        before = sim.engine.pending_events
        sim.trigger_schedule()
        sim.trigger_schedule()
        assert sim.engine.pending_events == before  # coalesced

    def test_empty_trace_runs_cleanly(self):
        metrics = make_sim([]).run()
        assert metrics.submissions == 0
        assert metrics.jct_summary().count == 0

    def test_simultaneous_arrivals_all_served(self):
        specs = [
            JobSpec(job_id=i, submit_time=0.0, duration=50.0, max_workers=1)
            for i in range(16)
        ]
        sim = make_sim(specs)
        sim.run()
        assert all(
            j.status is JobStatus.FINISHED for j in sim.jobs.values()
        )

    def test_rescale_requires_progress_bank(self):
        # rescale() advances before retiming: a job scaled twice in one
        # instant must not double-count progress.
        spec = JobSpec(job_id=0, submit_time=0.0, duration=400.0,
                       max_workers=8, min_workers=2, elastic=True)
        sim = make_sim([spec], training=1)
        sim.run()
        job = sim.jobs[0]
        assert job.remaining_work <= 1e-3 * job.spec.total_work


class TestBenchUtilScale:
    def test_unknown_scale_rejected(self, monkeypatch):
        from benchmarks import bench_util

        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            bench_util.scale_name()

    def test_default_scale_small(self, monkeypatch):
        from benchmarks import bench_util

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_util.scale_name() == "small"
