"""Tests for the §3 job profiler and its simulator integration."""

import math

import pytest

from repro.cluster.job import JobSpec
from repro.profiler.profiler import JobProfiler
from repro.scenarios import default_setup, run_scheme
from repro.traces.workload import TraceConfig, generate_workload


def spec(job_id=0, duration=1000.0, workers=4, family="generic", **kw):
    return JobSpec(
        job_id=job_id, submit_time=0.0, duration=duration,
        max_workers=workers, model_family=family, **kw,
    )


class TestProfilerLearning:
    def test_cold_start_falls_back_to_prior(self):
        profiler = JobProfiler()
        estimate = profiler.predict(spec())
        assert 60.0 < estimate < 86400.0  # the prior, not garbage

    def test_learns_family_mean(self):
        profiler = JobProfiler()
        for i in range(30):
            profiler.observe(spec(job_id=i, duration=600.0), 600.0)
        assert profiler.predict(spec(duration=600.0)) == pytest.approx(
            600.0, rel=0.35
        )

    def test_distinguishes_families(self):
        profiler = JobProfiler()
        for i in range(40):
            profiler.observe(
                spec(job_id=i, duration=300.0, family="generic"), 300.0
            )
            profiler.observe(
                spec(job_id=i, duration=30000.0, family="resnet",
                     workers=8, min_workers=4, elastic=True,
                     gpus_per_worker=2),
                30000.0,
            )
        short = profiler.predict(spec(family="generic", duration=300.0))
        long = profiler.predict(
            spec(family="resnet", duration=30000.0, workers=8,
                 min_workers=4, elastic=True, gpus_per_worker=2)
        )
        assert long > short * 5

    def test_regression_uses_job_shape(self):
        # Within one family, duration scales with worker count; the
        # ridge term should pick the trend up.
        profiler = JobProfiler(refit_every=8)
        for i in range(64):
            workers = 1 + (i % 8)
            profiler.observe(
                spec(job_id=i, duration=200.0 * workers, workers=workers),
                200.0 * workers,
            )
        small = profiler.predict(spec(workers=1, duration=200.0))
        big = profiler.predict(spec(workers=8, duration=1600.0))
        assert big > small

    def test_estimate_error_definition(self):
        profiler = JobProfiler()
        for i in range(20):
            profiler.observe(spec(job_id=i, duration=1000.0), 1000.0)
        target = spec(duration=500.0)
        assert profiler.estimate_error(target) == pytest.approx(
            profiler.predict(target) / 500.0
        )

    def test_error_improves_with_data(self):
        config = TraceConfig(num_jobs=400, days=2.0, cluster_gpus=256,
                             seed=31)
        specs = generate_workload(config).specs
        profiler = JobProfiler()
        cold = profiler.mean_absolute_log_error(specs[200:])
        for s in specs[:200]:
            profiler.observe(s, s.duration)
        warm = profiler.mean_absolute_log_error(specs[200:])
        assert warm < cold

    def test_validation(self):
        with pytest.raises(ValueError):
            JobProfiler(ridge=0.0)
        with pytest.raises(ValueError):
            JobProfiler(refit_every=0)
        with pytest.raises(ValueError):
            JobProfiler().observe(spec(), 0.0)


class TestSimulatorIntegration:
    def test_profiled_run_completes_and_stays_competitive(self):
        setup = default_setup(num_jobs=250, days=1.0, training_servers=12,
                              inference_servers=14, seed=29,
                              target_load=1.0)
        oracle = run_scheme(setup, "lyra_scaling")
        profiled = run_scheme(
            setup, "lyra_scaling",
            sim_overrides={"use_profiler": True},
        )
        baseline = run_scheme(setup, "baseline")
        assert profiled.completion_ratio() == 1.0
        # Table 9's robustness story, organically: profiler-driven
        # estimates keep most of the oracle's gain over the Baseline.
        assert (
            profiled.queuing_summary().mean
            < baseline.queuing_summary().mean
        )
        assert (
            profiled.jct_summary().mean
            <= oracle.jct_summary().mean * 1.25
        )

    def test_estimates_visible_to_scheduler(self):
        from repro.cluster.cluster import (
            ClusterPair, make_inference_cluster, make_training_cluster,
        )
        from repro.schedulers.lyra import LyraScheduler
        from repro.simulator.simulation import Simulation, SimulationConfig

        specs = [
            JobSpec(job_id=i, submit_time=i * 100.0, duration=500.0,
                    max_workers=2)
            for i in range(10)
        ]
        pair = ClusterPair(make_training_cluster(2),
                           make_inference_cluster(2))
        sim = Simulation(
            specs, pair, LyraScheduler(),
            config=SimulationConfig(use_profiler=True),
        )
        sim.run()
        assert sim.profiler is not None
        assert sim.profiler.observations == 10
        # later arrivals carried non-oracle estimates
        errors = [sim.jobs[i].estimate_error for i in range(10)]
        assert any(not math.isclose(e, 1.0) for e in errors)
