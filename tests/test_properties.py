"""Property-based tests over the core data structures and invariants.

Hypothesis drives randomized placements, allocations and mini-simulations
and checks the invariants every component must preserve regardless of
input shape: no server over-allocation, worker-count conservation,
knapsack feasibility, reclaim-plan consistency, and work conservation in
the simulator.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import Job, JobSpec
from repro.core.allocation import Pools, allocate_two_phase
from repro.core.placement import PlacementEngine, PlacementRequest
from repro.core.reclaim import plan_reclaim_lyra
from repro.core.view import ClusterView
from repro.rm.manager import ResourceManager
from repro.schedulers.lyra import LyraScheduler
from repro.simulator.simulation import Simulation, SimulationConfig


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def job_specs(draw, max_jobs=8):
    """A small batch of mixed elastic/inelastic job specs."""
    count = draw(st.integers(1, max_jobs))
    specs = []
    for job_id in range(count):
        elastic = draw(st.booleans())
        gpw = draw(st.sampled_from([1, 2]))
        wmin = draw(st.integers(1, 4))
        wmax = wmin + draw(st.integers(1, 4)) if elastic else wmin
        specs.append(
            JobSpec(
                job_id=job_id,
                submit_time=float(draw(st.integers(0, 600))),
                duration=float(draw(st.integers(60, 4000))),
                max_workers=wmax,
                min_workers=wmin,
                gpus_per_worker=gpw,
                elastic=elastic,
                fungible=draw(st.booleans()),
            )
        )
    return specs


# ----------------------------------------------------------------------
# placement invariants
# ----------------------------------------------------------------------
class TestPlacementProperties:
    @given(specs=job_specs())
    @settings(max_examples=60, deadline=None)
    def test_never_overallocates_and_books_consistently(self, specs):
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(2))
        pair.loan(2)
        engine = PlacementEngine(pair.training)
        jobs = [Job(s) for s in specs]
        requests = [
            PlacementRequest(
                job,
                base_workers=job.spec.min_workers,
                flex_workers=job.spec.max_workers - job.spec.min_workers,
            )
            for job in jobs
        ]
        result = engine.place(requests)
        for server in pair.training.servers:
            assert 0 <= server.used_gpus <= server.num_gpus
        placed_ids = {j.job_id for j in result.placed_base}
        failed_ids = {j.job_id for j in result.failed_base}
        assert placed_ids.isdisjoint(failed_ids)
        for job in jobs:
            if job.job_id in failed_ids:
                assert job.total_workers == 0
            elif job.job_id in placed_ids:
                assert job.base_workers == job.spec.min_workers
                # server-side and job-side GPU books agree
                for server in pair.training.servers:
                    booked = server.allocations.get(job.job_id, 0)
                    assert booked == job.gpus_on(server.server_id)

    @given(specs=job_specs())
    @settings(max_examples=40, deadline=None)
    def test_type_homogeneity_preserved(self, specs):
        pair = ClusterPair(make_training_cluster(2), make_inference_cluster(2))
        pair.loan(2)
        engine = PlacementEngine(pair.training)
        for spec in specs:
            job = Job(spec)
            engine.place(
                [
                    PlacementRequest(
                        job,
                        base_workers=spec.min_workers,
                        flex_workers=spec.max_workers - spec.min_workers,
                    )
                ]
            )
            if not spec.heterogeneous:
                types = {
                    pair.training.get(sid).gpu_type.name
                    for sid in job.servers
                    if sid in pair.training
                }
                assert len(types) <= 1


# ----------------------------------------------------------------------
# allocation invariants
# ----------------------------------------------------------------------
class TestAllocationProperties:
    @given(
        specs=job_specs(),
        training=st.integers(0, 48),
        onloan=st.integers(0, 48),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_allocates_beyond_capacity(self, specs, training, onloan):
        jobs = [Job(s) for s in specs]
        pools = Pools(training=training, onloan=onloan, onloan_cost=3.0)
        capacity = pools.total
        decision = allocate_two_phase(jobs, [], pools)
        granted = sum(
            job.spec.base_gpus for job, _ in decision.scheduled
        ) + sum(
            extra * j.spec.gpus_per_worker
            for j in jobs
            if j.elastic
            for extra in [decision.flex.get(j.job_id, 0)]
        )
        assert granted <= capacity
        # every job is either scheduled or skipped, never both
        scheduled_ids = {j.job_id for j, _ in decision.scheduled}
        skipped_ids = {j.job_id for j in decision.skipped}
        assert scheduled_ids.isdisjoint(skipped_ids)
        assert scheduled_ids | skipped_ids == {j.job_id for j in jobs}

    @given(specs=job_specs())
    @settings(max_examples=40, deadline=None)
    def test_flex_within_scaling_range(self, specs):
        jobs = [Job(s) for s in specs]
        decision = allocate_two_phase(jobs, [], Pools(training=64))
        for job in jobs:
            extra = decision.flex.get(job.job_id, 0)
            assert 0 <= extra <= job.spec.max_workers - job.spec.min_workers


# ----------------------------------------------------------------------
# reclaim invariants
# ----------------------------------------------------------------------
class TestReclaimProperties:
    @given(specs=job_specs(max_jobs=6), count=st.integers(0, 4))
    @settings(max_examples=50, deadline=None)
    def test_plan_consistency(self, specs, count):
        pair = ClusterPair(make_training_cluster(0), make_inference_cluster(4))
        pair.loan(4)
        engine = PlacementEngine(pair.training)
        jobs = {}
        for spec in specs:
            job = Job(spec)
            jobs[job.job_id] = job
            if spec.fungible:
                engine.place(
                    [
                        PlacementRequest(
                            job,
                            base_workers=spec.min_workers,
                            flex_workers=spec.max_workers - spec.min_workers,
                        )
                    ]
                )
        plan = plan_reclaim_lyra(pair.training.on_loan_servers, jobs, count)
        # no duplicate servers, count honoured
        assert len(plan.servers) == len(set(plan.servers))
        assert len(plan.servers) <= max(count, 0) or count < 0
        # scaled-in jobs are never also preempted
        assert set(plan.scaled_in).isdisjoint(plan.preempted_jobs)
        # every preempted job had base workers on some selected server
        for job_id in plan.preempted_jobs:
            assert set(jobs[job_id].base_placement) & set(plan.servers)


# ----------------------------------------------------------------------
# resource-manager interleavings
# ----------------------------------------------------------------------
class TestResourceManagerInterleavings:
    """Seeded random interleavings of every RM mutation keep the books.

    The ledger invariant (`verify_books`) must hold after *every*
    operation — including rejected ones, which must leave no partial
    state behind.  This is the fault-injection substrate's contract:
    failures and recoveries can land at any point between loans,
    launches and scale-ins.
    """

    OPS = ("launch", "scale_in", "release", "loan", "return",
           "fail", "recover")

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_interleavings_keep_books(self, seed):
        rng = random.Random(seed)
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(3))
        rm = ResourceManager(pair)
        jobs = {
            i: Job(JobSpec(
                job_id=i, submit_time=0.0, duration=1000.0,
                max_workers=6, min_workers=1, gpus_per_worker=1,
                elastic=True, fungible=True,
            ))
            for i in range(4)
        }
        now = 0.0
        for _ in range(50):
            now += 1.0
            op = rng.choice(self.OPS)
            job = jobs[rng.randrange(len(jobs))]
            all_servers = (
                pair.training.servers + pair.inference.servers
            )
            server = rng.choice(all_servers)
            try:
                if op == "launch":
                    rm.launch(
                        job, server, rng.randint(1, 2), 1,
                        flexible=rng.random() < 0.5, now=now,
                    )
                elif op == "scale_in":
                    rm.scale_in(job, server.server_id, rng.randint(1, 3),
                                now=now)
                elif op == "release":
                    rm.release_job(job, now=now)
                elif op == "loan":
                    rm.loan_servers(rng.randint(1, 2), now=now)
                elif op == "return":
                    rm.return_server(server.server_id, now=now)
                elif op == "fail":
                    report = rm.fail_node(server.server_id, now=now)
                    # gang semantics: jobs that lost base workers are
                    # torn down entirely, like the simulator does
                    for job_id in report.jobs_lost_base:
                        rm.release_job(jobs[job_id], now=now)
                        jobs[job_id].clear_placement()
                elif op == "recover":
                    rm.recover_node(server.server_id, now=now)
            except (ValueError, RuntimeError, KeyError):
                pass  # invalid op rejected — must be atomic
            rm.verify_books()
        # cleanup still balances: releasing every job empties the books
        for job in jobs.values():
            rm.release_job(job, now=now)
        rm.verify_books()
        assert not rm.running_containers()


# ----------------------------------------------------------------------
# incremental-view invariants
# ----------------------------------------------------------------------
class TestClusterViewProperties:
    """Random mutation interleavings keep the ClusterView delta-exact.

    The view's contract: after *every* delta it must equal a from-scratch
    rebuild of its indexes — free-capacity buckets, pool totals, on-loan
    type counts, the reclaim candidate set and the derived on-loan cost.
    The op mix covers every mutation source: RM-mediated launches,
    scale-ins and releases, capacity loans/returns, node failures and
    recoveries, and direct server-book edits (the placement engine path).
    """

    OPS = ("launch", "scale_in", "release", "loan", "return",
           "fail", "recover", "direct_alloc", "direct_release")

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_view_equals_rebuild_after_every_delta(self, seed):
        rng = random.Random(seed)
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(3))
        view = ClusterView(pair.training)
        rm = ResourceManager(pair)
        jobs = {
            i: Job(JobSpec(
                job_id=i, submit_time=0.0, duration=1000.0,
                max_workers=6, min_workers=1, gpus_per_worker=1,
                elastic=True, fungible=True,
            ))
            for i in range(4)
        }
        view.jobs = jobs
        now = 0.0
        for _ in range(50):
            now += 1.0
            op = rng.choice(self.OPS)
            job = jobs[rng.randrange(len(jobs))]
            all_servers = (
                pair.training.servers + pair.inference.servers
            )
            server = rng.choice(all_servers)
            try:
                if op == "launch":
                    rm.launch(
                        job, server, rng.randint(1, 2), 1,
                        flexible=rng.random() < 0.5, now=now,
                    )
                elif op == "scale_in":
                    rm.scale_in(job, server.server_id, rng.randint(1, 3),
                                now=now)
                elif op == "release":
                    rm.release_job(job, now=now)
                elif op == "loan":
                    rm.loan_servers(rng.randint(1, 2), now=now)
                elif op == "return":
                    rm.return_server(server.server_id, now=now)
                elif op == "fail":
                    report = rm.fail_node(server.server_id, now=now)
                    for job_id in report.jobs_lost_base:
                        rm.release_job(jobs[job_id], now=now)
                        jobs[job_id].clear_placement()
                elif op == "recover":
                    rm.recover_node(server.server_id, now=now)
                elif op == "direct_alloc":
                    server.allocate(job.job_id, rng.randint(1, 2))
                elif op == "direct_release":
                    server.release(job.job_id)
            except (ValueError, RuntimeError, KeyError):
                pass  # invalid op rejected — must leave the view intact
            view.assert_consistent()
        # the cached derived queries agree with scratch computation too
        rebuilt = ClusterView(
            pair.training, jobs=jobs, attach=False,
            default_onloan_cost=view.default_onloan_cost,
        )
        assert view.pools() == rebuilt.pools()
        assert view.reclaim_cost_index() == rebuilt.reclaim_cost_index()


# ----------------------------------------------------------------------
# simulator invariants
# ----------------------------------------------------------------------
class TestSimulationProperties:
    @given(specs=job_specs(max_jobs=6))
    @settings(max_examples=25, deadline=None)
    def test_work_conservation_and_drain(self, specs):
        pair = ClusterPair(make_training_cluster(3), make_inference_cluster(2))
        sim = Simulation(
            specs, pair, LyraScheduler(), config=SimulationConfig()
        )
        sim.run()
        for job in sim.jobs.values():
            assert job.finish_time is not None
            # no preemptions possible without loaning: JCT covers at
            # least the ideal running time
            assert job.preemptions == 0
            ideal = job.spec.total_work / (
                job.spec.max_workers * job.spec.gpus_per_worker
            )
            assert job.jct >= ideal * 0.999
            assert job.remaining_work <= 1e-3 * job.spec.total_work
        assert pair.training.used_gpus == 0

    @given(specs=job_specs(max_jobs=5), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, specs, seed):
        def run_once():
            pair = ClusterPair(
                make_training_cluster(2), make_inference_cluster(2)
            )
            sim = Simulation(
                specs, pair, LyraScheduler(),
                config=SimulationConfig(),
            )
            sim.run()
            return [
                (j.job_id, j.first_start_time, j.finish_time)
                for j in sim.jobs.values()
            ]

        assert run_once() == run_once()
