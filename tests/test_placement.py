"""Tests for BFD worker placement (§5.3)."""

from repro.cluster.cluster import (
    Cluster,
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.gpu import T4, V100
from repro.cluster.server import BASE_GROUP, FLEX_GROUP, Server
from repro.core.placement import PlacementEngine, PlacementRequest

from tests.conftest import make_job


def loaned_cluster(training=2, loaned=2) -> Cluster:
    """A training whitelist holding dedicated + on-loan servers."""
    pair = ClusterPair(
        make_training_cluster(training), make_inference_cluster(loaned)
    )
    pair.loan(loaned)
    return pair.training


class TestWorkerCost:
    def test_training_server_charges_nominal(self):
        server = Server(server_id="t", gpu_type=V100)
        job = make_job(gpus_per_worker=2)
        assert PlacementEngine.worker_cost(job, server) == 2

    def test_t4_server_charges_triple(self):
        # §5.2 normalization: 1 nominal GPU -> 3 T4 GPUs.
        server = Server(server_id="i", gpu_type=T4, home_cluster="inference")
        job = make_job(gpus_per_worker=1)
        assert PlacementEngine.worker_cost(job, server) == 3


class TestBasicPlacement:
    def test_single_job_placed_and_started(self):
        cluster = make_training_cluster(2)
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=4)
        result = engine.place([PlacementRequest(job, base_workers=4)])
        assert result.placed_base == [job]
        assert job.total_workers == 4
        assert cluster.used_gpus == 4

    def test_best_fit_prefers_partially_used_server(self):
        cluster = make_training_cluster(3)
        cluster.servers[1].allocate(99, 6)  # 2 GPUs free
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=2)
        engine.place([PlacementRequest(job, base_workers=2)])
        assert job.servers == {cluster.servers[1].server_id}

    def test_bfd_orders_big_jobs_first(self):
        cluster = make_training_cluster(1)  # single 8-GPU server
        engine = PlacementEngine(cluster)
        small = make_job(job_id=1, max_workers=2, gpus_per_worker=1)
        big = make_job(job_id=2, max_workers=1, gpus_per_worker=8)
        result = engine.place(
            [
                PlacementRequest(small, base_workers=2),
                PlacementRequest(big, base_workers=1),
            ]
        )
        # Big (8 GPUs/worker) goes first and fills the server; the small
        # job fails rather than fragmenting the big one.
        assert big in result.placed_base
        assert small in result.failed_base

    def test_failed_base_rolled_back(self):
        cluster = make_training_cluster(1)
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=3, gpus_per_worker=4)  # needs 12 > 8
        result = engine.place([PlacementRequest(job, base_workers=3)])
        assert result.failed_base == [job]
        assert job.total_workers == 0
        assert cluster.used_gpus == 0

    def test_flex_shortfall_tolerated(self):
        cluster = make_training_cluster(1)
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=12, min_workers=4, elastic=True)
        result = engine.place(
            [PlacementRequest(job, base_workers=4, flex_workers=8)]
        )
        assert result.placed_base == [job]
        assert result.flex_shortfall[job.job_id] == 4
        assert job.flex_workers == 4

    def test_worker_never_splits_across_servers(self):
        cluster = make_training_cluster(2)
        cluster.servers[0].allocate(99, 5)
        cluster.servers[1].allocate(98, 5)
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=1, gpus_per_worker=4)
        result = engine.place([PlacementRequest(job, base_workers=1)])
        assert result.failed_base == [job]  # 3+3 free but not 4 anywhere


class TestDomainPreferences:
    def test_inelastic_prefers_training(self):
        cluster = loaned_cluster()
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=2, fungible=True)
        engine.place([PlacementRequest(job, base_workers=2)])
        assert all(not cluster.get(s).on_loan for s in job.servers)

    def test_elastic_fungible_prefers_onloan(self):
        cluster = loaned_cluster()
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=4, min_workers=2, elastic=True,
                       fungible=True)
        engine.place([PlacementRequest(job, base_workers=2)])
        assert all(cluster.get(s).on_loan for s in job.servers)

    def test_nonfungible_never_on_loan(self):
        cluster = loaned_cluster(training=0, loaned=2)
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=2)
        result = engine.place([PlacementRequest(job, base_workers=2)])
        assert result.failed_base == [job]

    def test_base_and_flex_on_separate_groups(self):
        # §5.3: elastic base and flexible demand land on separate groups
        # of on-loan servers so reclaiming can vacate flex first.
        cluster = loaned_cluster(training=0, loaned=2)
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=4, min_workers=2, elastic=True,
                       fungible=True)
        engine.place([PlacementRequest(job, base_workers=2, flex_workers=2)])
        base_servers = {cluster.get(s).group for s in job.base_placement}
        flex_servers = {cluster.get(s).group for s in job.flex_placement}
        assert base_servers == {BASE_GROUP}
        assert flex_servers == {FLEX_GROUP}

    def test_grouping_disabled_in_ablation(self):
        cluster = loaned_cluster(training=0, loaned=2)
        engine = PlacementEngine(cluster, special_elastic_grouping=False)
        job = make_job(max_workers=4, min_workers=2, elastic=True,
                       fungible=True)
        engine.place([PlacementRequest(job, base_workers=2, flex_workers=2)])
        groups = {cluster.get(s).group for s in job.servers}
        assert groups == {None}

    def test_gpu_type_lock_keeps_job_homogeneous(self):
        cluster = loaned_cluster(training=1, loaned=2)
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=8, min_workers=2, elastic=True,
                       fungible=True)
        # Base lands on loan (T4); flexible workers must stay on T4 too.
        engine.place([PlacementRequest(job, base_workers=2, flex_workers=4)])
        types = {cluster.get(s).gpu_type.name for s in job.servers}
        assert types == {"T4"}

    def test_heterogeneous_job_may_span_types(self):
        cluster = loaned_cluster(training=1, loaned=1)
        engine = PlacementEngine(cluster)
        job = make_job(max_workers=8, min_workers=4, elastic=True,
                       heterogeneous=True, fungible=True)
        engine.place([PlacementRequest(job, base_workers=4, flex_workers=4)])
        types = {cluster.get(s).gpu_type.name for s in job.servers}
        assert len(types) == 2
        # base prefers training hardware, flexible prefers inference (§6)
        assert any(
            not cluster.get(s).on_loan for s in job.base_placement
        )
        assert any(cluster.get(s).on_loan for s in job.flex_placement)

    def test_mixed_placement_jobs_scheduled_last(self):
        # A heterogeneous job whose demand fits neither GPU domain alone
        # (5 workers x 2 GPUs vs 8 training GPUs + 1 loaned T4 slot) is
        # deprioritized (§6): the normal job wins the contended training
        # GPUs even though the hetero job has the larger total demand.
        cluster = loaned_cluster(training=1, loaned=1)
        engine = PlacementEngine(cluster)
        hetero = make_job(job_id=1, max_workers=5, gpus_per_worker=2,
                          heterogeneous=True)
        normal = make_job(job_id=2, max_workers=1, gpus_per_worker=2)
        result = engine.place(
            [
                PlacementRequest(hetero, base_workers=5),
                PlacementRequest(normal, base_workers=1),
            ]
        )
        assert normal in result.placed_base
        assert hetero in result.failed_base

    def test_hetero_capable_job_fitting_one_domain_not_deprioritized(self):
        cluster = make_training_cluster(1)
        engine = PlacementEngine(cluster)
        hetero = make_job(job_id=1, max_workers=1, gpus_per_worker=8,
                          heterogeneous=True)
        normal = make_job(job_id=2, max_workers=1, gpus_per_worker=4)
        result = engine.place(
            [
                PlacementRequest(hetero, base_workers=1),
                PlacementRequest(normal, base_workers=1),
            ]
        )
        # Both fit the training domain in principle; plain BFD order
        # applies and the bigger per-worker job goes first.
        assert hetero in result.placed_base
        assert normal in result.failed_base


class TestOpportunisticMode:
    def test_fungible_restricted_to_onloan(self):
        cluster = loaned_cluster(training=2, loaned=0)
        engine = PlacementEngine(cluster, opportunistic=True)
        job = make_job(max_workers=2, fungible=True)
        result = engine.place([PlacementRequest(job, base_workers=2)])
        assert result.failed_base == [job]

    def test_nonfungible_unaffected(self):
        cluster = loaned_cluster(training=2, loaned=0)
        engine = PlacementEngine(cluster, opportunistic=True)
        job = make_job(max_workers=2)
        result = engine.place([PlacementRequest(job, base_workers=2)])
        assert result.placed_base == [job]
