"""Tests for the repro.faults fault-injection subsystem."""

import json
import subprocess
import sys

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec, JobStatus
from repro.faults import (
    DegradedLoaning,
    FaultPlan,
    FlashCrowd,
    InvariantViolation,
    LaunchFailures,
    NodeFailureProcess,
    NodeOutage,
    PredictorOutage,
    RetryPolicy,
    Straggler,
    builtin_plan,
    resilience_snapshot,
    resolve_plan,
    verify_scheduler_invariants,
)
from repro.scenarios import default_setup, run_scheme
from repro.schedulers.lyra import LyraScheduler
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.traces.inference import InferenceTrace


def pair(training=3, inference=2):
    return ClusterPair(
        make_training_cluster(training), make_inference_cluster(inference)
    )


def spec(job_id=0, submit=0.0, duration=1000.0, workers=2, **kw):
    return JobSpec(
        job_id=job_id, submit_time=submit, duration=duration,
        max_workers=workers, **kw,
    )


def run(specs, plan, p=None, **kw):
    sim = Simulation(
        specs, p or pair(), LyraScheduler(),
        config=SimulationConfig(fault_plan=plan), **kw,
    )
    metrics = sim.run()
    return sim, metrics


def small_setup(seed=0):
    return default_setup(
        num_jobs=50, days=0.5, training_servers=6, inference_servers=8,
        seed=seed,
    )


# ----------------------------------------------------------------------
# plan spec
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_round_trip_every_builtin(self):
        for name in ("none", "node-churn", "rack-outage", "flash-crowd",
                     "stragglers", "chaos"):
            plan = builtin_plan(name)
            assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"name": "x", "mtbf": 100.0})

    def test_field_validation(self):
        with pytest.raises(ValueError, match="mtbf"):
            NodeFailureProcess(mtbf=-1.0)
        with pytest.raises(ValueError, match="correlated"):
            NodeFailureProcess(mtbf=100.0, correlated=0)
        with pytest.raises(ValueError, match="factor"):
            Straggler(at=0.0, duration=10.0, factor=1.5)
        with pytest.raises(ValueError, match="magnitude"):
            FlashCrowd(at=0.0, duration=10.0, magnitude=0.0)
        with pytest.raises(ValueError, match="probability"):
            LaunchFailures(probability=2.0)

    def test_is_empty(self):
        assert builtin_plan("none").is_empty()
        assert not builtin_plan("chaos").is_empty()
        # retry/degraded policies alone do not make a plan non-empty
        assert FaultPlan(retry=RetryPolicy(max_attempts=9),
                         degraded=DegradedLoaning(headroom=0.5)).is_empty()

    def test_from_file_json(self, tmp_path):
        plan = builtin_plan("rack-outage")
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_file(str(path)) == plan

    def test_from_file_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        plan = builtin_plan("stragglers")
        path = tmp_path / "plan.yaml"
        path.write_text(yaml.safe_dump(plan.to_dict()))
        assert FaultPlan.from_file(str(path)) == plan

    def test_resolve_plan(self, tmp_path):
        assert resolve_plan("chaos") is builtin_plan("chaos")
        path = tmp_path / "p.json"
        path.write_text(json.dumps(builtin_plan("none").to_dict()))
        assert resolve_plan(str(path)) == builtin_plan("none")
        with pytest.raises(ValueError, match="neither"):
            resolve_plan("not-a-plan")
        with pytest.raises(KeyError, match="unknown builtin"):
            builtin_plan("not-a-plan")

    def test_with_seed_and_legacy(self):
        plan = builtin_plan("chaos").with_seed(42)
        assert plan.seed == 42
        assert builtin_plan("chaos").seed == 0  # original untouched
        legacy = FaultPlan.from_legacy(7200.0, repair_time=600.0, seed=3)
        assert legacy.process.mtbf == 7200.0
        assert legacy.process.repair_time == 600.0
        assert legacy.seed == 3
        assert not legacy.is_empty()


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(base_delay=5.0, factor=2.0, max_delay=15.0,
                             jitter=0.0)

        class FixedRng:
            @staticmethod
            def random():
                return 0.5

        assert policy.delay(0, FixedRng) == 5.0
        assert policy.delay(1, FixedRng) == 10.0
        assert policy.delay(2, FixedRng) == 15.0  # capped
        assert policy.delay(5, FixedRng) == 15.0

    def test_jitter_bounded(self):
        import random

        policy = RetryPolicy(base_delay=10.0, factor=1.0, max_delay=10.0,
                             jitter=0.1)
        rng = random.Random(0)
        for attempt in range(50):
            delay = policy.delay(0, rng)
            assert 9.0 <= delay <= 11.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ----------------------------------------------------------------------
# zero-cost-when-off
# ----------------------------------------------------------------------
class TestZeroCost:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        specs = [spec(job_id=i, submit=i * 100.0) for i in range(6)]
        sim_a, m_a = run(specs, builtin_plan("none"))
        sim_b = Simulation(
            [spec(job_id=i, submit=i * 100.0) for i in range(6)],
            pair(), LyraScheduler(), config=SimulationConfig(),
        )
        m_b = sim_b.run()
        assert [(j.job_id, j.jct) for j in m_a.jobs] == [
            (j.job_id, j.jct) for j in m_b.jobs
        ]
        assert json.dumps(m_a.registry.snapshot(), sort_keys=True) == (
            json.dumps(m_b.registry.snapshot(), sort_keys=True)
        )

    def test_fault_free_run_never_imports_faults(self):
        code = (
            "import sys\n"
            "from repro.scenarios import default_setup, run_scheme\n"
            "setup = default_setup(num_jobs=10, days=0.2,"
            " training_servers=4, inference_servers=4, seed=0)\n"
            "run_scheme(setup, 'lyra')\n"
            "loaded = [m for m in sys.modules"
            " if m.startswith('repro.faults')]\n"
            "assert not loaded, loaded\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)


# ----------------------------------------------------------------------
# injector behavior
# ----------------------------------------------------------------------
class TestInjector:
    def test_outage_kills_exactly_the_block(self):
        plan = FaultPlan(
            name="t", outages=(NodeOutage(at=200.0, servers=2,
                                          repair_time=300.0),),
        )
        specs = [spec(job_id=i, submit=0.0, duration=2000.0, workers=4)
                 for i in range(3)]
        sim, metrics = run(specs, plan, p=pair(training=4))
        assert metrics.node_failures == 2
        sim.rm.verify_books()
        assert all(j.status is JobStatus.FINISHED for j in sim.jobs.values())

    def test_straggler_stretches_the_job(self):
        # One server, one job, straggler window covering the whole run
        # at factor 0.5: the job takes ~2x its ideal duration.
        plan = FaultPlan(
            name="t",
            stragglers=(Straggler(at=0.0, duration=10000.0, factor=0.5),),
        )
        sim, _ = run([spec(duration=1000.0)], plan, p=pair(training=1))
        job = sim.jobs[0]
        assert job.status is JobStatus.FINISHED
        assert job.jct == pytest.approx(2000.0, rel=0.05)

    def test_straggler_window_end_restores_full_speed(self):
        # Window covers the first 500 s at factor 0.5: 250 s of work done
        # slow, 750 s at full speed -> ~1250 s total.
        plan = FaultPlan(
            name="t",
            stragglers=(Straggler(at=0.0, duration=500.0, factor=0.5),),
        )
        sim, _ = run([spec(duration=1000.0)], plan, p=pair(training=1))
        assert sim.jobs[0].jct == pytest.approx(1250.0, rel=0.05)

    def test_with_spikes_overlay(self):
        trace = InferenceTrace(utilization=[0.5] * 12, num_servers=10)
        spiked = trace.with_spikes([(600.0, 900.0, 0.3)])
        # samples 2..4 cover [600, 1500)
        assert list(spiked.utilization[:2]) == [0.5, 0.5]
        assert list(spiked.utilization[2:5]) == pytest.approx([0.8] * 3)
        assert list(spiked.utilization[5:]) == [0.5] * 7
        # original untouched; clipping respected
        assert list(trace.utilization) == [0.5] * 12
        clipped = trace.with_spikes([(0.0, 3600.0, 0.9)])
        assert max(clipped.utilization) == 1.0

    def test_flash_crowd_forces_reclaims(self):
        setup = small_setup()
        base = run_scheme(setup, "lyra")
        plan = FaultPlan(
            name="t",
            flash_crowds=(FlashCrowd(at=4 * 3600.0, duration=3600.0,
                                     magnitude=0.9),),
        )
        crowd = run_scheme(setup, "lyra", sim_overrides={"fault_plan": plan})
        assert (
            crowd.registry.counter("resilience.flash_crowds").value == 1
        )
        # the spike shrinks loanable capacity: more reclaim pressure
        # (or at minimum, no more loaned capacity than the calm run)
        assert len(crowd.reclaim_ops) >= len(base.reclaim_ops)

    def test_predictor_outage_degrades_loaning(self):
        plan = FaultPlan(
            name="t",
            predictor_outages=(
                PredictorOutage(at=0.0, duration=12 * 3600.0),
            ),
        )
        metrics = run_scheme(
            small_setup(), "lyra", sim_overrides={"fault_plan": plan}
        )
        assert metrics.registry.counter("resilience.degraded_ticks").value > 0

    def test_launch_failures_retry_and_jobs_finish(self):
        plan = FaultPlan(
            name="t", launch_failures=LaunchFailures(probability=0.5),
        )
        specs = [spec(job_id=i, submit=i * 50.0, duration=800.0)
                 for i in range(8)]
        sim, metrics = run(specs, plan)
        assert all(j.status is JobStatus.FINISHED for j in sim.jobs.values())
        assert metrics.registry.counter("resilience.launch_retries").value > 0
        sim.rm.verify_books()

    def test_double_failure_is_recorded_noop(self):
        sim = Simulation(
            [spec(duration=5000.0)], pair(), LyraScheduler(),
            config=SimulationConfig(),
        )
        server_id = sim.cluster.servers[0].server_id

        def fail_twice():
            assert sim.apply_node_failure(server_id, repair_time=None)
            assert not sim.apply_node_failure(server_id, repair_time=None)
            assert not sim.apply_node_failure("no-such-server")

        sim.engine.schedule(100.0, fail_twice)
        metrics = sim.run()
        assert metrics.node_failures == 1
        noop = metrics.registry.counter(
            "resilience.node_failure_noop", reason="already_unhealthy"
        )
        assert noop.value == 1
        unknown = metrics.registry.counter(
            "resilience.node_failure_noop", reason="unknown_server"
        )
        assert unknown.value == 1

    def test_chaos_runs_audit_after_fault_events(self):
        metrics = run_scheme(
            small_setup(), "lyra",
            sim_overrides={"fault_plan": builtin_plan("node-churn")},
        )
        snap = resilience_snapshot(metrics)
        assert snap["audits"] > 0
        assert snap["node_failures"] > 0


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_chaos_snapshot_is_byte_identical(self):
        setup = small_setup()
        plan = builtin_plan("chaos")
        snaps = []
        for _ in range(2):
            metrics = run_scheme(
                setup, "lyra", sim_overrides={"fault_plan": plan}
            )
            snaps.append(json.dumps(
                resilience_snapshot(metrics, plan=plan), sort_keys=True
            ))
        assert snaps[0] == snaps[1]

    def test_different_seeds_differ(self):
        setup = small_setup()
        runs = {}
        for seed in (0, 1):
            plan = builtin_plan("node-churn").with_seed(seed)
            metrics = run_scheme(
                setup, "lyra", sim_overrides={"fault_plan": plan}
            )
            runs[seed] = json.dumps(
                resilience_snapshot(metrics), sort_keys=True
            )
        assert runs[0] != runs[1]

    def test_legacy_mtbf_path_is_deterministic(self):
        def go():
            specs = [spec(job_id=i, submit=i * 50.0, duration=1500.0)
                     for i in range(6)]
            sim = Simulation(
                specs, pair(), LyraScheduler(),
                config=SimulationConfig(node_mtbf=1000.0,
                                        node_repair_time=600.0,
                                        failure_seed=3),
            )
            m = sim.run()
            return (m.node_failures, m.jct_summary().mean)

        assert go() == go()


# ----------------------------------------------------------------------
# invariant audit
# ----------------------------------------------------------------------
class TestAudit:
    def test_clean_simulation_passes(self):
        sim, _ = run([spec()], builtin_plan("none"))
        verify_scheduler_invariants(sim)

    def test_detects_running_pending_overlap(self):
        sim = Simulation(
            [spec(duration=5000.0)], pair(), LyraScheduler(),
            config=SimulationConfig(),
        )

        def corrupt():
            job = next(iter(sim.running.values()))
            sim.pending.append(job)
            with pytest.raises(InvariantViolation, match="both running"):
                verify_scheduler_invariants(sim)
            sim.pending.remove(job)

        sim.engine.schedule(100.0, corrupt)
        sim.run()

    def test_detects_pending_with_placement(self):
        sim = Simulation(
            [spec(duration=5000.0)], pair(), LyraScheduler(),
            config=SimulationConfig(),
        )

        def corrupt():
            job = next(iter(sim.running.values()))
            saved_status = job.status
            job.status = JobStatus.PENDING
            del sim.running[job.job_id]
            sim.pending.append(job)
            with pytest.raises(InvariantViolation, match="holds placement"):
                verify_scheduler_invariants(sim)
            sim.pending.remove(job)
            sim.running[job.job_id] = job
            job.status = saved_status

        sim.engine.schedule(100.0, corrupt)
        sim.run()
