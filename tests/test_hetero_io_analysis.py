"""Tests for heterogeneous-training math, trace I/O, and the analysis
report."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ShapeCheck, compare_to_paper, render_report
from repro.cluster.gpu import A100, T4, V100
from repro.elastic.hetero import (
    heterogeneous_throughput,
    mixed_penalty,
    plan_worker_mix,
    split_batch,
    step_efficiency,
)
from repro.scenarios import default_setup, run_scheme
from repro.traces.io import load_workload, save_workload
from repro.traces.workload import TraceConfig, generate_workload


class TestBatchSplitting:
    def test_homogeneous_split_is_even(self):
        shards = split_batch(64, [V100] * 4)
        assert [s.batch for s in shards] == [16] * 4

    def test_split_conserves_global_batch(self):
        shards = split_batch(100, [V100, V100, T4, T4, T4])
        assert sum(s.batch for s in shards) == 100

    def test_faster_gpu_gets_bigger_shard(self):
        shards = split_batch(64, [V100, T4])
        assert shards[0].batch > shards[1].batch
        # proportional to the 3:1 speed ratio, up to rounding
        assert shards[0].batch == pytest.approx(48, abs=2)

    def test_every_worker_gets_at_least_one_sample(self):
        shards = split_batch(4, [A100, T4, T4, T4])
        assert all(s.batch >= 1 for s in shards)

    def test_batch_smaller_than_workers_rejected(self):
        with pytest.raises(ValueError):
            split_batch(2, [V100, V100, V100])

    def test_empty_workers_rejected(self):
        with pytest.raises(ValueError):
            split_batch(8, [])

    @given(
        batch=st.integers(8, 512),
        v100s=st.integers(1, 4),
        t4s=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_properties(self, batch, v100s, t4s):
        gpus = [V100] * v100s + [T4] * t4s
        shards = split_batch(batch, gpus)
        assert sum(s.batch for s in shards) == batch
        assert all(s.batch >= 1 for s in shards)


class TestStepEfficiency:
    def test_balanced_steps_are_efficient(self):
        shards = split_batch(96, [V100, V100, T4])
        assert step_efficiency(shards) > 0.9

    def test_unbalanced_steps_waste_time(self):
        from repro.elastic.hetero import WorkerShard

        shards = [WorkerShard(V100, 60), WorkerShard(V100, 4)]
        assert step_efficiency(shards) < 0.6

    def test_mixed_penalty_in_paper_band(self):
        # V100+T4 mixes land around the <=70-95 % band of §7.1 and its
        # references once sync overhead is charged.
        penalty = mixed_penalty(128, [V100] * 2 + [T4] * 2,
                                sync_overhead=0.1)
        assert 0.6 <= penalty <= 0.95

    def test_homogeneous_penalty_is_one(self):
        assert mixed_penalty(64, [V100] * 4) == 1.0

    def test_throughput_positive_and_bounded(self):
        gpus = [V100, V100, T4]
        tput = heterogeneous_throughput(90, gpus)
        assert 0 < tput <= sum(g.relative_compute for g in gpus)

    def test_bad_sync_overhead_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_throughput(64, [V100], sync_overhead=1.0)


class TestWorkerMixPlanning:
    def test_training_first(self):
        mix = plan_worker_mix(10, training_free=8, onloan_free=24)
        assert mix == {"training": 8, "onloan": 6}

    def test_fits_training_alone(self):
        assert plan_worker_mix(4, 8, 0) == {"training": 4, "onloan": 0}

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            plan_worker_mix(10, training_free=2, onloan_free=8)

    def test_zero_demand_rejected(self):
        with pytest.raises(ValueError):
            plan_worker_mix(0, 8, 8)


class TestTraceIO:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_workload(
            TraceConfig(num_jobs=50, days=0.5, cluster_gpus=64, seed=17)
        )

    @pytest.mark.parametrize("ext", ["json", "csv"])
    def test_round_trip(self, workload, tmp_path, ext):
        path = tmp_path / f"trace.{ext}"
        save_workload(workload, path)
        loaded = load_workload(path, cluster_gpus=64)
        assert len(loaded.specs) == len(workload.specs)
        for a, b in zip(workload.specs, loaded.specs):
            assert a.job_id == b.job_id
            assert a.duration == pytest.approx(b.duration)
            assert a.elastic == b.elastic
            assert a.min_workers == b.min_workers

    def test_json_preserves_config(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.config.cluster_gpus == workload.config.cluster_gpus
        assert loaded.config.days == workload.config.days

    def test_unknown_extension_rejected(self, workload, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_workload(workload, tmp_path / "trace.parquet")
        with pytest.raises(ValueError, match="format"):
            load_workload(tmp_path / "trace.parquet")

    def test_loaded_trace_is_runnable(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_workload(workload, path)
        loaded = load_workload(path)
        setup = default_setup(num_jobs=10, days=0.5, training_servers=8,
                              inference_servers=8, seed=17)
        metrics = run_scheme(setup, "baseline", specs=loaded.specs)
        assert metrics.completion_ratio() == 1.0

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"job_id": 1}]')
        with pytest.raises(ValueError, match="missing field"):
            load_workload(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="no jobs"):
            load_workload(path)


class TestAnalysisReport:
    @pytest.fixture(scope="class")
    def results(self):
        setup = default_setup(num_jobs=200, days=1.0, training_servers=10,
                              inference_servers=12, seed=23, target_load=1.0)
        return {
            "baseline": run_scheme(setup, "baseline"),
            "lyra": run_scheme(setup, "lyra"),
            "lyra_scaling": run_scheme(setup, "lyra_scaling"),
        }

    def test_requires_baseline(self, results):
        with pytest.raises(ValueError, match="baseline"):
            compare_to_paper({"lyra": results["lyra"]})

    def test_checks_present_schemes_only(self, results):
        checks = compare_to_paper(results)
        names = {c.name for c in checks}
        assert any("Basic" in n for n in names)
        assert not any("loaning-only" in n for n in names)

    def test_headline_shapes_hold(self, results):
        checks = compare_to_paper(results)
        basic = [c for c in checks if "Lyra queuing reduction" in c.name][0]
        assert basic.holds
        jct = [c for c in checks if "Lyra JCT reduction" in c.name][0]
        assert jct.holds

    def test_render(self, results):
        report = render_report(compare_to_paper(results))
        assert "shape verdict" in report
        assert "paper" in report

    def test_shapecheck_str(self):
        check = ShapeCheck("x", 1.5, 1.2, True, True)
        assert "[+]" in str(check)
        bad = ShapeCheck("x", 1.5, 0.8, False, False)
        assert "[!]" in str(bad)
