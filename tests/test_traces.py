"""Tests for the synthetic traces: calibration to the paper's statistics."""

import numpy as np
import pytest

from repro.traces.bootstrap import bootstrap_trace, bootstrap_traces
from repro.traces.inference import (
    SAMPLE_INTERVAL,
    InferenceTrace,
    generate_inference_trace,
)
from repro.traces.models import (
    ALL_FAMILIES,
    ELASTIC_FAMILIES,
    GENERIC,
    RESNET,
    fig3_series,
    get_family,
)
from repro.traces.workload import DAY, TraceConfig, generate_workload


class TestWorkloadCalibration:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_workload(
            TraceConfig(num_jobs=3000, days=5.0, cluster_gpus=512, seed=11)
        )

    def test_offered_load_matches_target(self, workload):
        assert workload.offered_load() == pytest.approx(0.95, abs=0.05)

    def test_fungible_fraction(self, workload):
        # §2.1: 21 % of jobs do not request a specific GPU type.
        assert workload.fungible_fraction() == pytest.approx(0.21, abs=0.02)

    def test_fungible_load_share_matches_job_share(self, workload):
        # §7.1: fungible jobs are also ~21 % of the training *load*.
        fungible_work = sum(
            s.total_work for s in workload.specs if s.fungible
        )
        assert fungible_work / workload.total_work() == pytest.approx(
            0.21, abs=0.08
        )

    def test_elastic_job_fraction(self, workload):
        elastic = sum(1 for s in workload.specs if s.elastic)
        assert elastic / len(workload.specs) == pytest.approx(0.05, abs=0.01)

    def test_elastic_resource_share(self, workload):
        # §2.2: elastic families account for ~36 % of cluster resources.
        assert workload.elastic_share() == pytest.approx(0.36, abs=0.06)

    def test_elastic_jobs_use_known_families(self, workload):
        families = {
            s.model_family for s in workload.specs if s.elastic
        }
        assert families <= {f.name for f in ELASTIC_FAMILIES}

    def test_elastic_scaling_range_is_double_base(self, workload):
        for s in workload.specs:
            if s.elastic:
                assert s.max_workers == 2 * s.min_workers

    def test_durations_minutes_to_days(self, workload):
        durations = [s.duration for s in workload.specs]
        assert min(durations) >= 60.0
        assert max(durations) > 3600.0

    def test_arrivals_sorted_and_in_span(self, workload):
        times = [s.submit_time for s in workload.specs]
        assert times == sorted(times)
        assert 0 <= times[0] and times[-1] < workload.span

    def test_deterministic_for_seed(self):
        config = TraceConfig(num_jobs=100, days=1.0, cluster_gpus=64, seed=3)
        a = generate_workload(config)
        b = generate_workload(config)
        assert [s.job_id for s in a.specs] == [s.job_id for s in b.specs]
        assert [s.duration for s in a.specs] == [s.duration for s in b.specs]

    def test_different_seeds_differ(self):
        a = generate_workload(TraceConfig(num_jobs=100, seed=1))
        b = generate_workload(TraceConfig(num_jobs=100, seed=2))
        assert [s.duration for s in a.specs] != [s.duration for s in b.specs]

    def test_job_ids_unique_and_dense(self, workload):
        ids = [s.job_id for s in workload.specs]
        assert ids == list(range(len(ids)))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(num_jobs=0)
        with pytest.raises(ValueError):
            TraceConfig(days=-1)
        with pytest.raises(ValueError):
            TraceConfig(fungible_fraction=1.5)

    def test_checkpointing_fraction_applied(self):
        workload = generate_workload(
            TraceConfig(num_jobs=500, checkpointing_fraction=0.4, seed=5)
        )
        frac = sum(1 for s in workload.specs if s.checkpointing) / 500
        assert frac == pytest.approx(0.4, abs=0.02)

    def test_heterogeneous_fraction_applied(self):
        workload = generate_workload(
            TraceConfig(num_jobs=500, heterogeneous_fraction=0.1, seed=5)
        )
        frac = sum(1 for s in workload.specs if s.heterogeneous) / 500
        assert frac == pytest.approx(0.1, abs=0.02)


class TestInferenceTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_inference_trace(days=7.0, num_servers=500, seed=0)

    def test_fig1_statistics(self, trace):
        """Fig. 1: utilization 42-95 %, mean ~65 %, peak/trough ~2.2."""
        util = trace.utilization
        assert float(np.mean(util)) == pytest.approx(0.65, abs=0.06)
        assert float(np.min(util)) == pytest.approx(0.42, abs=0.12)
        assert float(np.max(util)) == pytest.approx(0.95, abs=0.08)
        assert trace.peak_to_trough() == pytest.approx(2.2, abs=0.6)

    def test_diurnal_period(self, trace):
        """Autocorrelation at a 1-day lag must be strong."""
        util = trace.utilization - np.mean(trace.utilization)
        lag = int(DAY / SAMPLE_INTERVAL)
        ac = np.corrcoef(util[:-lag], util[lag:])[0, 1]
        assert ac > 0.7

    def test_sample_count(self, trace):
        assert len(trace.utilization) == int(7 * DAY / SAMPLE_INTERVAL)

    def test_utilization_at_clamps(self, trace):
        assert trace.utilization_at(-100) == trace.utilization[0]
        assert trace.utilization_at(1e12) == trace.utilization[-1]

    def test_loanable_plus_busy_plus_headroom_covers_cluster(self, trace):
        for t in (0.0, 3600.0, DAY / 2):
            busy = trace.busy_servers_at(t)
            loanable = trace.loanable_at(t)
            assert busy + loanable <= trace.num_servers

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceTrace(utilization=np.array([1.5]), num_servers=10)
        with pytest.raises(ValueError):
            InferenceTrace(utilization=np.array([]), num_servers=10)
        with pytest.raises(ValueError):
            InferenceTrace(utilization=np.array([0.5]), num_servers=0)

    def test_bad_headroom_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.loanable_at(0.0, headroom=1.0)

    def test_deterministic(self):
        a = generate_inference_trace(days=1.0, seed=4)
        b = generate_inference_trace(days=1.0, seed=4)
        assert np.array_equal(a.utilization, b.utilization)


class TestModelFamilies:
    def test_elastic_families_are_the_paper_four(self):
        assert {f.name for f in ELASTIC_FAMILIES} == {
            "resnet", "vgg", "bert", "gnmt",
        }

    def test_generic_not_elastic_capable(self):
        assert not GENERIC.elastic_capable

    def test_throughput_monotone(self):
        values = [RESNET.throughput(w) for w in (1, 2, 4, 8)]
        assert values == sorted(values)

    def test_throughput_near_linear(self):
        # Fig. 3: near-linear scaling for the chosen families.
        assert RESNET.throughput(8) >= 0.85 * 8 * RESNET.throughput(1)

    def test_zero_workers(self):
        assert RESNET.throughput(0) == 0.0

    def test_negative_workers_raise(self):
        with pytest.raises(ValueError):
            RESNET.throughput(-1)

    def test_fig3_series_doubles_every_five_epochs(self):
        series = fig3_series(RESNET, epochs=30, double_every=5)
        workers = [w for _, w, _ in series]
        assert workers[0] == 1
        assert workers[5] == 2
        assert workers[25] == 32
        throughputs = [t for _, _, t in series]
        assert throughputs[-1] > throughputs[0]

    def test_get_family(self):
        assert get_family("resnet") is RESNET
        with pytest.raises(KeyError):
            get_family("alexnet")

    def test_registry_complete(self):
        assert set(ALL_FAMILIES) == {"resnet", "vgg", "bert", "gnmt", "generic"}


class TestBootstrap:
    @pytest.fixture(scope="class")
    def base(self):
        return generate_workload(
            TraceConfig(num_jobs=600, days=5.0, cluster_gpus=256, seed=9)
        )

    def test_resampled_span(self, base):
        sample = bootstrap_trace(base, days=3, seed=1)
        assert sample.config.days == 3.0
        assert all(s.submit_time < 3 * DAY for s in sample.specs)

    def test_ids_renumbered(self, base):
        sample = bootstrap_trace(base, days=3, seed=1)
        assert [s.job_id for s in sample.specs] == list(range(len(sample.specs)))

    def test_arrivals_sorted(self, base):
        sample = bootstrap_trace(base, days=4, seed=2)
        times = [s.submit_time for s in sample.specs]
        assert times == sorted(times)

    def test_deterministic(self, base):
        a = bootstrap_trace(base, days=3, seed=5)
        b = bootstrap_trace(base, days=3, seed=5)
        assert [s.duration for s in a.specs] == [s.duration for s in b.specs]

    def test_ensemble_differs(self, base):
        traces = bootstrap_traces(base, count=3, days=3, seed=0)
        sizes = {len(t.specs) for t in traces}
        durations = [tuple(s.duration for s in t.specs[:20]) for t in traces]
        assert len(set(durations)) > 1 or len(sizes) > 1

    def test_invalid_days(self, base):
        with pytest.raises(ValueError):
            bootstrap_trace(base, days=0)

    def test_preserves_job_shape_distribution(self, base):
        sample = bootstrap_trace(base, days=5, seed=3)
        base_elastic = sum(1 for s in base.specs if s.elastic) / len(base.specs)
        if sample.specs:
            sample_elastic = sum(1 for s in sample.specs if s.elastic) / len(
                sample.specs
            )
            assert sample_elastic == pytest.approx(base_elastic, abs=0.06)
