"""Unit tests for the job model: specs, placement, progress, lifecycle."""

import math

import pytest

from repro.cluster.job import BEYOND_RANGE_EFFICIENCY, JobSpec, JobStatus
from repro.elastic.throughput import SUBLINEAR_20

from tests.conftest import make_job


class TestJobSpecValidation:
    def test_inelastic_defaults_min_to_max(self):
        spec = JobSpec(job_id=1, submit_time=0, duration=10, max_workers=4)
        assert spec.min_workers == 4

    def test_rejects_negative_submit(self):
        with pytest.raises(ValueError):
            JobSpec(job_id=1, submit_time=-1, duration=10, max_workers=1)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            JobSpec(job_id=1, submit_time=0, duration=0, max_workers=1)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            JobSpec(job_id=1, submit_time=0, duration=10, max_workers=0)

    def test_rejects_min_above_max(self):
        with pytest.raises(ValueError):
            JobSpec(
                job_id=1, submit_time=0, duration=10,
                max_workers=2, min_workers=4, elastic=True,
            )

    def test_rejects_inelastic_with_range(self):
        with pytest.raises(ValueError):
            JobSpec(
                job_id=1, submit_time=0, duration=10,
                max_workers=4, min_workers=2, elastic=False,
            )

    def test_rejects_zero_gpus_per_worker(self):
        with pytest.raises(ValueError):
            JobSpec(
                job_id=1, submit_time=0, duration=10,
                max_workers=1, gpus_per_worker=0,
            )


class TestWorkAccounting:
    def test_total_work_is_demand_times_runtime(self):
        # Table 2 semantics: duration is the minimum running time at max
        # demand, so workload = w_max * gpw * duration.
        job = make_job(duration=50, max_workers=6, min_workers=2,
                       gpus_per_worker=1, elastic=True)
        assert job.spec.total_work == 300

    def test_base_and_max_gpus(self):
        job = make_job(max_workers=6, min_workers=2, gpus_per_worker=2,
                       elastic=True)
        assert job.spec.base_gpus == 4
        assert job.spec.max_gpus == 12

    def test_running_time_inverse_in_workers(self):
        # §5: running time inversely proportional to allocation.
        job = make_job(duration=50, max_workers=6, min_workers=2, elastic=True)
        assert job.remaining_time_at(6) == pytest.approx(50)
        assert job.remaining_time_at(2) == pytest.approx(150)
        assert job.remaining_time_at(3) == pytest.approx(100)

    def test_remaining_time_zero_workers_is_inf(self):
        assert make_job().remaining_time_at(0) == math.inf

    def test_sublinear_scaling_slows_added_workers(self):
        job = make_job(duration=50, max_workers=6, min_workers=2, elastic=True)
        job.scaling_model = SUBLINEAR_20
        # eff(2) = 1.8, eff(6) = 5.0; times scale accordingly.
        base = job.remaining_time_at(2)
        full = job.remaining_time_at(6)
        assert base / full == pytest.approx(5.0 / 1.8)

    def test_beyond_range_workers_discounted(self):
        job = make_job(duration=100, max_workers=2, min_workers=1, elastic=True)
        t_in = job.remaining_time_at(2)
        t_out = job.remaining_time_at(3)
        # worker 3 contributes only BEYOND_RANGE_EFFICIENCY of a worker
        expected = t_in * 2 / (2 + BEYOND_RANGE_EFFICIENCY)
        assert t_out == pytest.approx(expected)


class TestPlacement:
    def test_record_and_count(self):
        job = make_job(max_workers=4, min_workers=2, elastic=True)
        job.record_placement("s1", 2, flexible=False)
        job.record_placement("s2", 1, flexible=True)
        assert job.total_workers == 3
        assert job.base_workers == 2
        assert job.flex_workers == 1
        assert job.servers == {"s1", "s2"}
        assert job.workers_on("s1") == 2

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            make_job().record_placement("s1", 0, flexible=False)

    def test_remove_placement_returns_count(self):
        job = make_job(max_workers=4, min_workers=1, elastic=True)
        job.record_placement("s1", 1, flexible=False)
        job.record_placement("s1", 2, flexible=True)
        assert job.remove_placement("s1") == 3
        assert job.total_workers == 0

    def test_remove_flex_keeps_base(self):
        job = make_job(max_workers=4, min_workers=1, elastic=True)
        job.record_placement("s1", 1, flexible=False)
        job.record_placement("s1", 2, flexible=True)
        assert job.remove_flex_on("s1") == 2
        assert job.base_workers == 1
        assert job.workers_on("s1") == 1

    def test_gpu_cost_tracking(self):
        job = make_job(gpus_per_worker=2)
        job.record_placement("t4-server", 1, flexible=False, gpu_cost=6,
                             on_loan=True)
        assert job.gpu_cost_on("t4-server") == 6
        assert job.gpus_on("t4-server") == 6

    def test_gpu_cost_defaults_to_gpw(self):
        job = make_job(gpus_per_worker=2)
        job.record_placement("v100", 3, flexible=False)
        assert job.gpus_on("v100") == 6

    def test_onloan_fraction(self):
        job = make_job(max_workers=4, min_workers=2, elastic=True)
        job.record_placement("train", 2, flexible=False)
        job.record_placement("loan", 2, flexible=True, on_loan=True)
        assert job.onloan_throughput_fraction() == pytest.approx(0.5)


class TestProgress:
    def test_throughput_is_placement_independent_speed(self):
        # The §5.2 normalization charges footprint, not speed: a worker
        # contributes its nominal GPUs wherever it runs.
        job = make_job(max_workers=2, gpus_per_worker=2)
        job.record_placement("loan", 2, flexible=False, gpu_cost=6, on_loan=True)
        assert job.throughput() == pytest.approx(4.0)

    def test_advance_consumes_work(self):
        job = make_job(duration=100, max_workers=2)
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(0.0)
        job.advance(50.0)
        assert job.remaining_work == pytest.approx(100.0)
        assert job.eta() == pytest.approx(50.0)

    def test_advance_accumulates_onloan_work(self):
        job = make_job(duration=100, max_workers=2)
        job.record_placement("loan", 2, flexible=False, gpu_cost=6, on_loan=True)
        job.mark_started(0.0)
        job.advance(10.0)
        assert job.onloan_work == pytest.approx(20.0)

    def test_advance_rejects_time_travel(self):
        job = make_job()
        job.mark_started(10.0)
        with pytest.raises(ValueError):
            job.advance(5.0)

    def test_eta_infinite_without_workers(self):
        job = make_job()
        job.mark_started(0.0)
        assert job.eta() == math.inf

    def test_hetero_penalty_slows_progress(self):
        job = make_job(max_workers=2, heterogeneous=True)
        job.record_placement("s1", 2, flexible=False)
        full = job.throughput()
        job.hetero_penalty = 0.7
        assert job.throughput() == pytest.approx(0.7 * full)

    def test_tuning_bonus_speeds_progress(self):
        job = make_job(max_workers=2)
        job.record_placement("s1", 2, flexible=False)
        base = job.throughput()
        job.tuning_bonus = 1.08
        assert job.throughput() == pytest.approx(1.08 * base)


class TestLifecycle:
    def test_started_job_records_first_start(self):
        job = make_job(submit_time=5.0)
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(30.0)
        assert job.status is JobStatus.RUNNING
        assert job.queuing_time == pytest.approx(25.0)

    def test_finish_records_jct(self):
        job = make_job(submit_time=5.0)
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(30.0)
        job.mark_finished(130.0)
        assert job.status is JobStatus.FINISHED
        assert job.jct == pytest.approx(125.0)
        assert job.total_workers == 0

    def test_cannot_restart_finished(self):
        job = make_job()
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(0.0)
        job.mark_finished(10.0)
        with pytest.raises(RuntimeError):
            job.mark_started(20.0)

    def test_preemption_without_checkpoint_loses_progress(self):
        job = make_job(duration=100, max_workers=2)
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(0.0)
        job.mark_preempted(50.0, overhead=0.0)
        assert job.status is JobStatus.PENDING
        assert job.remaining_work == pytest.approx(job.spec.total_work)
        assert job.preemptions == 1
        assert job.total_workers == 0

    def test_preemption_with_checkpoint_keeps_progress(self):
        job = make_job(duration=100, max_workers=2, checkpointing=True)
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(0.0)
        job.mark_preempted(50.0, overhead=0.0)
        assert job.remaining_work == pytest.approx(100.0)

    def test_preemption_overhead_adds_work(self):
        # §7.5: 63 s average preemption overhead, charged at full rate.
        job = make_job(duration=100, max_workers=2, checkpointing=True)
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(0.0)
        job.mark_preempted(50.0, overhead=63.0)
        assert job.remaining_work == pytest.approx(100.0 + 63.0 * 2)

    def test_queuing_none_before_start(self):
        job = make_job()
        assert job.queuing_time is None
        assert job.jct is None

    def test_requeue_keeps_first_start_time(self):
        job = make_job()
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(10.0)
        job.mark_preempted(20.0)
        job.record_placement("s1", 2, flexible=False)
        job.mark_started(40.0)
        assert job.first_start_time == 10.0

    def test_estimate_error_scales_estimate_only(self):
        job = make_job(duration=100)
        job.estimate_error = 1.25
        assert job.estimated_duration() == pytest.approx(125.0)
        assert job.spec.duration == 100.0
