"""Tests for the resource orchestrator: loaning, reclaiming, prediction."""

import numpy as np
import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec
from repro.core.orchestrator import ResourceOrchestrator
from repro.schedulers.lyra import LyraScheduler
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.traces.inference import InferenceTrace


def flat_trace(levels, num_servers=4):
    """A step-function inference trace: one level per 5-minute sample."""
    return InferenceTrace(
        utilization=np.array(levels, dtype=float), num_servers=num_servers
    )


def sim_with(trace, specs=(), orchestrator=None, training=2, inference=4,
             **cfg):
    pair = ClusterPair(
        make_training_cluster(training), make_inference_cluster(inference)
    )
    return Simulation(
        list(specs),
        pair,
        LyraScheduler(),
        inference_trace=trace,
        orchestrator=orchestrator or ResourceOrchestrator(),
        config=SimulationConfig(**cfg),
    )


class TestTargets:
    def test_loanable_respects_headroom(self):
        trace = flat_trace([0.5] * 10, num_servers=10)
        # busy = 5, headroom = ceil(0.02*10) = 1 -> 4 loanable
        assert trace.loanable_at(0.0, headroom=0.02) == 4

    def test_loanable_zero_when_busy(self):
        trace = flat_trace([1.0] * 10)
        assert trace.loanable_at(0.0) == 0

    def test_target_loanable_uses_trace(self):
        trace = flat_trace([0.0] * 10, num_servers=4)
        sim = sim_with(trace)
        orch = ResourceOrchestrator()
        assert orch.target_loanable(sim) == 3  # 4 - ceil(0.02*4)=1

    def test_no_trace_means_no_loaning(self):
        sim = sim_with(None)
        assert ResourceOrchestrator().target_loanable(sim) == 0


class TestLoanReclaimFlow:
    def test_loan_then_reclaim_cycle(self):
        # 1 hour idle, then fully busy: servers must come back.  A
        # filler job pins the training cluster so the fungible job
        # actually needs the loan.
        levels = [0.0] * 12 + [1.0] * 12
        trace = flat_trace(levels, num_servers=4)
        specs = [
            JobSpec(job_id=0, submit_time=0.0, duration=20000.0,
                    max_workers=16),
            JobSpec(job_id=1, submit_time=0.0, duration=20000.0,
                    max_workers=2, fungible=True),
        ]
        orch = ResourceOrchestrator()
        sim = sim_with(trace, specs, orch)
        sim.run()
        assert sim.metrics.loan_ops, "no loans happened"
        assert sim.metrics.reclaim_ops, "no reclaims happened"
        assert sim.pair.loaned_count == 0
        assert len(sim.pair.inference) == 4

    def test_smoothing_ignores_single_sample_spike(self):
        # one 5-minute spike in an otherwise idle trace: the median-of-3
        # filter must not trigger a reclaim.
        levels = [0.0] * 6 + [1.0] + [0.0] * 6
        trace = flat_trace(levels, num_servers=4)
        orch = ResourceOrchestrator()
        spec = JobSpec(job_id=0, submit_time=0.0, duration=4000.0,
                       max_workers=2, fungible=True)
        sim = sim_with(trace, [spec], orch)
        sim.run()
        assert not sim.metrics.reclaim_ops

    def _loan_hungry_specs(self):
        """A filler job pins the training cluster; a fungible job must
        borrow inference hardware."""
        return [
            JobSpec(job_id=0, submit_time=0.0, duration=30000.0,
                    max_workers=16),
            JobSpec(job_id=1, submit_time=0.0, duration=30000.0,
                    max_workers=2, fungible=True),
        ]

    def test_sustained_rise_triggers_reclaim(self):
        levels = [0.0] * 6 + [1.0] * 7
        trace = flat_trace(levels, num_servers=4)
        sim = sim_with(trace, self._loan_hungry_specs(),
                       ResourceOrchestrator())
        sim.run()
        assert sim.metrics.reclaim_ops

    def test_demand_aware_loaning_skips_unneeded_servers(self):
        # Everything fits on training hardware: nothing should be loaned
        # even though the inference cluster is fully idle.
        levels = [0.0] * 12
        trace = flat_trace(levels, num_servers=4)
        spec = JobSpec(job_id=0, submit_time=0.0, duration=2000.0,
                       max_workers=2, fungible=True)
        sim = sim_with(trace, [spec], ResourceOrchestrator())
        sim.run()
        assert not sim.metrics.loan_ops

    def test_reclaim_preempts_fungible_job_on_loaned_server(self):
        levels = [0.0] * 6 + [1.0] * 10
        trace = flat_trace(levels, num_servers=4)
        # job too large for the 16-GPU dedicated cluster alone? No: make
        # it fit only with loans so it must land on loaned hardware.
        spec = JobSpec(job_id=0, submit_time=0.0, duration=50000.0,
                       max_workers=8, min_workers=4, gpus_per_worker=2,
                       elastic=True, fungible=True)
        sim = sim_with(trace, [spec], ResourceOrchestrator(), training=1)
        sim.run()
        job = sim.jobs[0]
        # the job used loaned capacity at some point and survived the
        # reclaim wave (scale-in or preemption, both acceptable).
        assert job.finish_time is not None

    def test_flex_satisfied_metric_recorded(self):
        levels = [0.0] * 8 + [1.0] * 10
        trace = flat_trace(levels, num_servers=4)
        spec = JobSpec(job_id=0, submit_time=0.0, duration=30000.0,
                       max_workers=16, min_workers=4, elastic=True,
                       fungible=True)
        sim = sim_with(trace, [spec], ResourceOrchestrator(), training=1)
        sim.run()
        if sim.metrics.reclaim_ops:
            assert sim.metrics.flex_satisfied
            assert all(0 <= f <= 1 for f in sim.metrics.flex_satisfied)


class TestReclaimerSelection:
    def test_unknown_reclaimer_rejected(self):
        with pytest.raises(ValueError):
            ResourceOrchestrator(reclaimer="bogus")

    @pytest.mark.parametrize("name", ["lyra", "random", "scf"])
    def test_all_reclaimers_complete_cycle(self, name):
        levels = [0.0] * 8 + [0.9] * 8
        trace = flat_trace(levels, num_servers=4)
        spec = JobSpec(job_id=0, submit_time=0.0, duration=10000.0,
                       max_workers=2, fungible=True)
        sim = sim_with(trace, [spec], ResourceOrchestrator(reclaimer=name))
        sim.run()
        assert sim.pair.loaned_count == 0


class TestPredictor:
    def test_predictor_reclaims_early(self):
        """An oracle predictor foreseeing the traffic rise makes the
        orchestrator reclaim at least as early as the reactive one."""
        levels = [0.0] * 12 + [1.0] * 8
        trace = flat_trace(levels, num_servers=4)

        def oracle(history):
            # predicts the *next* sample = the step to full utilization
            steps_seen = len(oracle.calls)
            oracle.calls.append(history)
            idx = min(steps_seen + 1, len(levels) - 1)
            return levels[idx]

        oracle.calls = []
        specs = [
            JobSpec(job_id=0, submit_time=0.0, duration=60000.0,
                    max_workers=16),
            JobSpec(job_id=1, submit_time=0.0, duration=60000.0,
                    max_workers=2, fungible=True),
        ]
        predictive = ResourceOrchestrator(predictor=oracle, window=3)
        sim_p = sim_with(trace, specs, predictive)
        sim_p.run()
        reactive = ResourceOrchestrator()
        sim_r = sim_with(trace, specs, reactive)
        sim_r.run()
        assert sim_p.metrics.reclaim_ops
        assert sim_r.metrics.reclaim_ops
