"""Tests for two-phase allocation (§5.2), incl. the Table 2/4 examples."""

import pytest

from repro.core.allocation import (
    MIXED,
    ONLOAN,
    TRAINING,
    Pools,
    allocate_two_phase,
    build_flex_groups,
    preferred_domain,
    sjf_phase,
)

from tests.conftest import make_job


class TestPools:
    def test_total_is_normalized(self):
        pools = Pools(training=10, onloan=9, onloan_cost=3.0)
        assert pools.onloan_normalized == 3
        assert pools.total == 13

    def test_onloan_fits_uses_cost(self):
        pools = Pools(training=0, onloan=9, onloan_cost=3.0)
        assert pools.onloan_fits(3)
        assert not pools.onloan_fits(4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Pools(training=-1)

    def test_cost_below_one_rejected(self):
        with pytest.raises(ValueError):
            Pools(training=1, onloan=1, onloan_cost=0.5)

    def test_copy_is_independent(self):
        pools = Pools(training=4, onloan=6)
        other = pools.copy()
        other.training = 0
        assert pools.training == 4


class TestPreferredDomain:
    def test_elastic_fungible_prefers_onloan(self):
        job = make_job(max_workers=4, min_workers=2, elastic=True,
                       fungible=True)
        assert preferred_domain(job) == ONLOAN

    def test_inelastic_prefers_training(self):
        assert preferred_domain(make_job(fungible=True)) == TRAINING

    def test_elastic_nonfungible_prefers_training(self):
        job = make_job(max_workers=4, min_workers=2, elastic=True)
        assert preferred_domain(job) == TRAINING


class TestSJFPhase:
    def test_shortest_first(self):
        long_job = make_job(job_id=1, duration=100, max_workers=4)
        short_job = make_job(job_id=2, duration=10, max_workers=4)
        pools = Pools(training=4)
        scheduled, skipped = sjf_phase([long_job, short_job], pools)
        assert [j.job_id for j, _ in scheduled] == [2]
        assert [j.job_id for j in skipped] == [1]
        assert pools.training == 0

    def test_backfill_continues_past_blocked_job(self):
        # A big job that does not fit must not block smaller ones.
        big = make_job(job_id=1, duration=10, max_workers=8)
        small = make_job(job_id=2, duration=20, max_workers=2)
        pools = Pools(training=4)
        scheduled, skipped = sjf_phase([big, small], pools)
        assert [j.job_id for j, _ in scheduled] == [2]

    def test_nonfungible_cannot_use_onloan(self):
        job = make_job(max_workers=4)
        pools = Pools(training=0, onloan=12)
        scheduled, skipped = sjf_phase([job], pools)
        assert scheduled == []
        assert skipped == [job]

    def test_fungible_falls_back_to_onloan_with_cost(self):
        job = make_job(max_workers=2, fungible=True)
        pools = Pools(training=0, onloan=6, onloan_cost=3.0)
        scheduled, _ = sjf_phase([job], pools)
        assert [d for _, d in scheduled] == [ONLOAN]
        assert pools.onloan == 0

    def test_heterogeneous_can_straddle(self):
        job = make_job(max_workers=4, heterogeneous=True)
        pools = Pools(training=2, onloan=6, onloan_cost=3.0)
        scheduled, _ = sjf_phase([job], pools)
        assert [d for _, d in scheduled] == [MIXED]
        assert pools.training == 0
        assert pools.onloan == 0

    def test_estimate_error_changes_order(self):
        a = make_job(job_id=1, duration=10, max_workers=4)
        b = make_job(job_id=2, duration=12, max_workers=4)
        a.estimate_error = 2.0  # a now *looks* longer
        pools = Pools(training=4)
        scheduled, _ = sjf_phase([a, b], pools)
        assert [j.job_id for j, _ in scheduled] == [2]


class TestFlexGroups:
    def test_table4_job_values(self):
        """Fig. 6's transformation of Table 4: job B (w in [2, 6], min
        runtime 20 at 6 workers, 1 GPU/worker) yields items valued
        20/30/36/40 for 1..4 extra workers."""
        job_b = make_job(duration=20, max_workers=6, min_workers=2,
                         gpus_per_worker=1, elastic=True)
        groups = build_flex_groups([job_b], max_weight=10)
        values = [item.value for item in groups[0]]
        assert values == pytest.approx([20.0, 30.0, 36.0, 40.0])
        assert [item.weight for item in groups[0]] == [1, 2, 3, 4]

    def test_table4_job_a_values(self):
        """Job A (w in [2, 3], min runtime 100, 2 GPUs/worker): one item
        of weight 2 and value 50."""
        job_a = make_job(duration=100, max_workers=3, min_workers=2,
                         gpus_per_worker=2, elastic=True)
        groups = build_flex_groups([job_a], max_weight=10)
        assert len(groups[0]) == 1
        assert groups[0][0].weight == 2
        assert groups[0][0].value == pytest.approx(50.0)

    def test_items_pruned_at_max_weight(self):
        job = make_job(duration=20, max_workers=6, min_workers=2,
                       elastic=True)
        groups = build_flex_groups([job], max_weight=2)
        assert len(groups[0]) == 2

    def test_partial_progress_shrinks_values(self):
        job = make_job(duration=20, max_workers=6, min_workers=2,
                       elastic=True)
        job.remaining_work = job.spec.total_work / 2
        groups = build_flex_groups([job], max_weight=10)
        assert groups[0][0].value == pytest.approx(10.0)


class TestTwoPhase:
    def test_table4_counter_example(self):
        """The paper's counter-example to SJF (Table 4): with 8 GPUs,
        favouring job A (longer min runtime but bigger workload) gives
        better average JCT.  The MCKP phase must find that allocation:
        A gets its 1 extra worker, B gets the rest."""
        job_a = make_job(job_id=1, duration=100, max_workers=3,
                         min_workers=2, gpus_per_worker=2, elastic=True)
        job_b = make_job(job_id=2, duration=20, max_workers=6,
                         min_workers=2, gpus_per_worker=1, elastic=True)
        pools = Pools(training=8)
        decision = allocate_two_phase([job_a, job_b], [], pools)
        assert len(decision.scheduled) == 2
        # base demands: 4 (A) + 2 (B) = 6, leaving 2 GPUs for phase two.
        # Best use of 2 GPUs: A's item (weight 2, value 50) beats B's
        # (weight 2, value 30).
        assert decision.flex[1] == 1
        assert decision.flex[2] == 0
        assert decision.mckp_value == pytest.approx(50.0)

    def test_running_elastic_jobs_join_phase_two(self):
        running = make_job(job_id=5, duration=20, max_workers=6,
                           min_workers=2, elastic=True)
        running.record_placement("s1", 2, flexible=False)
        pools = Pools(training=4)
        decision = allocate_two_phase([], [running], pools)
        assert decision.flex[5] == 4
        assert decision.leftover.training == 0

    def test_phase_one_starves_phase_two_under_pressure(self):
        # Inelastic demand soaks the pool; elastic jobs get base only.
        inelastic = [
            make_job(job_id=i, duration=10, max_workers=2) for i in range(3)
        ]
        elastic = make_job(job_id=10, duration=10, max_workers=4,
                           min_workers=2, elastic=True)
        pools = Pools(training=8)
        decision = allocate_two_phase(inelastic + [elastic], [], pools)
        assert len(decision.scheduled) == 4
        assert decision.flex[10] == 0

    def test_skipped_jobs_reported(self):
        jobs = [make_job(job_id=i, max_workers=4) for i in range(3)]
        pools = Pools(training=8)
        decision = allocate_two_phase(jobs, [], pools)
        assert len(decision.scheduled) == 2
        assert len(decision.skipped) == 1

    def test_no_elastic_no_mckp(self):
        decision = allocate_two_phase(
            [make_job(max_workers=2)], [], Pools(training=8)
        )
        assert decision.flex == {}
        assert decision.mckp_value == 0.0
        assert decision.mckp_groups is None

    def test_decision_captures_mckp_instance(self):
        # Conformance probes re-solve the captured instance by brute
        # force, so the decision must carry exactly what the DP saw.
        job = make_job(job_id=1, duration=20, max_workers=6, min_workers=2,
                       elastic=True)
        decision = allocate_two_phase([job], [], Pools(training=8))
        assert decision.mckp_capacity == 6  # 8 minus the base demand of 2
        assert decision.mckp_groups is not None
        assert [i.weight for i in decision.mckp_groups[0]] == [1, 2, 3, 4]


class TestDeductFlex:
    """Regression: the fungibility rule for flexible-worker charges.

    The MCKP solves over the *combined* normalized pool, so a grant can
    exceed one pool's remainder; how the spill is charged must respect
    fungibility.  ``_deduct_flex`` historically charged a non-fungible
    job's spill to ``pools.onloan`` — hardware the job can never run
    on — under-reporting loanable leftover capacity.
    """

    def test_nonfungible_flex_never_charges_onloan(self):
        job = make_job(job_id=1, duration=20, max_workers=8, min_workers=1,
                       elastic=True, fungible=False)
        pools = Pools(training=2, onloan=9, onloan_cost=3.0)
        decision = allocate_two_phase([job], [], pools)
        # Base takes 1 training GPU; phase two sees capacity 1 + 9/3 = 4
        # and grants more flex than the training pool holds.
        assert decision.flex[1] >= 2
        # The spill must be clamped against training, never billed to
        # the on-loan pool.
        assert decision.leftover.onloan == 9
        assert decision.leftover.training == 0

    def test_fungible_flex_drains_onloan_first(self):
        job = make_job(job_id=1, duration=20, max_workers=4, min_workers=1,
                       elastic=True, fungible=True)
        pools = Pools(training=5, onloan=6, onloan_cost=3.0)
        decision = allocate_two_phase([job], [], pools)
        # Base prefers on-loan (1 GPU -> 3 physical); flex 3 draws the
        # remaining normalized on-loan GPU first, then training.
        assert decision.flex[1] == 3
        assert decision.leftover.onloan == 0
        assert decision.leftover.training == 3
