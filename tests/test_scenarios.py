"""Tests for scenario transforms and the experiment runner."""

import pytest

from repro.cluster.job import JobSpec
from repro.scenarios import (
    SCENARIOS,
    SCHEMES,
    apply_scenario,
    default_setup,
    make_policy,
    run_scheme,
    with_checkpointing_fraction,
    with_elastic_fraction,
    with_heterogeneous_fraction,
)
from repro.traces.workload import TraceConfig, generate_workload


@pytest.fixture(scope="module")
def specs():
    return generate_workload(
        TraceConfig(num_jobs=400, days=1.0, cluster_gpus=64, seed=13)
    ).specs


class TestTransforms:
    def test_heterogeneous_fraction(self, specs):
        out = with_heterogeneous_fraction(specs, 0.25, seed=1)
        frac = sum(1 for s in out if s.heterogeneous) / len(out)
        assert frac == pytest.approx(0.25, abs=0.01)

    def test_checkpointing_fraction(self, specs):
        out = with_checkpointing_fraction(specs, 0.8, seed=1)
        frac = sum(1 for s in out if s.checkpointing) / len(out)
        assert frac == pytest.approx(0.8, abs=0.01)

    def test_elastic_fraction_counts_existing(self, specs):
        out = with_elastic_fraction(specs, 0.5, seed=1)
        frac = sum(1 for s in out if s.elastic) / len(out)
        assert frac == pytest.approx(0.5, abs=0.01)

    def test_elastic_conversion_preserves_work(self, specs):
        out = with_elastic_fraction(specs, 1.0, seed=1)
        assert sum(s.total_work for s in out) == pytest.approx(
            sum(s.total_work for s in specs)
        )

    def test_elastic_conversion_rule(self, specs):
        out = with_elastic_fraction(specs, 1.0, seed=1)
        for before, after in zip(specs, out):
            if not before.elastic:
                assert after.min_workers == before.max_workers
                assert after.max_workers == 2 * before.max_workers


class TestApplyScenario:
    def test_basic_is_identity(self, specs):
        assert apply_scenario(specs, "basic") == list(specs)

    def test_advanced_adds_hetero(self, specs):
        out = apply_scenario(specs, "advanced", seed=2)
        frac = sum(1 for s in out if s.heterogeneous) / len(out)
        assert frac == pytest.approx(0.10, abs=0.01)
        # fungible population unchanged
        assert sum(s.fungible for s in out) == sum(s.fungible for s in specs)

    def test_heterogeneous_disables_fungible(self, specs):
        out = apply_scenario(specs, "heterogeneous", seed=2)
        assert not any(s.fungible for s in out)
        assert any(s.heterogeneous for s in out)

    def test_ideal_makes_everything_flexible(self, specs):
        out = apply_scenario(specs, "ideal", seed=2)
        assert all(s.elastic for s in out)
        assert all(s.fungible for s in out)
        assert all(s.heterogeneous for s in out)

    def test_unknown_scenario_rejected(self, specs):
        with pytest.raises(ValueError):
            apply_scenario(specs, "extreme")

    def test_all_declared_scenarios_apply(self, specs):
        for scenario in SCENARIOS:
            out = apply_scenario(specs, scenario, seed=0)
            assert len(out) == len(specs)


class TestRunner:
    @pytest.fixture(scope="class")
    def setup(self):
        return default_setup(
            num_jobs=80, days=0.5, training_servers=6, inference_servers=8,
            seed=21,
        )

    def test_unknown_scheme_rejected(self, setup):
        with pytest.raises(ValueError):
            run_scheme(setup, "magic")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("nope")

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_every_scheme_completes(self, setup, scheme):
        metrics = run_scheme(setup, scheme)
        assert metrics.completion_ratio() >= 0.9
        assert metrics.jct_summary().mean > 0

    def test_loaning_schemes_loan(self, setup):
        metrics = run_scheme(setup, "lyra")
        assert metrics.loan_ops

    def test_non_loaning_schemes_do_not(self, setup):
        metrics = run_scheme(setup, "baseline")
        assert not metrics.loan_ops
        assert metrics.preemptions == 0

    def test_estimate_error_injection(self, setup):
        metrics = run_scheme(
            setup, "lyra_scaling", estimate_error=(0.6, 0.25), seed=3
        )
        assert metrics.completion_ratio() >= 0.9

    def test_sublinear_scaling_runs(self, setup):
        metrics = run_scheme(setup, "lyra_scaling", scaling_model="sublinear20")
        assert metrics.completion_ratio() >= 0.9

    def test_ideal_scenario_runs(self, setup):
        metrics = run_scheme(setup, "lyra", scenario="ideal")
        assert metrics.completion_ratio() >= 0.9

    def test_deterministic_given_seed(self, setup):
        a = run_scheme(setup, "lyra", seed=5)
        b = run_scheme(setup, "lyra", seed=5)
        assert a.jct_summary().mean == b.jct_summary().mean

    def test_custom_specs_override(self, setup):
        specs = [
            JobSpec(job_id=0, submit_time=0.0, duration=100.0, max_workers=2)
        ]
        metrics = run_scheme(setup, "baseline", specs=specs)
        assert metrics.submissions == 1
