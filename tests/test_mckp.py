"""Tests for the multiple-choice knapsack solver (§5.2 phase two)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mckp import (
    Item,
    solution_cost,
    solve_mckp,
    solve_mckp_bruteforce,
)


class TestBasics:
    def test_empty_groups(self):
        value, choices = solve_mckp([], 10)
        assert value == 0.0
        assert choices == []

    def test_zero_capacity_picks_nothing_with_weight(self):
        groups = [[Item(weight=1, value=5.0)]]
        value, choices = solve_mckp(groups, 0)
        assert value == 0.0
        assert choices == [None]

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            solve_mckp([], -1)

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            Item(weight=-1, value=1.0)

    def test_single_item_fits(self):
        groups = [[Item(weight=2, value=3.0, payload="a")]]
        value, choices = solve_mckp(groups, 2)
        assert value == 3.0
        assert choices[0].payload == "a"

    def test_at_most_one_item_per_group(self):
        groups = [[Item(weight=1, value=1.0), Item(weight=1, value=2.0)]]
        value, choices = solve_mckp(groups, 10)
        assert value == 2.0  # not 3.0

    def test_worthless_items_skipped(self):
        groups = [[Item(weight=1, value=0.0)], [Item(weight=1, value=-4.0)]]
        value, choices = solve_mckp(groups, 10)
        assert value == 0.0
        assert choices == [None, None]

    def test_fig6_example(self):
        """The paper's Fig. 6 instance: jobs A and B from Table 4.

        Job A: one item (weight 2 GPUs, value 50); job B: items of
        weight 1..4 with values 20/30/36/40.  With 4 free GPUs the best
        pick is A's item plus B's 2-GPU item (value 80).
        """
        group_a = [Item(weight=2, value=50.0, payload=("A", 1))]
        group_b = [
            Item(weight=1, value=20.0, payload=("B", 1)),
            Item(weight=2, value=30.0, payload=("B", 2)),
            Item(weight=3, value=36.0, payload=("B", 3)),
            Item(weight=4, value=40.0, payload=("B", 4)),
        ]
        value, choices = solve_mckp([group_a, group_b], 4)
        assert value == 80.0
        assert choices[0].payload == ("A", 1)
        assert choices[1].payload == ("B", 2)

    def test_reconstruction_weight_within_capacity(self):
        groups = [
            [Item(weight=3, value=5.0), Item(weight=5, value=9.0)],
            [Item(weight=4, value=7.0)],
            [Item(weight=2, value=2.0)],
        ]
        value, choices = solve_mckp(groups, 7)
        taken = [c for c in choices if c is not None]
        assert sum(item.weight for item in taken) <= 7
        assert sum(item.value for item in taken) == pytest.approx(value)


item_strategy = st.builds(
    Item,
    weight=st.integers(min_value=0, max_value=6),
    value=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
groups_strategy = st.lists(
    st.lists(item_strategy, max_size=4), max_size=4
)


class TestAgainstBruteForce:
    @given(groups=groups_strategy, capacity=st.integers(0, 12))
    @settings(max_examples=200, deadline=None)
    def test_dp_matches_bruteforce_value(self, groups, capacity):
        dp_value, dp_choices = solve_mckp(groups, capacity)
        bf_value, _ = solve_mckp_bruteforce(groups, capacity)
        assert dp_value == pytest.approx(bf_value)
        # The DP's own reconstruction must be feasible and consistent.
        taken = [c for c in dp_choices if c is not None]
        assert sum(i.weight for i in taken) <= capacity
        assert sum(i.value for i in taken) == pytest.approx(dp_value)

    @given(groups=groups_strategy, capacity=st.integers(0, 12))
    @settings(max_examples=100, deadline=None)
    def test_choices_come_from_their_groups(self, groups, capacity):
        _, choices = solve_mckp(groups, capacity)
        assert len(choices) == len(groups)
        for group, choice in zip(groups, choices):
            assert choice is None or choice in group

    @given(groups=groups_strategy)
    @settings(max_examples=50, deadline=None)
    def test_value_monotone_in_capacity(self, groups):
        v_small, _ = solve_mckp(groups, 3)
        v_large, _ = solve_mckp(groups, 9)
        assert v_large >= v_small


# Adversarial inputs the production path can produce at its edges:
# zero-weight items (a flex grant the job absorbs for free), negative
# values (an extra worker that *lengthens* the estimated JCT under a
# sublinear scaling model), and empty groups (an elastic job whose every
# item was pruned at the capacity bound).
signed_item_strategy = st.builds(
    Item,
    weight=st.integers(min_value=0, max_value=6),
    value=st.floats(min_value=-50.0, max_value=100.0, allow_nan=False),
)
signed_groups_strategy = st.lists(
    st.lists(signed_item_strategy, max_size=4), max_size=4
)


class TestAdversarialInputs:
    @given(groups=signed_groups_strategy, capacity=st.integers(0, 12))
    @settings(max_examples=200, deadline=None)
    def test_dp_matches_bruteforce_with_signed_values(self, groups, capacity):
        dp_value, dp_choices = solve_mckp(groups, capacity)
        bf_value, bf_choices = solve_mckp_bruteforce(groups, capacity)
        assert dp_value == pytest.approx(bf_value)
        for choices, reported in ((dp_choices, dp_value),
                                  (bf_choices, bf_value)):
            value, weight = solution_cost(choices)
            assert weight <= capacity
            assert value == pytest.approx(reported)

    @given(groups=signed_groups_strategy, capacity=st.integers(0, 12))
    @settings(max_examples=100, deadline=None)
    def test_never_worse_than_empty_solution(self, groups, capacity):
        # Taking nothing is always allowed, so negative-value items must
        # never drag the optimum below zero.
        dp_value, _ = solve_mckp(groups, capacity)
        assert dp_value >= 0.0

    def test_zero_weight_positive_item_always_taken(self):
        groups = [[Item(weight=0, value=7.0)]]
        value, choices = solve_mckp(groups, 0)
        assert value == pytest.approx(7.0)
        assert choices[0] is not None

    def test_all_empty_groups(self):
        value, choices = solve_mckp([[], [], []], 5)
        assert value == 0.0
        assert choices == [None, None, None]
        assert solution_cost(choices) == (0.0, 0)
