"""Equivalence: every view backend vs the legacy full-scan path.

The ClusterView refactors must be *observationally invisible*
optimisations: every seeded scenario — one per scheduler family, plus
orchestrated loaning/reclaiming and node-failure runs — must produce a
byte-identical Activity log under all three view backends:

- ``legacy``       recompute everything from scratch each epoch (the
                   pre-refactor behaviour, kept as the reference),
- ``incremental``  delta-maintained :class:`ClusterView`,
- ``array``        the structure-of-arrays mirror
                   (:class:`repro.core.arrays.ArrayClusterView`) plus the
                   vectorized placement/admission/MCKP fast paths.

A golden-log fixture (``tests/data/golden_logs.json``, digests generated
from the legacy path) additionally pins all backends against silent
drift across future changes: regenerate it with
``python -m tests.test_equivalence`` only when a PR *intends* to change
scheduling behaviour.

Set ``REPRO_EQUIV_BACKENDS`` (comma-separated) to restrict the matrix —
the CI golden-equivalence job runs one backend per matrix entry.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.core.orchestrator import ResourceOrchestrator
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.agnostic import LyraAgnosticScheduler
from repro.schedulers.fifo import (
    FIFOScheduler,
    OpportunisticScheduling,
    SJFScheduler,
)
from repro.schedulers.gandiva import GandivaScheduler
from repro.schedulers.lyra import LyraScheduler
from repro.schedulers.pollux import PolluxScheduler
from repro.simulator.simulation import DAY, Simulation, SimulationConfig
from repro.traces.inference import generate_inference_trace
from repro.traces.workload import TraceConfig, generate_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_logs.json"

#: Every view backend that must reproduce the golden logs.
ALL_BACKENDS = ("legacy", "incremental", "array")

#: The subset exercised by this run (CI matrixes over single backends).
BACKENDS = tuple(
    b.strip()
    for b in os.environ.get(
        "REPRO_EQUIV_BACKENDS", ",".join(ALL_BACKENDS)
    ).split(",")
    if b.strip()
)

#: name -> (policy factory, simulation kwargs)
SCENARIOS = {
    "fifo_contention": (FIFOScheduler, {}),
    "sjf": (SJFScheduler, {}),
    "lyra_elastic": (LyraScheduler, {}),
    "lyra_loaning": (LyraScheduler, {"orchestrated": True, "load": 4.0}),
    "lyra_inelastic": (LyraScheduler, {"elastic": False}),
    "gandiva": (GandivaScheduler, {}),
    "afs": (AFSScheduler, {}),
    "pollux_seeded": (
        lambda: PolluxScheduler(generations=10, population=8, seed=1),
        {},
    ),
    "agnostic_loaning": (
        LyraAgnosticScheduler,
        {"orchestrated": True, "load": 4.0},
    ),
    "opportunistic": (
        OpportunisticScheduling,
        {"inference": True, "drain_days": 3.0},
    ),
    "node_failures": (
        LyraScheduler,
        {"orchestrated": True, "node_mtbf": 30000.0, "load": 1.6},
    ),
}


def run_scenario(
    name: str,
    incremental: bool = None,
    obs=None,
    backend: str = None,
    pair_factory=None,
    orchestrator_factory=None,
) -> Simulation:
    """Run one golden scenario under a specific view backend.

    ``backend`` names the view implementation ("legacy", "incremental"
    or "array"); the older ``incremental`` boolean is kept for callers
    predating the array backend and maps onto legacy/incremental.
    ``pair_factory`` / ``orchestrator_factory`` substitute drop-in
    cluster-pair and orchestrator implementations — the market suite
    uses them to pin the degenerate 1×1 ClusterSet + CapacityBroker
    against these same golden digests.
    """
    if backend is None:
        backend = "legacy" if incremental is False else "incremental"
    if pair_factory is None:
        pair_factory = lambda: ClusterPair(  # noqa: E731
            make_training_cluster(6), make_inference_cluster(8)
        )
    if orchestrator_factory is None:
        orchestrator_factory = ResourceOrchestrator
    policy_fn, opts = SCENARIOS[name]
    specs = generate_workload(
        TraceConfig(
            num_jobs=90,
            days=1.0,
            cluster_gpus=48,
            seed=7,
            target_load=opts.get("load", 0.8),
        )
    ).specs
    pair = pair_factory()
    orchestrated = opts.get("orchestrated", False)
    trace = (
        generate_inference_trace(days=2.0, num_servers=8, seed=3)
        if orchestrated or opts.get("inference")
        else None
    )
    config = SimulationConfig(
        record_activities=True,
        view_backend=backend,
        elastic=opts.get("elastic", True),
        node_mtbf=opts.get("node_mtbf"),
        drain_limit=opts.get("drain_days", 30.0) * DAY,
    )
    sim = Simulation(
        specs,
        pair,
        policy_fn(),
        inference_trace=trace,
        orchestrator=orchestrator_factory() if orchestrated else None,
        config=config,
        obs=obs,
    )
    sim.run()
    return sim


def digest(activities) -> str:
    """Canonical, repr-exact digest of an Activity log."""
    h = hashlib.sha256()
    for a in activities:
        h.update(
            f"{a.time!r}|{a.kind.value}|{a.job_id!r}|{a.detail!r}\n".encode()
        )
    return h.hexdigest()


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_backends_produce_identical_logs(name, backend, golden):
    sim = run_scenario(name, backend=backend)
    d = digest(sim.activities)
    entry = golden[name]
    assert len(sim.activities) == entry["events"], (
        f"backend {backend!r}, scenario {name!r}: event count drifted"
    )
    assert d == entry["sha256"], (
        f"backend {backend!r}, scenario {name!r} drifted from the "
        f"committed golden log; if the behaviour change is intentional, "
        f"regenerate the fixture with `python -m tests.test_equivalence`"
    )
    # every backend must be running through the decision-plan core: the
    # byte-identical logs above pin each backend ≡ the legacy reference
    assert sim.executor.plans_applied > 0
    assert sim.executor.plans_rejected == 0
    if backend == "legacy":
        return
    # the fast modes must actually be exercising their machinery
    assert sim.view is not None
    assert getattr(sim.view, "backend", "incremental") == backend
    sim.view.assert_consistent()


def test_tracing_does_not_perturb_the_golden_log(golden):
    """Observability must be read-only: a fully traced run (spans,
    provenance, the lot) still produces the byte-identical Activity log
    pinned by the golden fixture — and the instrumentation is live."""
    from repro.obs import Observability, PROVENANCE_EVENT, SPAN_EVENT

    obs = Observability.enabled()
    sim = run_scenario("lyra_loaning", incremental=True, obs=obs)
    assert digest(sim.activities) == golden["lyra_loaning"]["sha256"]
    names = {e.name for e in obs.tracer.events}
    assert SPAN_EVENT in names
    assert PROVENANCE_EVENT in names


def test_disabled_obs_keeps_golden_log(golden):
    """An explicitly disabled bundle is equivalent to no bundle."""
    from repro.obs import Observability

    obs = Observability.disabled()
    sim = run_scenario("lyra_elastic", incremental=True, obs=obs)
    assert digest(sim.activities) == golden["lyra_elastic"]["sha256"]
    assert len(obs.tracer) == 0
    assert obs.phases.stats() == []


def _regenerate() -> None:
    fixture = {}
    for name in sorted(SCENARIOS):
        sim = run_scenario(name, incremental=False)
        fixture[name] = {
            "events": len(sim.activities),
            "sha256": digest(sim.activities),
        }
        print(f"{name:18s} {fixture[name]['events']:6d} events "
              f"{fixture[name]['sha256'][:16]}")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as fh:
        json.dump(fixture, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate()
