"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import Job, JobSpec
from repro.scenarios import ExperimentSetup
from repro.traces.inference import generate_inference_trace
from repro.traces.workload import TraceConfig, generate_workload


def make_job(
    job_id: int = 0,
    submit_time: float = 0.0,
    duration: float = 100.0,
    max_workers: int = 2,
    min_workers: int = 0,
    gpus_per_worker: int = 1,
    **kwargs,
) -> Job:
    """Terse Job factory used throughout the tests."""
    return Job(
        JobSpec(
            job_id=job_id,
            submit_time=submit_time,
            duration=duration,
            max_workers=max_workers,
            min_workers=min_workers,
            gpus_per_worker=gpus_per_worker,
            **kwargs,
        )
    )


@pytest.fixture
def small_pair() -> ClusterPair:
    """4 training + 4 inference servers of 8 GPUs each."""
    return ClusterPair(
        make_training_cluster(4), make_inference_cluster(4)
    )


@pytest.fixture
def tiny_setup() -> ExperimentSetup:
    """A fast end-to-end setup: ~120 jobs over one day on 8+10 servers."""
    config = TraceConfig(
        num_jobs=120, days=1.0, cluster_gpus=64, seed=7, target_load=0.9
    )
    return ExperimentSetup(
        workload=generate_workload(config),
        inference_trace=generate_inference_trace(
            days=2.0, num_servers=10, seed=7
        ),
        training_servers=8,
        inference_servers=10,
    )
