"""Setup shim for environments without the `wheel` package (offline)."""

from setuptools import setup

setup()
