#!/usr/bin/env python3
"""Quickstart: schedule a synthetic workload with Lyra and compare it to
the FIFO baseline.

Builds a small training + inference cluster pair, generates a calibrated
one-day trace, runs the Baseline FIFO scheduler and the full Lyra system
(capacity loaning + elastic scaling), and prints the headline metrics the
paper reports: queuing time, JCT, GPU usage, and preemption ratio.

Run:  python examples/quickstart.py
"""

from repro import default_setup, run_scheme
from repro.simulator.metrics import reduction


def main() -> None:
    # A scaled-down analogue of the paper's clusters: 16 training and 20
    # inference 8-GPU servers, ~400 jobs over one day at high load.
    setup = default_setup(
        num_jobs=400,
        days=1.0,
        training_servers=16,
        inference_servers=20,
        seed=1,
        target_load=1.0,
    )
    workload = setup.workload
    print(
        f"workload: {len(workload.specs)} jobs over "
        f"{workload.config.days:.0f} day(s), offered load "
        f"{workload.offered_load():.2f}, elastic share "
        f"{workload.elastic_share():.0%}, fungible jobs "
        f"{workload.fungible_fraction():.0%}"
    )

    baseline = run_scheme(setup, "baseline")
    lyra = run_scheme(setup, "lyra")

    print(f"\n{'metric':<28}{'Baseline':>12}{'Lyra':>12}")
    rows = [
        ("mean queuing time (s)",
         baseline.queuing_summary().mean, lyra.queuing_summary().mean),
        ("95%ile queuing time (s)",
         baseline.queuing_summary().p95, lyra.queuing_summary().p95),
        ("mean JCT (s)",
         baseline.jct_summary().mean, lyra.jct_summary().mean),
        ("95%ile JCT (s)",
         baseline.jct_summary().p95, lyra.jct_summary().p95),
        ("training GPU usage",
         baseline.training_usage.mean(), lyra.training_usage.mean()),
        ("overall GPU usage",
         baseline.overall_usage.mean(), lyra.overall_usage.mean()),
        ("preemption ratio",
         baseline.preemption_ratio, lyra.preemption_ratio),
    ]
    for name, base, ours in rows:
        print(f"{name:<28}{base:>12,.2f}{ours:>12,.2f}")

    print(
        f"\nLyra reductions vs Baseline: "
        f"{reduction(baseline.queuing_summary().mean, lyra.queuing_summary().mean):.2f}x queuing, "
        f"{reduction(baseline.jct_summary().mean, lyra.jct_summary().mean):.2f}x JCT "
        f"(paper: 1.53x / 1.48x at full scale)"
    )
    print(
        f"loan operations: {len(lyra.loan_ops)}, "
        f"reclaim operations: {len(lyra.reclaim_ops)}, "
        f"elastic scale operations: {lyra.scale_ops}"
    )


if __name__ == "__main__":
    main()
