#!/usr/bin/env python3
"""Observability tour: trace a Lyra run, then mine the event stream.

Runs a small loaning-heavy scenario with the full observability bundle
attached, exports the structured event trace (JSONL + Chrome formats),
prints the ``repro inspect`` report, and shows how to answer ad-hoc
questions directly from the in-memory event list — here, "which reclaim
operations actually preempted somebody, and what did they cost?".

Run:  python examples/trace_inspection_demo.py
"""

import json
import tempfile
from pathlib import Path

from repro import default_setup, run_scheme
from repro.obs import Observability, inspect_trace


def main() -> None:
    # A small cluster under pressure so reclaims have to preempt.
    setup = default_setup(
        num_jobs=200,
        days=1.0,
        training_servers=8,
        inference_servers=10,
        seed=5,
        target_load=1.1,
    )
    obs = Observability.enabled()
    metrics = run_scheme(setup, "lyra_loaning", obs=obs)
    print(
        f"simulated {len(metrics.jobs)} jobs; tracer captured "
        f"{len(obs.tracer)} events across "
        f"{len({e.name for e in obs.tracer.events})} event types"
    )

    out_dir = Path(tempfile.mkdtemp(prefix="lyra-trace-"))
    jsonl = out_dir / "trace.jsonl"
    chrome = out_dir / "trace_chrome.json"
    obs.export_trace(str(jsonl))
    obs.export_trace(str(chrome), format="chrome")
    print(f"wrote {jsonl} (JSONL) and {chrome} (load the latter in "
          f"about://tracing or https://ui.perfetto.dev)\n")

    # The same report `python -m repro inspect trace.jsonl` prints.
    print(inspect_trace(str(jsonl)))

    # Ad-hoc mining: costly reclaims, straight off the event objects.
    print("\n== reclaims that preempted jobs ==")
    costly = [
        e for e in obs.tracer.events
        if e.name == "orchestrator.reclaim" and e.args.get("preempted")
    ]
    if not costly:
        print("  none — every reclaim was satisfied from FLEX groups")
    for event in costly:
        print(
            f"  t={event.ts / 3600.0:6.2f}h  servers={event.args['servers']}"
            f"  preempted jobs={event.args['preempted']}"
            f"  collateral={event.args.get('collateral', 0.0):.3f}"
        )

    # The first few raw JSONL records, to show the schema.
    print("\n== first three trace records ==")
    with open(jsonl) as fh:
        for _, line in zip(range(3), fh):
            print(" ", json.dumps(json.loads(line), sort_keys=True))


if __name__ == "__main__":
    main()
