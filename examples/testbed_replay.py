#!/usr/bin/env python3
"""Replay the paper's 64-GPU testbed experiment (§7.5) in simulation.

Four 8-GPU V100 training servers + four 8-GPU T4 inference servers, 180
jobs (10 elastic) submitted over 8 hours with running times between two
minutes and two hours.  The §7.2 calibration showed the simulator tracks
the real testbed within ~6 % on these workloads.

Run:  python examples/testbed_replay.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_table10_fig17_testbed import testbed_setup  # noqa: E402
from repro.scenarios import run_scheme  # noqa: E402


def main() -> None:
    setup = testbed_setup(seed=7)
    workload = setup.workload
    elastic = sum(1 for s in workload.specs if s.elastic)
    durations = [s.duration for s in workload.specs]
    print(
        f"testbed workload: {len(workload.specs)} jobs ({elastic} elastic), "
        f"running times {min(durations) / 60:.0f}-{max(durations) / 60:.0f} "
        f"minutes, submitted over {workload.config.days * 24:.0f} hours"
    )
    print(
        f"clusters: {setup.training_servers}x8 V100 training + "
        f"{setup.inference_servers}x8 T4 inference\n"
    )

    print(f"{'scheme':<12}{'q mean':>9}{'q med':>9}{'q p95':>9}"
          f"{'jct mean':>10}{'jct med':>10}{'preempt':>9}")
    results = {}
    for name, scheme in [
        ("Baseline", "baseline"),
        ("Lyra", "lyra"),
        ("Random", "random_loaning"),
        ("SCF", "scf_loaning"),
        ("CL-Lyra", "lyra_loaning"),
        ("Gandiva", "gandiva"),
        ("AFS", "afs"),
        ("ES-Lyra", "lyra_scaling"),
    ]:
        metrics = run_scheme(setup, scheme)
        results[name] = metrics
        q = metrics.queuing_summary()
        j = metrics.jct_summary()
        print(f"{name:<12}{q.mean:>9,.0f}{q.median:>9,.0f}{q.p95:>9,.0f}"
              f"{j.mean:>10,.0f}{j.median:>10,.0f}"
              f"{metrics.preemption_ratio:>9.1%}")

    lyra = results["Lyra"]
    base = results["Baseline"]
    print(
        f"\nLyra vs Baseline: "
        f"{base.queuing_summary().mean / lyra.queuing_summary().mean:.2f}x "
        f"queuing, "
        f"{base.jct_summary().mean / lyra.jct_summary().mean:.2f}x JCT "
        f"(paper testbed: 1.38x / 1.22x)"
    )
    print(
        f"orchestrator activity: {len(lyra.loan_ops)} loans, "
        f"{len(lyra.reclaim_ops)} reclaims, {lyra.scale_ops} scale ops "
        f"(paper: 6 loans, 8 reclaims, 73 scale ops)"
    )


if __name__ == "__main__":
    main()
