#!/usr/bin/env python3
"""Train the §6 LSTM usage predictor and use it for early reclaiming.

Trains the from-scratch NumPy LSTM (window 10, two hidden layers, Adam,
MSE) on a synthetic inference-utilization trace, shows its next-interval
predictions against the ground truth, and compares a reactive Lyra run
with one whose orchestrator reclaims ahead of predicted traffic rises.

Run:  python examples/predictor_demo.py
"""

import numpy as np

from repro import default_setup, run_scheme
from repro.predictor.predictor import UsagePredictor


def main() -> None:
    setup = default_setup(
        num_jobs=300,
        days=1.5,
        training_servers=12,
        inference_servers=16,
        seed=2,
        target_load=1.0,
    )
    trace = setup.inference_trace

    predictor = UsagePredictor(window=10, hidden_dim=16, lr=1e-2, seed=0)
    print("training the LSTM predictor ...")
    history = predictor.fit_trace(trace, epochs=10, max_samples=800)
    print(f"  epoch 1 MSE {history[0]:.5f} -> epoch {len(history)} "
          f"MSE {history[-1]:.5f} (paper reports 4.8e-4)")

    print("\nnext-interval predictions vs truth (5-minute samples):")
    util = np.asarray(trace.utilization)
    for start in range(200, 260, 12):
        window = util[start : start + 10]
        truth = util[start + 10]
        predicted = predictor.predict_next(window)
        print(f"  t={start * 5:>5} min  predicted {predicted:.3f}  "
              f"actual {truth:.3f}  error {abs(predicted - truth):.3f}")

    print("\nrunning Lyra reactive vs predictive ...")
    reactive = run_scheme(setup, "lyra")
    predictive = run_scheme(setup, "lyra", predictor=predictor)
    print(f"  reactive:   preemption ratio "
          f"{reactive.preemption_ratio:.2%}, mean JCT "
          f"{reactive.jct_summary().mean:,.0f}s")
    print(f"  predictive: preemption ratio "
          f"{predictive.preemption_ratio:.2%}, mean JCT "
          f"{predictive.jct_summary().mean:,.0f}s")
    print("\npredictive reclaiming lets the orchestrator shrink loans "
          "before the inference peak instead of during it.")


if __name__ == "__main__":
    main()
