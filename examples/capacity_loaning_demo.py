#!/usr/bin/env python3
"""Capacity loaning in action: watch idle inference servers flow to the
training cluster overnight and return for the traffic peak.

This example drives the resource orchestrator directly against a diurnal
inference trace and prints an hour-by-hour ASCII strip chart of inference
utilization vs loaned servers, followed by the reclaiming statistics —
including how often elastic scale-in alone satisfied the reclaim demand
(§5.3's flexible server group at work).

Run:  python examples/capacity_loaning_demo.py
"""

from repro import default_setup
from repro.core.orchestrator import ResourceOrchestrator
from repro.scenarios import apply_scenario, make_policy
from repro.simulator.simulation import Simulation, SimulationConfig


def strip(value: float, width: int = 24) -> str:
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    setup = default_setup(
        num_jobs=500,
        days=2.0,
        training_servers=16,
        inference_servers=20,
        seed=3,
        target_load=1.05,
    )
    pair = setup.make_pair()
    orchestrator = ResourceOrchestrator(reclaimer="lyra")
    sim = Simulation(
        apply_scenario(setup.workload.specs, "basic"),
        pair,
        make_policy("lyra"),
        inference_trace=setup.inference_trace,
        orchestrator=orchestrator,
        config=SimulationConfig(elastic=True),
    )

    timeline = []

    def probe() -> None:
        util = setup.inference_trace.utilization_at(sim.now)
        loaned = pair.loaned_count
        busy = sum(1 for s in pair.training.on_loan_servers if not s.idle)
        timeline.append((sim.now, util, loaned, busy, len(sim.pending)))
        if sim.pending or sim.running or sim.now < sim._last_arrival:
            sim.engine.schedule_after(3600.0, probe)

    sim.engine.schedule(0.0, probe)
    metrics = sim.run()

    print("hour  inference utilization      loaned busy pending")
    for now, util, loaned, busy, pending in timeline[:48]:
        print(
            f"{now / 3600:>4.0f}  [{strip(util)}] {util:.2f} "
            f"{loaned:>5} {busy:>4} {pending:>7}"
        )

    print(
        f"\nloan ops: {len(metrics.loan_ops)} "
        f"(moved {sum(metrics.loan_ops)} servers), "
        f"reclaim ops: {len(metrics.reclaim_ops)} "
        f"(returned {sum(metrics.reclaim_ops)} servers)"
    )
    print(
        f"preemptions: {metrics.preemptions} "
        f"({metrics.preemption_ratio:.1%} of submissions); "
        f"reclaim demand satisfied by the flexible group alone: "
        f"{metrics.mean_flex_satisfied():.0%} on average"
    )
    print(
        f"mean collateral damage: {metrics.mean_collateral():.2f} "
        f"of each reclaim demand"
    )
    if metrics.onloan_busy.values:
        print(
            f"on-loan server occupancy while loaned: "
            f"{metrics.onloan_busy.mean():.0%}"
        )


if __name__ == "__main__":
    main()
