#!/usr/bin/env python3
"""Elastic scheduling shoot-out: Lyra vs Gandiva, AFS and Pollux.

Reproduces the §7.4 setting — elastic scaling without capacity loaning —
on a synthetic trace where elastic jobs dominate, and prints the queuing
and JCT distributions per scheme, plus the two-job worked examples from
Tables 2-4 that motivate Lyra's two-phase design.

Run:  python examples/elastic_scaling_comparison.py
"""

from repro import default_setup, run_scheme
from repro.cluster.job import Job, JobSpec
from repro.core.allocation import Pools, allocate_two_phase
from repro.scenarios import apply_scenario, with_elastic_fraction


def worked_example() -> None:
    """The Table 4 instance: SJF would favour job B, but favouring job A
    is better for average JCT — Lyra's MCKP finds it."""
    print("Worked example (paper Table 4, 8 GPUs):")
    job_a = Job(JobSpec(job_id=1, submit_time=0, duration=100,
                        max_workers=3, min_workers=2, gpus_per_worker=2,
                        elastic=True))
    job_b = Job(JobSpec(job_id=2, submit_time=0, duration=20,
                        max_workers=6, min_workers=2, gpus_per_worker=1,
                        elastic=True))
    decision = allocate_two_phase([job_a, job_b], [], Pools(training=8))
    extra_a = decision.flex[1]
    extra_b = decision.flex[2]
    print("  base demands admitted: A=2 workers, B=2 workers")
    print(f"  phase-two grants: A +{extra_a} worker(s), B +{extra_b}")
    jct_a = job_a.remaining_time_at(2 + extra_a)
    jct_b = job_b.remaining_time_at(2 + extra_b)
    print(f"  projected running times: A {jct_a:.1f}s, B {jct_b:.1f}s "
          f"(favouring A wins, avg JCT 62 vs 63.3 in the paper)\n")


def main() -> None:
    worked_example()

    setup = default_setup(
        num_jobs=400,
        days=1.5,
        training_servers=16,
        inference_servers=16,
        seed=5,
        target_load=1.0,
    )
    # 60 % of jobs elastic: deep into the Figs. 14-15 sweep where the
    # schedulers separate clearly.
    specs = with_elastic_fraction(
        apply_scenario(setup.workload.specs, "basic"), 0.6, seed=5
    )

    print(f"{'scheme':<16}{'q mean':>9}{'q p95':>9}"
          f"{'jct mean':>10}{'jct p95':>10}{'scale ops':>10}")
    results = {}
    for name, scheme in [
        ("Baseline", "baseline"),
        ("Gandiva", "gandiva"),
        ("AFS", "afs"),
        ("Pollux", "pollux"),
        ("Lyra", "lyra_scaling"),
        ("Lyra+Tuned", "lyra_tuned"),
    ]:
        metrics = run_scheme(setup, scheme, specs=specs)
        results[name] = metrics
        q = metrics.queuing_summary()
        j = metrics.jct_summary()
        print(f"{name:<16}{q.mean:>9,.0f}{q.p95:>9,.0f}"
              f"{j.mean:>10,.0f}{j.p95:>10,.0f}{metrics.scale_ops:>10}")

    base_jct = results["Baseline"].jct_summary().mean
    lyra_jct = results["Lyra"].jct_summary().mean
    print(f"\nLyra JCT reduction over Baseline: {base_jct / lyra_jct:.2f}x")


if __name__ == "__main__":
    main()
