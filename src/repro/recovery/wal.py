"""Write-ahead plan journal.

Every committed :class:`~repro.core.actions.EpochPlan` is appended here
*before* its first action mutates any state, so a crash anywhere during
commit leaves a durable record of intent.  On recovery the simulator
re-derives the same plans deterministically; the journal's job is then
verification, not replay-of-effects:

* a re-derived plan whose ``plan_id`` is already journaled must match
  the stored digest — mismatch means the recovered run diverged and is
  a hard :class:`WALError`;
* a matching re-append is recorded as an explicit ``noop`` entry (the
  audit trail shows the plan was observed twice) and counted in the
  ``recovery.wal_entries_replayed`` metric — it is *not* written as a
  second plan record, so replaying an already-applied plan can never
  double-commit.

The format is append-only JSONL, fsynced per entry.  A torn final line
(the crash landed mid-write) is tolerated and dropped on load; a torn
line anywhere else means outside interference and is an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union


class WALError(RuntimeError):
    """The journal is corrupt, or a replayed plan diverged from it."""


def plan_digest(record: dict) -> str:
    """Canonical content digest of a journaled plan record.

    Computed over the sorted-keys JSON of the record minus its own
    ``digest`` field, so the digest is stable regardless of field order
    or when it was (re)computed.
    """
    stripped = {k: v for k, v in record.items() if k != "digest"}
    blob = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class PlanWAL:
    """Append-only, fsynced journal of committed epoch plans."""

    def __init__(self, path: Union[str, Path], registry=None):
        self.path = Path(path)
        self.registry = registry
        self.appended = 0
        self.replayed = 0
        self._digests: Dict[int, str] = {}
        self._fh = None
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        raw = self.path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for i, line in enumerate(lines):
            try:
                record = json.loads(line)
            except ValueError as exc:
                if i == len(lines) - 1:
                    # torn tail from a crash mid-append: drop it; the
                    # plan it described was never committed
                    break
                raise WALError(
                    f"{self.path}: corrupt journal entry at line {i + 1}"
                ) from exc
            kind = record.get("type")
            plan_id = record.get("plan_id")
            if not isinstance(plan_id, int):
                raise WALError(
                    f"{self.path}: line {i + 1} has no integer plan_id"
                )
            if kind == "plan":
                stored = record.get("digest")
                if stored != plan_digest(record):
                    raise WALError(
                        f"{self.path}: plan {plan_id} fails its digest "
                        "check (journal corrupt)"
                    )
                if plan_id in self._digests:
                    raise WALError(
                        f"{self.path}: plan {plan_id} journaled twice"
                    )
                self._digests[plan_id] = stored
            elif kind == "noop":
                known = self._digests.get(plan_id)
                if known is None or known != record.get("digest"):
                    raise WALError(
                        f"{self.path}: noop entry for plan {plan_id} does "
                        "not match a journaled plan"
                    )
            else:
                raise WALError(
                    f"{self.path}: unknown journal entry type {kind!r}"
                )

    # ------------------------------------------------------------------
    @property
    def plan_ids(self) -> List[int]:
        return sorted(self._digests)

    def last_plan_id(self) -> Optional[int]:
        return max(self._digests) if self._digests else None

    def digest_of(self, plan_id: int) -> Optional[str]:
        return self._digests.get(plan_id)

    # ------------------------------------------------------------------
    def append(self, plan_id: int, plan) -> str:
        """Journal a plan about to be committed.

        Returns ``"appended"`` for a new plan, ``"replayed"`` when the
        plan was already journaled (recovery re-deriving the window
        between snapshot and crash) — in which case only an audit noop
        is written.  Divergence raises :class:`WALError`.
        """
        record = dict(plan.to_dict())
        record["type"] = "plan"
        record["plan_id"] = plan_id
        digest = plan_digest(record)
        known = self._digests.get(plan_id)
        if known is not None:
            if known != digest:
                raise WALError(
                    f"recovered run diverged: plan {plan_id} digest "
                    f"{digest[:12]} != journaled {known[:12]}"
                )
            self._write({"type": "noop", "plan_id": plan_id, "digest": digest})
            self.replayed += 1
            if self.registry is not None:
                self.registry.counter("recovery.wal_entries_replayed").inc()
            return "replayed"
        record["digest"] = digest
        self._write(record)
        self._digests[plan_id] = digest
        self.appended += 1
        return "appended"

    def _write(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
