"""Durable state: snapshots, a write-ahead plan journal, and recovery.

The simulator's entire run state is in-memory; this package makes it
survive process death.  Three pieces (docs/ROBUSTNESS.md):

* :class:`~repro.recovery.codec.SnapshotCodec` — versioned, checksummed
  serialization of the full simulation state (jobs, clusters, loans,
  view, executor counters, fault-injector RNG streams, the event queue
  as tagged descriptors, metrics, activities);
* :class:`~repro.recovery.wal.PlanWAL` — an append-only, fsynced JSONL
  journal of every committed :class:`~repro.core.actions.EpochPlan`,
  written *before* the plan's effects land;
* :class:`~repro.recovery.manager.RecoveryManager` — checkpoints a run
  every N simulated seconds between engine events, and restores the
  latest valid snapshot + WAL so a killed run resumes byte-identical to
  the uninterrupted one.

A simulation with ``sim.recovery is None`` (the default) never imports
this package and takes the exact pre-recovery code path.
"""

from repro.recovery.codec import SCHEMA_VERSION, SnapshotCodec, SnapshotError
from repro.recovery.manager import RecoveryError, RecoveryManager
from repro.recovery.state import capture_payload, event_resolver, restore_payload
from repro.recovery.wal import PlanWAL, WALError

__all__ = [
    "PlanWAL",
    "RecoveryError",
    "RecoveryManager",
    "SCHEMA_VERSION",
    "SnapshotCodec",
    "SnapshotError",
    "WALError",
    "capture_payload",
    "event_resolver",
    "restore_payload",
]
