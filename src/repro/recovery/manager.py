"""Checkpointing run loop and crash recovery.

A :class:`RecoveryManager` owns a checkpoint directory::

    recovery.json          manifest (schema, cadence)
    wal.jsonl              write-ahead plan journal
    snapshot-000001.ckpt   full-state snapshots, monotonically numbered
    snapshot-000002.ckpt
    ...

Attached to a simulation (``sim.recovery = manager``), it replaces the
engine's one-shot ``run(until)`` with a stepped loop that snapshots the
full run state every ``checkpoint_every`` simulated seconds — always
*between* engine events, so checkpointing never perturbs event order and
a checkpointed run stays byte-identical to a plain one.

Recovery (:meth:`RecoveryManager.recover`) loads the newest snapshot
that passes its checksum (falling back past torn ones), rewires it, and
resumes.  Because the simulator is deterministic, the window between the
snapshot and the crash is simply re-executed; the WAL verifies that
every re-derived plan in that window matches what the dead process had
already journaled (see :mod:`repro.recovery.wal`).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Union

from repro.faults.crash import BARRIER_BETWEEN_EVENTS, CrashInjector
from repro.ioutil import atomic_write_text
from repro.recovery.codec import SCHEMA_VERSION, SnapshotCodec, SnapshotError
from repro.recovery.state import capture_payload, restore_payload
from repro.recovery.wal import PlanWAL

MANIFEST_NAME = "recovery.json"
WAL_NAME = "wal.jsonl"
SNAPSHOT_GLOB = "snapshot-*.ckpt"


class RecoveryError(RuntimeError):
    """Recovery is impossible: no usable snapshot, or a bad directory."""


def _snapshot_path(directory: Path, seq: int) -> Path:
    return directory / f"snapshot-{seq:06d}.ckpt"


def _snapshot_seq(path: Path) -> int:
    return int(path.stem.split("-", 1)[1])


class RecoveryManager:
    """Checkpoints a running simulation and restores killed ones."""

    def __init__(
        self,
        directory: Union[str, Path],
        checkpoint_every: float = 600.0,
        crash: Optional[CrashInjector] = None,
    ):
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        self.directory = Path(directory)
        self.checkpoint_every = float(checkpoint_every)
        self.crash = crash
        self.wal: Optional[PlanWAL] = None
        self.checkpoints = 0
        self.last_snapshot_bytes = 0
        self._sim = None
        self._snapshot_seq = 0
        self._next_checkpoint: Optional[float] = None

    # ------------------------------------------------------------------
    def attach(self, sim) -> None:
        """Wire this manager into ``sim`` and make the directory live."""
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = sorted(self.directory.glob(SNAPSHOT_GLOB))
        if existing:
            self._snapshot_seq = max(
                self._snapshot_seq, _snapshot_seq(existing[-1])
            )
        self._sim = sim
        self.wal = PlanWAL(self.directory / WAL_NAME, registry=sim.obs.registry)
        sim.recovery = self
        sim.executor.wal = self.wal
        self._install_crash_probe()
        atomic_write_text(
            self.directory / MANIFEST_NAME,
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "checkpoint_every": self.checkpoint_every,
                },
                sort_keys=True,
            )
            + "\n",
        )

    def _install_crash_probe(self) -> None:
        sim = self._sim
        if sim is None:
            return
        if self.crash is None:
            sim.executor.crash_probe = None
        else:
            crash = self.crash
            engine = sim.engine
            sim.executor.crash_probe = (
                lambda barrier: crash.maybe_fire(barrier, engine.now)
            )

    def arm_crash(self, crash: Optional[CrashInjector]) -> None:
        """(Re-)arm a crash schedule; used by in-process chaos harnesses
        after each recovery to install the surviving kill points."""
        self.crash = crash
        self._install_crash_probe()

    # ------------------------------------------------------------------
    def run_loop(self, sim, deadline: Optional[float]) -> None:
        """The checkpointed replacement for ``engine.run(until)``."""
        engine = sim.engine
        engine.begin()
        if self._next_checkpoint is None:
            self._next_checkpoint = engine.now + self.checkpoint_every
        while True:
            if self.crash is not None:
                self.crash.maybe_fire(BARRIER_BETWEEN_EVENTS, engine.now)
            if not engine.step(deadline):
                break
            if engine.now >= self._next_checkpoint:
                self.checkpoint(sim)
                self._next_checkpoint = engine.now + self.checkpoint_every
        engine.finish(deadline)

    def checkpoint(self, sim) -> Path:
        """Snapshot ``sim`` to the next numbered file; returns its path."""
        payload = capture_payload(sim)
        self._snapshot_seq += 1
        path = _snapshot_path(self.directory, self._snapshot_seq)
        size = SnapshotCodec.dump(payload, path)
        self.checkpoints += 1
        self.last_snapshot_bytes = size
        registry = sim.obs.registry
        registry.counter("recovery.checkpoints").inc()
        registry.gauge("recovery.snapshot_bytes").set(size)
        # emitted after capture: the snapshot does not contain the trace
        # of its own creation
        sim.trace(
            "recovery.checkpoint", seq=self._snapshot_seq, snapshot_bytes=size
        )
        return path

    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, directory: Union[str, Path]):
        """Restore the newest usable snapshot in ``directory``.

        Returns the revived simulation, with a fresh manager already
        attached as ``sim.recovery`` — call ``sim.resume()`` to continue
        the run.  Snapshots that fail their checksum (a crash can tear
        at any byte) are skipped in favour of the previous one.
        """
        t0 = time.perf_counter()
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise RecoveryError(f"{directory} is not a recovery directory")
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise RecoveryError(f"unreadable manifest: {exc}") from exc
        if manifest.get("schema") != SCHEMA_VERSION:
            raise RecoveryError(
                f"recovery directory schema {manifest.get('schema')!r} "
                f"does not match this build (schema {SCHEMA_VERSION})"
            )

        snapshots = sorted(directory.glob(SNAPSHOT_GLOB))
        if not snapshots:
            raise RecoveryError(
                f"{directory} has no snapshots; the run died before its "
                "first checkpoint — rerun from the start"
            )
        payload = None
        used = None
        skipped = 0
        for path in reversed(snapshots):
            try:
                payload = SnapshotCodec.load(path)
                used = path
                break
            except SnapshotError:
                skipped += 1
        if payload is None:
            raise RecoveryError(
                f"all {len(snapshots)} snapshots in {directory} are corrupt"
            )

        sim = restore_payload(payload)
        manager = cls(
            directory,
            checkpoint_every=float(
                manifest.get("checkpoint_every", 600.0)
            ),
        )
        manager._snapshot_seq = _snapshot_seq(used)
        manager.attach(sim)

        registry = sim.obs.registry
        registry.counter("recovery.recoveries").inc()
        registry.histogram("recovery.time_to_recover_s").observe(
            time.perf_counter() - t0
        )
        wal_ahead = sum(
            1
            for pid in manager.wal.plan_ids
            if pid > sim.executor.plans_applied
        )
        sim.trace(
            "recovery.resumed",
            snapshot=used.name,
            snapshots_skipped=skipped,
            sim_time=sim.engine.now,
            wal_plans_ahead=wal_ahead,
        )
        return sim
