"""Full-run state capture and restore.

The simulation object graph is pickled *whole* — jobs, clusters, loans,
view, executor, metrics, activities, fault-injector RNG streams — so
every cross-reference survives by construction.  Three things cannot be
pickled and are handled explicitly:

* the engine heap holds closures → serialized as tagged ``(when, seq,
  tag)`` descriptors (see :mod:`repro.simulator.engine`) and resolved
  back to callbacks against the restored simulation by
  :func:`event_resolver`;
* closure-valued hooks (fault launch gate, predictor fault wrappers,
  the profiler's clock) → stripped before pickling and re-installed by
  :func:`restore_payload` / :meth:`FaultInjector.rewire`, reading their
  restored RNG streams so draws continue exactly;
* the module-level container-id counter → captured by value.

Capture happens only *between* engine events, when no plan transaction
is open — asserted, not assumed.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict

from repro.recovery.codec import SnapshotError
from repro.rm.containers import container_id_state, set_container_id_state

#: payload schema keys, documented in docs/ROBUSTNESS.md
PAYLOAD_KEYS = ("sim", "container_seq")


def event_resolver(sim) -> Callable[[tuple], Callable[[], None]]:
    """Map a restored event tag back to a live callback on ``sim``."""

    def resolve(tag: tuple) -> Callable[[], None]:
        head = tag[0]
        if head == "arrival":
            return sim._arrival(sim.jobs[tag[1]])
        if head == "completion":
            return sim._completion(sim.jobs[tag[1]], tag[2])
        if head == "tick":
            return sim._schedule_tick
        if head == "heartbeat":
            return sim._heartbeat
        if head == "sampler":
            return sim._sampler
        if head == "orch":
            return sim._orchestrator_tick
        if head == "node_recovery":
            return lambda sid=tag[1]: sim._node_recovery(sid)
        if head == "fault":
            if sim.fault_injector is None:
                raise SnapshotError(
                    f"fault event {tag!r} restored without a fault injector"
                )
            return sim.fault_injector.resolve_tag(tag)
        raise SnapshotError(f"unknown event tag {tag!r}")

    return resolve


def capture_payload(sim) -> Dict[str, Any]:
    """Snapshot a quiescent simulation into a codec-ready payload.

    The live simulation is left exactly as it was: stripped hooks are
    re-attached (closure hooks are pure functions of plan + RNG state,
    so re-created ones behave identically) before returning.
    """
    if sim.rm.journal is not None:
        raise SnapshotError(
            "cannot snapshot with an open plan transaction; snapshots "
            "happen between engine events only"
        )
    if sim.executor.in_flight:
        raise SnapshotError("cannot snapshot mid plan-commit")
    injector = sim.fault_injector
    if injector is None and sim.rm.launch_gate is not None:
        raise SnapshotError(
            "a custom launch_gate closure is installed; only fault-plan "
            "launch gates can be serialized (they are re-derived from the "
            "plan on restore)"
        )

    saved = []

    def detach(obj, attr, value=None):
        saved.append((obj, attr, getattr(obj, attr)))
        setattr(obj, attr, value)

    # durable-state machinery never snapshots itself
    detach(sim, "recovery")
    detach(sim.executor, "wal")
    detach(sim.executor, "crash_probe")
    # live event feeds (the serving daemon's subscriber fan-out) are
    # process-local closures, re-attached by the daemon on restore
    detach(sim, "activity_sink")
    # the profiler clock is a closure over the engine; re-bound on restore
    detach(sim.obs.phases, "clock")
    # conformance probes are harness-side observers, not run state
    if getattr(sim.policy, "conformance_probe", None) is not None:
        detach(sim.policy, "conformance_probe")
    if injector is not None:
        injector.strip_for_snapshot()
    try:
        # round-trip through pickle so the payload is detached from the
        # live objects (the caller may keep mutating the simulation)
        blob = pickle.dumps(
            {"sim": sim, "container_seq": container_id_state()},
            protocol=4,
        )
    finally:
        for obj, attr, value in reversed(saved):
            setattr(obj, attr, value)
        if injector is not None:
            injector.rewire()
    return pickle.loads(blob)


def restore_payload(payload: Dict[str, Any]):
    """Bring a decoded payload back to life; returns the simulation.

    Rewires everything :func:`capture_payload` stripped: the engine heap
    (tags → callbacks), the profiler clock, and the fault injector's
    closure hooks.  The caller (normally the
    :class:`~repro.recovery.manager.RecoveryManager`) re-attaches the
    durable-state machinery before resuming.
    """
    for key in PAYLOAD_KEYS:
        if key not in payload:
            raise SnapshotError(f"snapshot payload missing {key!r}")
    sim = payload["sim"]
    set_container_id_state(payload["container_seq"])
    sim.engine.rebind(event_resolver(sim))
    phases = sim.obs.phases
    if phases.tracer is not None:
        phases.clock = lambda: sim.engine.now
    if sim.fault_injector is not None:
        sim.fault_injector.rewire()
    return sim
