"""Snapshot serialization: versioned, checksummed, atomic.

A snapshot file is::

    MAGIC (10 bytes) | header length (4 bytes, big-endian) |
    header (JSON: schema version, sha256, payload size) |
    payload (pickle protocol 4)

The checksum covers the payload, so torn or bit-rotted snapshots are
detected at load time and the recovery manager falls back to the
previous one.  The schema version gates pickle compatibility: a codec
refuses payloads written by a different schema rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Dict, Union

from repro.ioutil import atomic_write_bytes

MAGIC = b"REPROSNAP\x00"
SCHEMA_VERSION = 1

#: pinned pickle protocol: snapshots written on 3.9 load on 3.12
_PICKLE_PROTOCOL = 4


class SnapshotError(RuntimeError):
    """A snapshot file is missing, torn, corrupt, or from another schema."""


class SnapshotCodec:
    """Encodes/decodes snapshot payloads with integrity checking."""

    version = SCHEMA_VERSION

    @staticmethod
    def encode(payload: Dict[str, Any]) -> bytes:
        blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        header = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "sha256": hashlib.sha256(blob).hexdigest(),
                "payload_bytes": len(blob),
            },
            sort_keys=True,
        ).encode("utf-8")
        return MAGIC + len(header).to_bytes(4, "big") + header + blob

    @staticmethod
    def decode(data: bytes) -> Dict[str, Any]:
        if not data.startswith(MAGIC):
            raise SnapshotError("bad magic: not a repro snapshot")
        offset = len(MAGIC)
        if len(data) < offset + 4:
            raise SnapshotError("truncated snapshot header length")
        header_len = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        raw_header = data[offset:offset + header_len]
        if len(raw_header) < header_len:
            raise SnapshotError("truncated snapshot header")
        try:
            header = json.loads(raw_header.decode("utf-8"))
        except ValueError as exc:
            raise SnapshotError(f"unreadable snapshot header: {exc}") from exc
        if header.get("schema") != SCHEMA_VERSION:
            raise SnapshotError(
                f"snapshot schema {header.get('schema')!r} does not match "
                f"this codec (schema {SCHEMA_VERSION})"
            )
        blob = data[offset + header_len:]
        if len(blob) != header.get("payload_bytes"):
            raise SnapshotError(
                f"snapshot payload is {len(blob)} bytes, header promised "
                f"{header.get('payload_bytes')}"
            )
        digest = hashlib.sha256(blob).hexdigest()
        if digest != header.get("sha256"):
            raise SnapshotError("snapshot checksum mismatch: payload corrupt")
        return pickle.loads(blob)

    # ------------------------------------------------------------------
    @classmethod
    def dump(cls, payload: Dict[str, Any], path: Union[str, Path]) -> int:
        """Atomically write ``payload`` to ``path``; returns byte size."""
        data = cls.encode(payload)
        atomic_write_bytes(path, data)
        return len(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> Dict[str, Any]:
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        return cls.decode(data)
