"""The paper's published numbers, as structured data.

Every figure/table value used for shape comparison in the benchmarks and
in ``EXPERIMENTS.md`` lives here, transcribed from the EuroSys '23 paper,
so code never hard-codes magic constants from the PDF and the comparison
report can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class PaperRow:
    """One row of Table 5 (or the analogous testbed Table 10)."""

    queuing_mean: float
    queuing_median: float
    queuing_p95: float
    jct_mean: float
    jct_median: float
    jct_p95: float
    usage_training: Optional[float] = None
    usage_overall: Optional[float] = None
    preemption_ratio: Optional[float] = None


#: Table 5 — simulation results (seconds / fractions).
TABLE5: Dict[str, PaperRow] = {
    "baseline": PaperRow(3072, 55, 8357, 16610, 791, 82933, 0.72, 0.52, 0.0),
    "basic": PaperRow(2010, 26, 3358, 11236, 568, 56477, 0.86, 0.65, 0.1224),
    "advanced": PaperRow(1835, 24, 3238, 10434, 525, 56553, 0.86, 0.68, 0.0735),
    "heterogeneous": PaperRow(1944, 27, 3574, 12113, 604, 57392, 0.78, 0.64,
                              0.1123),
    "ideal": PaperRow(1157, 22, 3204, 8891, 422, 41146, 0.93, 0.72, 0.0572),
    "opportunistic": PaperRow(2788, 22, 5256, 14828, 744, 67843, 0.74, 0.63,
                              0.1935),
    "random_loaning": PaperRow(2901, 23, 5478, 14678, 731, 62923, 0.76, 0.64,
                               0.2089),
    "scf_loaning": PaperRow(2783, 24, 4994, 14923, 695, 62456, 0.76, 0.64,
                            0.1748),
    "lyra_loaning": PaperRow(2212, 23, 3427, 12947, 662, 57987, 0.76, 0.65,
                             0.1494),
    "gandiva": PaperRow(3035, 49, 6632, 15912, 755, 80567, 0.79, None, None),
    "afs": PaperRow(2284, 47, 3488, 15045, 686, 60883, 0.95, None, None),
    "pollux": PaperRow(2791, 58, 5883, 14534, 721, 72123, 0.93, None, None),
    "lyra_scaling": PaperRow(2275, 47, 3475, 12048, 602, 57597, 0.92, None,
                             None),
    "lyra_tuned": PaperRow(2054, 43, 2749, 10229, 564, 52458, 0.91, None,
                           None),
}

#: Table 8 — queuing/JCT percentiles (Basic, scaling-only): {scheme:
#: (q50, q75, q95, q99, jct50, jct75, jct95, jct99)}.
TABLE8: Dict[str, tuple] = {
    "baseline": (55, 1892, 8357, 14323, 791, 29163, 82933, 376513),
    "gandiva": (49, 1764, 6632, 11806, 755, 27244, 80567, 323626),
    "afs": (58, 1297, 5883, 11124, 721, 12304, 72123, 323513),
    "pollux": (47, 772, 3488, 9031, 686, 20143, 60883, 247435),
    "lyra_scaling": (47, 697, 3475, 8731, 602, 12072, 57597, 223815),
    "lyra_tuned": (43, 566, 2749, 7112, 564, 9293, 52458, 194391),
}

#: Table 7 — jobs running on on-loan servers.
TABLE7 = {
    "baseline": PaperRow(4573, 1283, 23351, 11547, 2122, 60170),
    "lyra": PaperRow(1119, 274, 7256, 6887, 1373, 35776),
}

#: Table 9 — gains under runtime-estimate error: {wrong fraction:
#: (queuing reduction, JCT reduction)}.
TABLE9 = {0.2: (2.21, 1.52), 0.4: (2.17, 1.49), 0.6: (1.76, 1.38)}

#: Table 10 — testbed results: {scheme: (q mean, q median, q p95,
#: jct mean, jct median, jct p95, preemption ratio)}.
TABLE10 = {
    "baseline": (1532, 772, 1003, 4078, 2183, 3096, 0.0),
    "lyra": (1109, 503, 738, 3335, 1747, 2731, 0.18),
    "random_loaning": (1527, 658, 993, 3893, 2046, 3015, 0.34),
    "scf_loaning": (1473, 614, 864, 3857, 1994, 3001, 0.30),
    "lyra_loaning": (1230, 594, 823, 3748, 1946, 2864, 0.22),
    "gandiva": (1443, 645, 1002, 3882, 2015, 2893, None),
    "afs": (1338, 534, 882, 3521, 1836, 2803, None),
    "pollux": (1405, 576, 937, 3552, 1934, 3004, None),
    "lyra_scaling": (1318, 546, 798, 3413, 1791, 2794, None),
}

#: Headline claims (§7 highlights) for quick reference.
HEADLINES = {
    "queuing_reduction_basic": 1.53,
    "jct_reduction_basic": 1.48,
    "usage_improvement_basic": 0.25,  # +25 % overall usage
    "queuing_reduction_loaning": 1.39,
    "jct_reduction_loaning": 1.31,
    "queuing_reduction_scaling": 1.35,
    "jct_reduction_scaling": 1.38,
    "preemption_ratio_basic": 0.1224,
    "flex_satisfied_basic": 0.535,
    "flex_satisfied_ideal": 0.835,
    "onloan_usage": 0.92,
    "predictor_loss": 4.8e-4,
    "mckp_solve_seconds": 0.02,
    "preemption_overhead_seconds": 63.0,
    "testbed_queuing_reduction": 1.38,
    "testbed_jct_reduction": 1.22,
}

#: Fig. 1 statistics of the inference utilization trace.
FIG1 = {"mean": 0.65, "trough": 0.42, "peak": 0.95, "peak_to_trough": 2.2}

#: §2.1/§2.2 workload statistics the synthetic traces are calibrated to.
WORKLOAD_STATS = {
    "jobs": 50390,
    "days": 15,
    "training_gpus": 3544,
    "training_servers": 443,
    "inference_gpus": 4160,
    "fungible_fraction": 0.21,
    "elastic_job_fraction": 0.05,
    "elastic_resource_share": 0.36,
    "elastic_mean_hours": 14.2,
    "baseline_mean_queuing": 3072,
    "training_utilization": 0.82,
}
