"""Trace inspection: summarize, compare and sanity-check event traces.

``repro inspect <trace>`` loads a JSONL (or Chrome-format) trace and
prints what you would otherwise grep for by hand: the event census, a
job funnel, the preemption breakdown by cause (and its worst victims),
the reclaim timeline with per-op collateral damage, and the per-phase
wall-clock table recorded by the profiling hooks.

``repro inspect --diff A B`` compares two traces: it reports the first
event where the streams diverge (spans excluded — their durations are
wall clock) and the per-metric deltas between the recorded summaries.

Loading is lenient: truncated or corrupt JSONL lines — the normal
aftermath of a killed run — are skipped and *counted*, not fatal.  A
file with no parseable record at all is still rejected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import CAT_SPAN, SPAN_EVENT, SUMMARY_EVENT

#: Event-name prefixes the toolchain emits today.  ``summarize`` counts
#: every event either way, but names outside this vocabulary are
#: surfaced explicitly so a producer/consumer drift (or a hand-edited
#: trace) is visible instead of silently folded into the census.
KNOWN_EVENT_PREFIXES = (
    "job.", "scheduler.", "orchestrator.", "cluster.", "elastic.",
    "fault.", "recovery.", "plan.", "obs.", "run.", "trace.",
)


class TraceFormatError(ValueError):
    """The file is neither a JSONL trace nor a Chrome trace document."""


def load_trace(path: str) -> Dict[str, Any]:
    """Load a trace file into
    ``{"events": [...], "summary": {...}, "skipped_lines": n}``.

    Auto-detects the format: a JSON document with ``traceEvents`` is
    treated as a Chrome export, anything else as JSONL.  Corrupt JSONL
    lines are skipped and counted in ``skipped_lines``; only a file
    with no parseable record at all raises :class:`TraceFormatError`.
    """
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise TraceFormatError(f"{path}: empty trace file")
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        doc = json.loads(text)
        events = [
            {
                "ts": e.get("ts", 0) / 1e6,
                "name": e.get("name", "?"),
                "cat": e.get("cat", "?"),
                "job_id": e.get("tid") if e.get("pid") == 1 else None,
                "args": e.get("args", {}),
            }
            for e in doc.get("traceEvents", [])
            if e.get("ph") == "i"
        ]
        summary = doc.get("otherData", {}).get("summary") or {}
        return {"events": events, "summary": summary, "skipped_lines": 0}
    events: List[Dict[str, Any]] = []
    summary: Dict[str, Any] = {}
    skipped = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(record, dict):
            skipped += 1
            continue
        if record.get("name") == SUMMARY_EVENT:
            summary = record.get("args", {})
        else:
            events.append(record)
    if not events and not summary:
        raise TraceFormatError(
            f"{path}: no parseable trace records "
            f"({skipped} corrupt line{'s' if skipped != 1 else ''})"
        )
    return {"events": events, "summary": summary, "skipped_lines": skipped}


@dataclass
class TraceSummary:
    """Everything ``repro inspect`` reports about one trace."""

    total_events: int = 0
    span: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)
    submissions: int = 0
    starts: int = 0
    finishes: int = 0
    preemptions: int = 0
    preempt_causes: Dict[str, int] = field(default_factory=dict)
    preempt_victims: Dict[int, int] = field(default_factory=dict)
    reclaims: List[Dict[str, Any]] = field(default_factory=list)
    loans: List[Dict[str, Any]] = field(default_factory=list)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    skipped_lines: int = 0
    unknown_events: Dict[str, int] = field(default_factory=dict)


def summarize(trace: Dict[str, Any]) -> TraceSummary:
    """Aggregate a loaded trace into a :class:`TraceSummary`."""
    out = TraceSummary()
    events = trace["events"]
    out.total_events = len(events)
    out.skipped_lines = int(trace.get("skipped_lines", 0))
    if events:
        times = [e.get("ts", 0.0) for e in events]
        out.span = max(times) - min(times)
    for event in events:
        name = event.get("name", "?")
        out.counts[name] = out.counts.get(name, 0) + 1
        if not name.startswith(KNOWN_EVENT_PREFIXES):
            out.unknown_events[name] = out.unknown_events.get(name, 0) + 1
        args = event.get("args") or {}
        if name == "job.submit":
            out.submissions += 1
        elif name == "job.start":
            out.starts += 1
        elif name == "job.finish":
            out.finishes += 1
        elif name == "job.preempt":
            out.preemptions += 1
            cause = args.get("cause", "unknown")
            out.preempt_causes[cause] = out.preempt_causes.get(cause, 0) + 1
            job = event.get("job_id")
            if job is not None:
                out.preempt_victims[job] = out.preempt_victims.get(job, 0) + 1
        elif name == "orchestrator.reclaim":
            out.reclaims.append({"ts": event.get("ts", 0.0), **args})
        elif name == "orchestrator.loan":
            out.loans.append({"ts": event.get("ts", 0.0), **args})
    summary = trace.get("summary") or {}
    out.phases = summary.get("phases", {})
    out.metrics = summary.get("metrics", {})
    return out


def _hours(seconds: float) -> str:
    return f"{seconds / 3600.0:8.2f}h"


def render_summary(summary: TraceSummary, top: int = 5) -> str:
    """Format a :class:`TraceSummary` as the CLI report."""
    lines: List[str] = []
    lines.append("== trace overview ==")
    lines.append(f"  events: {summary.total_events}   "
                 f"span: {summary.span / 3600.0:.2f} simulated hours")
    lines.append(f"  jobs: {summary.submissions} submitted, "
                 f"{summary.starts} dispatches, "
                 f"{summary.finishes} finished, "
                 f"{summary.preemptions} preemptions")
    if summary.skipped_lines:
        lines.append(f"  warning: skipped {summary.skipped_lines} "
                     f"corrupt line"
                     f"{'s' if summary.skipped_lines != 1 else ''}")
    lines.append("")
    lines.append("== event census ==")
    for name in sorted(summary.counts, key=summary.counts.get, reverse=True):
        lines.append(f"  {name:<26}{summary.counts[name]:>8}")
    if summary.unknown_events:
        unknown = ", ".join(
            f"{name} ×{count}"
            for name, count in sorted(summary.unknown_events.items())
        )
        lines.append(f"  warning: unrecognized event types: {unknown}")

    lines.append("")
    lines.append("== preemption summary ==")
    if not summary.preemptions:
        lines.append("  no preemptions recorded")
    else:
        for cause in sorted(summary.preempt_causes,
                            key=summary.preempt_causes.get, reverse=True):
            count = summary.preempt_causes[cause]
            share = count / summary.preemptions
            lines.append(f"  cause {cause:<16}{count:>6}  ({share:5.1%})")
        worst = sorted(summary.preempt_victims.items(),
                       key=lambda kv: (-kv[1], kv[0]))[:top]
        if worst:
            lines.append(f"  most-preempted jobs (top {len(worst)}): "
                         + ", ".join(f"job {j} ×{n}" for j, n in worst))

    lines.append("")
    lines.append("== reclaim timeline ==")
    if not summary.reclaims:
        lines.append("  no reclaim ops recorded")
    else:
        header = (f"  {'sim time':>9}  {'demand':>6}  {'returned':>8}  "
                  f"{'preempted':>9}  {'collateral':>10}")
        lines.append(header)
        for op in summary.reclaims:
            servers = op.get("servers") or []
            preempted = op.get("preempted") or []
            collateral = op.get("collateral")
            lines.append(
                f"  {_hours(op.get('ts', 0.0))}  "
                f"{op.get('demand', len(servers)):>6}  "
                f"{len(servers):>8}  {len(preempted):>9}  "
                + (f"{collateral:>10.3f}" if collateral is not None
                   else f"{'-':>10}")
            )
    if summary.loans:
        moved = sum(len(op.get("servers") or []) for op in summary.loans)
        lines.append(f"  loans: {len(summary.loans)} ops moved "
                     f"{moved} servers to training")

    lines.append("")
    lines.append("== phase timing (wall clock) ==")
    if not summary.phases:
        lines.append("  no profiling data in this trace")
    else:
        header = (f"  {'phase':<28}{'calls':>8}{'total s':>10}"
                  f"{'mean ms':>10}{'max ms':>10}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        ordered = sorted(summary.phases.items(),
                         key=lambda kv: -kv[1].get("total_s", 0.0))
        for name, stats in ordered:
            lines.append(
                f"  {name:<28}{int(stats.get('calls', 0)):>8}"
                f"{stats.get('total_s', 0.0):>10.3f}"
                f"{stats.get('mean_ms', 0.0):>10.3f}"
                f"{stats.get('max_ms', 0.0):>10.3f}"
            )
    if summary.metrics:
        lines.append("")
        lines.append("== recorded metrics ==")
        for kind in ("counters", "gauges"):
            for key, value in sorted(
                (summary.metrics.get(kind) or {}).items()
            ):
                formatted = (f"{value:.4f}" if isinstance(value, float)
                             else str(value))
                lines.append(f"  {key:<34}{formatted:>12}")
    return "\n".join(lines)


def inspect_trace(path: str, top: int = 5) -> str:
    """One-call helper: load, summarize and render ``path``."""
    return render_summary(summarize(load_trace(path)), top=top)


# ----------------------------------------------------------------------
# trace comparison (`repro inspect --diff A B`)
# ----------------------------------------------------------------------

def _canonical_events(
    trace: Dict[str, Any]
) -> List[Tuple[float, str, Any, str]]:
    """The deterministic view of a trace's event stream.

    Span events are excluded because their ``dur_ms`` is wall clock;
    everything else in a seeded run is simulated-time deterministic,
    which is exactly what makes first-divergence comparison meaningful.
    """
    out = []
    for event in trace["events"]:
        if event.get("name") == SPAN_EVENT or event.get("cat") == CAT_SPAN:
            continue
        out.append((
            event.get("ts", 0.0),
            event.get("name", "?"),
            event.get("job_id"),
            json.dumps(event.get("args") or {}, sort_keys=True, default=str),
        ))
    return out


@dataclass
class TraceDiff:
    """What ``diff_traces`` found between two traces."""

    events_a: int
    events_b: int
    #: index of the first differing canonical event, or ``None`` when
    #: the streams are identical (lengths included)
    divergence_index: Optional[int]
    divergence_a: Optional[Tuple[float, str, Any, str]]
    divergence_b: Optional[Tuple[float, str, Any, str]]
    #: metric name -> (value in A, value in B), differing entries only
    metric_deltas: Dict[str, Tuple[Any, Any]]

    @property
    def identical(self) -> bool:
        return self.divergence_index is None and not self.metric_deltas


def diff_traces(trace_a: Dict[str, Any],
                trace_b: Dict[str, Any]) -> TraceDiff:
    """Compare two loaded traces: first event-stream divergence plus
    the deltas between their recorded summary metrics."""
    a, b = _canonical_events(trace_a), _canonical_events(trace_b)
    index: Optional[int] = None
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            index = i
            break
    if index is None and len(a) != len(b):
        index = min(len(a), len(b))

    deltas: Dict[str, Tuple[Any, Any]] = {}
    for kind in ("counters", "gauges"):
        ma = (trace_a.get("summary") or {}).get("metrics", {}).get(kind) or {}
        mb = (trace_b.get("summary") or {}).get("metrics", {}).get(kind) or {}
        for key in sorted(set(ma) | set(mb)):
            if ma.get(key) != mb.get(key):
                deltas[key] = (ma.get(key), mb.get(key))

    return TraceDiff(
        events_a=len(a), events_b=len(b),
        divergence_index=index,
        divergence_a=a[index] if index is not None and index < len(a)
        else None,
        divergence_b=b[index] if index is not None and index < len(b)
        else None,
        metric_deltas=deltas,
    )


def _format_event(event: Optional[Tuple[float, str, Any, str]]) -> str:
    if event is None:
        return "<end of trace>"
    ts, name, job_id, args = event
    job = f" job={job_id}" if job_id is not None else ""
    return f"t={ts:.1f}s {name}{job} {args}"


def render_diff(diff: TraceDiff, label_a: str = "A",
                label_b: str = "B") -> str:
    """Format a :class:`TraceDiff` as the CLI report."""
    lines = ["== trace diff =="]
    lines.append(f"  A: {label_a} ({diff.events_a} events)")
    lines.append(f"  B: {label_b} ({diff.events_b} events)")
    if diff.divergence_index is None:
        lines.append("  event streams identical (spans excluded)")
    else:
        lines.append(f"  first divergence at event "
                     f"#{diff.divergence_index}:")
        lines.append(f"    A: {_format_event(diff.divergence_a)}")
        lines.append(f"    B: {_format_event(diff.divergence_b)}")
    lines.append("")
    lines.append("== metric deltas ==")
    if not diff.metric_deltas:
        lines.append("  recorded metrics identical")
    else:
        for key, (va, vb) in diff.metric_deltas.items():
            lines.append(f"  {key:<34}{va!s:>12} -> {vb!s:<12}")
    return "\n".join(lines)
