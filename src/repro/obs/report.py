"""`repro report`: a deterministic markdown run report from one trace.

The report is built from simulated-time data only — JCT and queue-wait
percentiles from the metrics registry snapshot embedded in the trace,
utilization from the periodic ``cluster.usage`` samples, loan/reclaim
and preemption summaries from lifecycle events, the decision ledger
from ``plan.provenance``, and the phase table reduced to call counts
(wall-clock totals are intentionally excluded).  Two same-seed runs
therefore produce byte-identical reports, which CI asserts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.inspect import load_trace, summarize
from repro.obs.metrics import percentile
from repro.obs.timeline import TimelineStore

#: percentiles shown in the latency tables
_PCTS = (25, 50, 75, 95, 99)


def _fmt(value: Optional[float], digits: int = 1) -> str:
    if value is None or value != value:  # None or NaN
        return "-"
    return f"{value:.{digits}f}"


def _hours(seconds: float) -> str:
    return f"{seconds / 3600.0:.2f}h"


def _hist_row(label: str, hist: Optional[Dict[str, Any]],
              values: List[float]) -> str:
    """One row of a latency table: prefer the registry snapshot, fall
    back to event-derived values (e.g. a trace without a summary)."""
    if hist:
        cells = [str(int(hist.get("count", 0))),
                 _fmt(hist.get("mean"))]
        cells += [_fmt(hist.get(f"p{p}")) for p in _PCTS]
        cells += [_fmt(hist.get("min")), _fmt(hist.get("max"))]
    elif values:
        cells = [str(len(values)),
                 _fmt(sum(values) / len(values))]
        cells += [_fmt(percentile(values, p)) for p in _PCTS]
        cells += [_fmt(min(values)), _fmt(max(values))]
    else:
        cells = ["0"] + ["-"] * (len(_PCTS) + 3)
    return "| " + label + " | " + " | ".join(cells) + " |"


def build_report(trace: Dict[str, Any]) -> str:
    """Render one loaded trace as the markdown run report."""
    summary = summarize(trace)
    store = TimelineStore.from_trace(trace)
    events = trace["events"]
    metrics = (trace.get("summary") or {}).get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    counters = metrics.get("counters") or {}

    lines: List[str] = ["# Run report", ""]
    if summary.skipped_lines:
        lines.append(f"> warning: {summary.skipped_lines} corrupt trace "
                     f"line(s) skipped while loading")
        lines.append("")

    # -- run configuration ---------------------------------------------
    config = next(
        (e.get("args") or {} for e in events
         if e.get("name") == "run.config"), None
    )
    if config:
        lines.append("## Run configuration")
        lines.append("")
        for key in sorted(config):
            value = config[key]
            if key == "fault_plan":
                value = "yes" if value else "none"
            lines.append(f"- {key}: {value}")
        lines.append("")

    # -- job funnel -----------------------------------------------------
    lines.append("## Job funnel")
    lines.append("")
    lines.append(f"- submitted: {summary.submissions}")
    lines.append(f"- dispatches: {summary.starts}")
    lines.append(f"- finished: {summary.finishes}")
    lines.append(f"- preemptions: {summary.preemptions}")
    lines.append(f"- trace span: {_hours(summary.span)} simulated")
    lines.append("")

    # -- latency percentiles -------------------------------------------
    jct_values = sorted(
        float((e.get("args") or {}).get("jct_s", 0.0))
        for e in events if e.get("name") == "job.finish"
    )
    first_start: Dict[Any, float] = {}
    for e in events:
        if e.get("name") == "job.start" \
                and e.get("job_id") not in first_start:
            first_start[e.get("job_id")] = float(
                (e.get("args") or {}).get("queued_s", 0.0)
            )
    wait_values = sorted(first_start.values())
    lines.append("## Completion and queueing (seconds)")
    lines.append("")
    header = ["count", "mean"] + [f"p{p}" for p in _PCTS] + ["min", "max"]
    lines.append("| metric | " + " | ".join(header) + " |")
    lines.append("|" + "---|" * (len(header) + 1))
    lines.append(_hist_row("JCT", histograms.get("sim.jct_s"), jct_values))
    lines.append(_hist_row("queue wait",
                           histograms.get("sim.queue_wait_s"), wait_values))
    lines.append("")

    # -- utilization ----------------------------------------------------
    usage = [e.get("args") or {} for e in events
             if e.get("name") == "cluster.usage"]
    lines.append("## Utilization")
    lines.append("")
    if usage:
        def series(key):
            return [float(u[key]) for u in usage if u.get(key) is not None]
        for label, key in (("training", "training"),
                           ("overall", "overall"),
                           ("on-loan", "onloan_usage")):
            vals = series(key)
            if vals:
                lines.append(
                    f"- {label}: mean {sum(vals) / len(vals):.3f}, "
                    f"min {min(vals):.3f}, max {max(vals):.3f} "
                    f"({len(vals)} samples)"
                )
        loaned = series("loaned")
        if loaned:
            lines.append(f"- servers on loan: mean "
                         f"{sum(loaned) / len(loaned):.2f}, "
                         f"max {int(max(loaned))}")
    else:
        lines.append("- no utilization samples in this trace")
    lines.append("")

    # -- loan / reclaim timeline ---------------------------------------
    lines.append("## Loan / reclaim timeline")
    lines.append("")
    if not summary.loans and not summary.reclaims:
        lines.append("- no capacity movement recorded")
    else:
        moved = sum(len(op.get("servers") or []) for op in summary.loans)
        returned = sum(len(op.get("servers") or [])
                       for op in summary.reclaims)
        lines.append(f"- {len(summary.loans)} loan op(s) moved {moved} "
                     f"server(s) to training")
        lines.append(f"- {len(summary.reclaims)} reclaim op(s) returned "
                     f"{returned} server(s) to inference")
        if summary.reclaims:
            lines.append("")
            lines.append("| sim time | demand | returned | preempted | "
                         "collateral |")
            lines.append("|---|---|---|---|---|")
            for op in summary.reclaims:
                servers = op.get("servers") or []
                lines.append(
                    f"| {_hours(op.get('ts', 0.0))} "
                    f"| {op.get('demand', len(servers))} "
                    f"| {len(servers)} "
                    f"| {len(op.get('preempted') or [])} "
                    f"| {_fmt(op.get('collateral'), 3)} |"
                )
    lines.append("")

    # -- preemptions ----------------------------------------------------
    lines.append("## Preemptions")
    lines.append("")
    if not summary.preemptions:
        lines.append("- none recorded")
    else:
        for cause in sorted(summary.preempt_causes,
                            key=lambda c: (-summary.preempt_causes[c], c)):
            count = summary.preempt_causes[cause]
            lines.append(f"- {cause}: {count} "
                         f"({count / summary.preemptions:.1%})")
    lines.append("")

    # -- decision ledger ------------------------------------------------
    lines.append("## Decision ledger")
    lines.append("")
    if not store.plans:
        lines.append("- no provenance records in this trace "
                     "(untraced or pre-provenance run)")
    else:
        by_policy: Dict[str, int] = {}
        trigger_census: Dict[str, int] = {}
        for plan in store.plans:
            by_policy[plan.policy] = by_policy.get(plan.policy, 0) + 1
            for trigger in plan.triggers:
                kind = trigger.get("kind", "?")
                trigger_census[kind] = trigger_census.get(kind, 0) + 1
        lines.append(f"- {len(store.plans)} committed plan(s)")
        for policy in sorted(by_policy):
            lines.append(f"  - {policy}: {by_policy[policy]}")
        if trigger_census:
            lines.append("- epoch triggers:")
            for kind in sorted(trigger_census,
                               key=lambda k: (-trigger_census[k], k)):
                lines.append(f"  - {kind}: {trigger_census[kind]}")
    lines.append("")

    # -- phase breakdown (call counts only: wall clock is not
    # deterministic and never appears in this report) -------------------
    lines.append("## Phase breakdown")
    lines.append("")
    if not summary.phases:
        lines.append("- no profiling data in this trace")
    else:
        lines.append("| phase | calls |")
        lines.append("|---|---|")
        ordered = sorted(
            summary.phases.items(),
            key=lambda kv: (-int(kv[1].get("calls", 0)), kv[0]),
        )
        for name, stats in ordered:
            lines.append(f"| {name} | {int(stats.get('calls', 0))} |")
    lines.append("")

    # -- resilience (only when faults ran) ------------------------------
    fault_census: Dict[str, int] = {}
    for fault in store.faults:
        fault_census[fault["name"]] = fault_census.get(fault["name"], 0) + 1
    if fault_census or store.node_failures:
        lines.append("## Resilience")
        lines.append("")
        for name in sorted(fault_census):
            lines.append(f"- {name}: {fault_census[name]}")
        if store.node_failures:
            lines.append(f"- node failures: {len(store.node_failures)}")
        resilience = {
            key: value for key, value in sorted(counters.items())
            if key.startswith("resilience.")
        }
        for key, value in resilience.items():
            lines.append(f"- {key}: {value}")
        downtime = histograms.get("resilience.node_downtime_s")
        if downtime:
            lines.append(
                f"- node downtime: count {int(downtime.get('count', 0))}, "
                f"mean {_fmt(downtime.get('mean'))}s, "
                f"p95 {_fmt(downtime.get('p95'))}s"
            )
        restart = histograms.get("resilience.time_to_restart_s")
        if restart:
            lines.append(
                f"- time to restart: count {int(restart.get('count', 0))}, "
                f"mean {_fmt(restart.get('mean'))}s, "
                f"p95 {_fmt(restart.get('p95'))}s"
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def report_from_file(path: str) -> str:
    """One-call helper: load ``path`` and build its report."""
    return build_report(load_trace(path))
