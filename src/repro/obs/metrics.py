"""Metrics registry: counters, gauges and histograms with labels.

Components record into a shared :class:`MetricsRegistry` instead of
plumbing new fields through result dataclasses —
:class:`~repro.simulator.metrics.SimulationMetrics` is a reporting
facade over one of these.  The design follows the Prometheus client
model (a metric family keyed by name, instruments keyed by label set)
scaled down to a single-process simulator: histograms keep their raw
observations, which is cheap at simulation scale and lets reports
compute exact percentiles.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def percentile(values: Sequence[float], pct: float) -> float:
    """The shared percentile: linear interpolation on the sorted sample.

    This is the one percentile definition every reporting surface uses
    (registry histograms, ``DistributionSummary``, the Table 8 bench) —
    equivalent to ``numpy.percentile(..., method="linear")``.

    Edge cases are explicit: an empty sample returns NaN, a single
    sample returns that sample for every ``pct``, ``pct=0``/``pct=100``
    return the exact min/max, and an out-of-range or NaN ``pct``
    raises :class:`ValueError` instead of silently indexing wrong.
    """
    if math.isnan(pct) or not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct!r}")
    n = len(values)
    if n == 0:
        return math.nan
    ordered = sorted(values)
    if n == 1:
        return float(ordered[0])
    if pct == 0.0:
        return float(ordered[0])
    if pct == 100.0:
        return float(ordered[-1])
    rank = (pct / 100.0) * (n - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return float(ordered[lo] + (ordered[hi] - ordered[lo]) * frac)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (resettable via :meth:`set`)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def set(self, value: int) -> None:
        """Direct assignment, for facades that expose counters as
        plain attributes (e.g. ``metrics.preemptions = 5`` in tests)."""
        self.value = value


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = math.nan

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value = (0.0 if math.isnan(self.value) else self.value) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """A distribution; keeps raw observations for exact summaries.

    The ``observations`` list is the source of truth — callers that
    mutate it directly (the :class:`SimulationMetrics` compatibility
    facade exposes it as a plain list) stay consistent because every
    derived statistic is computed on demand.
    """

    __slots__ = ("observations",)

    def __init__(self) -> None:
        self.observations: List[float] = []

    def observe(self, value: float) -> None:
        self.observations.append(value)

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def sum(self) -> float:
        return float(sum(self.observations))

    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def percentile(self, pct: float) -> float:
        return percentile(self.observations, pct)


class MetricsRegistry:
    """Get-or-create store of named, labelled instruments."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram()
        return inst

    # ------------------------------------------------------------------
    def counter_items(
        self, name: str
    ) -> List[Tuple[Dict[str, str], Counter]]:
        """All counters of one family as ``(labels, instrument)`` pairs,
        sorted by label set (e.g. every ``sim.preemptions_by_cause``)."""
        return [
            (dict(key), counter)
            for (n, key), counter in sorted(self._counters.items())
            if n == name
        ]

    def histogram_items(
        self, name: str
    ) -> List[Tuple[Dict[str, str], Histogram]]:
        """All histograms of one family as ``(labels, instrument)`` pairs."""
        return [
            (dict(key), hist)
            for (n, key), hist in sorted(self._histograms.items())
            if n == name
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _fullname(name: str, key: LabelKey) -> str:
        if not key:
            return name
        labels = ",".join(f"{k}={v}" for k, v in key)
        return f"{name}{{{labels}}}"

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly dump of every instrument's current state."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, key), counter in sorted(self._counters.items()):
            out["counters"][self._fullname(name, key)] = counter.value
        for (name, key), gauge in sorted(self._gauges.items()):
            if not math.isnan(gauge.value):
                out["gauges"][self._fullname(name, key)] = gauge.value
        for (name, key), hist in sorted(self._histograms.items()):
            if hist.count:
                out["histograms"][self._fullname(name, key)] = {
                    "count": hist.count,
                    "sum": hist.sum,
                    "mean": hist.mean(),
                    "min": hist.percentile(0),
                    "p25": hist.percentile(25),
                    "p50": hist.percentile(50),
                    "p75": hist.percentile(75),
                    "p95": hist.percentile(95),
                    "p99": hist.percentile(99),
                    "max": hist.percentile(100),
                }
        return out

    def find(self, prefix: str) -> Dict[str, Any]:
        """Snapshot filtered to instruments whose name starts with
        ``prefix`` (handy in tests and interactive inspection)."""
        snap = self.snapshot()
        return {
            kind: {k: v for k, v in values.items() if k.startswith(prefix)}
            for kind, values in snap.items()
        }
