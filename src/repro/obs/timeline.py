"""Timeline reconstruction: per-job and per-server lifecycles from a
trace, plus the causal narration behind ``repro why``.

A flat event trace answers *what happened*; this module rebuilds *to
whom* and *because of what*.  :class:`TimelineStore` ingests a loaded
trace once and indexes three views:

* per-job lifecycles — queued → running → preempted/migrated/scaled →
  completed, each transition carrying the servers, GPU types and loan
  status recorded at dispatch;
* per-server lifecycles — loaned → reclaimed/returned, down → up,
  degraded → recovered;
* the decision ledger — every ``plan.provenance`` event, keyed by
  commit time, with its triggers, inputs and pricing.

:meth:`TimelineStore.why` walks a job's transitions and attaches a
causal chain to each: the plan that committed it, the triggers that
scheduled that plan's epoch, and — where a trigger or cause points at a
fault — the fault-plan event behind it.  Everything is derived from
simulated time only, so the narration is deterministic for seeded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.inspect import load_trace

#: job.* event name -> timeline state
_JOB_STATES = {
    "job.submit": "queued",
    "job.start": "running",
    "job.preempt": "preempted",
    "job.finish": "completed",
    "job.scale_out": "scaled_out",
    "job.scale_in": "scaled_in",
    "job.migrate": "migrated",
}

#: plan-action kinds that put (or keep) a job on servers
_DISPATCH_KINDS = ("launch", "scale_out", "scale_in", "migrate_job")


@dataclass(frozen=True)
class Transition:
    """One state change of a job or server."""

    ts: float
    state: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class JobTimeline:
    job_id: int
    transitions: List[Transition] = field(default_factory=list)

    def state_at(self, at: float) -> Optional[Transition]:
        """The last transition at or before ``at`` (None if the job
        had not been submitted yet)."""
        last = None
        for tr in self.transitions:
            if tr.ts > at:
                break
            last = tr
        return last


@dataclass
class ServerTimeline:
    server_id: str
    transitions: List[Transition] = field(default_factory=list)


@dataclass
class PlanRecord:
    """One ``plan.provenance`` event: a committed plan's causal record."""

    ts: float
    plan_id: int
    policy: str
    triggers: List[Dict[str, Any]] = field(default_factory=list)
    inputs: Dict[str, Any] = field(default_factory=dict)
    pricing: Dict[str, Any] = field(default_factory=dict)
    actions: List[Dict[str, Any]] = field(default_factory=list)
    span_id: Optional[int] = None
    dropped_triggers: int = 0

    def touches_job(self, job_id: int, kinds=None) -> bool:
        for action in self.actions:
            if kinds is not None and action.get("kind") not in kinds:
                continue
            if action.get("job_id") == job_id:
                return True
            if job_id in (action.get("preempted") or ()):
                return True
        return False


@dataclass
class CausalStep:
    """One line of a causal chain: an event and its narration."""

    ts: float
    text: str


@dataclass
class Explanation:
    """A transition plus the causal chain that led to it."""

    transition: Transition
    chain: List[CausalStep] = field(default_factory=list)


class TimelineStore:
    """Indexed per-job / per-server / per-plan views over one trace."""

    def __init__(self) -> None:
        self.jobs: Dict[int, JobTimeline] = {}
        self.servers: Dict[str, ServerTimeline] = {}
        self.plans: List[PlanRecord] = []
        self.faults: List[Dict[str, Any]] = []
        self.node_failures: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Dict[str, Any]) -> "TimelineStore":
        store = cls()
        for event in sorted(
            trace["events"], key=lambda e: e.get("ts", 0.0)
        ):
            store._ingest(event)
        return store

    @classmethod
    def from_file(cls, path: str) -> "TimelineStore":
        return cls.from_trace(load_trace(path))

    def _job(self, job_id: int) -> JobTimeline:
        if job_id not in self.jobs:
            self.jobs[job_id] = JobTimeline(job_id)
        return self.jobs[job_id]

    def _server(self, server_id: str) -> ServerTimeline:
        if server_id not in self.servers:
            self.servers[server_id] = ServerTimeline(server_id)
        return self.servers[server_id]

    def _ingest(self, event: Dict[str, Any]) -> None:
        name = event.get("name", "?")
        ts = float(event.get("ts", 0.0))
        args = event.get("args") or {}
        if name in _JOB_STATES:
            job_id = event.get("job_id")
            if job_id is not None:
                self._job(job_id).transitions.append(
                    Transition(ts=ts, state=_JOB_STATES[name], detail=args)
                )
            return
        if name == "plan.provenance":
            self.plans.append(PlanRecord(
                ts=ts,
                plan_id=int(args.get("plan_id", 0)),
                policy=str(args.get("policy", "?")),
                triggers=list(args.get("triggers") or []),
                inputs=dict(args.get("inputs") or {}),
                pricing=dict(args.get("pricing") or {}),
                actions=list(args.get("actions") or []),
                span_id=args.get("span_id"),
                dropped_triggers=int(args.get("dropped_triggers", 0)),
            ))
            return
        if name == "orchestrator.loan":
            for server_id in args.get("servers") or []:
                self._server(server_id).transitions.append(
                    Transition(ts=ts, state="loaned",
                               detail={"requested": args.get("requested")})
                )
            return
        if name == "orchestrator.reclaim":
            detail = {"demand": args.get("demand"),
                      "preempted": args.get("preempted") or []}
            for server_id in args.get("servers") or []:
                self._server(server_id).transitions.append(
                    Transition(ts=ts, state="returned", detail=detail)
                )
            return
        if name == "recovery.reclaim_route_around":
            server_id = args.get("server_id")
            if server_id is not None:
                self._server(server_id).transitions.append(
                    Transition(ts=ts, state="returned",
                               detail={"route_around": True,
                                       "unhealthy": args.get("unhealthy"),
                                       "straggling": args.get("straggling")})
                )
            return
        if name == "cluster.node_failure":
            record = {"ts": ts, **args}
            self.node_failures.append(record)
            server_id = args.get("server_id")
            if server_id is not None:
                self._server(server_id).transitions.append(
                    Transition(ts=ts, state="down", detail=args)
                )
            return
        if name == "cluster.node_recovery":
            server_id = args.get("server_id")
            if server_id is not None:
                self._server(server_id).transitions.append(
                    Transition(ts=ts, state="up", detail={})
                )
            return
        if name == "fault.straggler_start":
            for server_id in args.get("servers") or []:
                self._server(server_id).transitions.append(
                    Transition(ts=ts, state="degraded",
                               detail={"factor": args.get("factor")})
                )
            self.faults.append({"ts": ts, "name": name, **args})
            return
        if name == "fault.straggler_end":
            for server_id in args.get("servers") or []:
                self._server(server_id).transitions.append(
                    Transition(ts=ts, state="recovered", detail={})
                )
            return
        if name.startswith("fault."):
            self.faults.append({"ts": ts, "name": name, **args})

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def plan_at(self, ts: float, job_id: Optional[int] = None,
                kinds=None) -> Optional[PlanRecord]:
        """The plan committed at simulated time ``ts`` whose actions
        touch ``job_id`` (commit events share the plan's timestamp)."""
        for plan in self.plans:
            if plan.ts != ts:
                continue
            if job_id is None or plan.touches_job(job_id, kinds=kinds):
                return plan
        return None

    def last_fault_before(self, ts: float,
                          name: Optional[str] = None
                          ) -> Optional[Dict[str, Any]]:
        last = None
        for fault in self.faults:
            if fault["ts"] > ts:
                break
            if name is None or fault["name"] == name:
                last = fault
        return last

    def node_failure_for(self, job_id: int,
                         ts: float) -> Optional[Dict[str, Any]]:
        """The node-failure event at ``ts`` that took this job down."""
        for record in self.node_failures:
            if record["ts"] != ts:
                continue
            if job_id in (record.get("jobs_lost_base") or []) \
                    or job_id in (record.get("jobs_lost_flex") or {}):
                return record
        return None

    # ------------------------------------------------------------------
    # causal narration (`repro why`)
    # ------------------------------------------------------------------
    def why(self, job_id: int,
            at: Optional[float] = None) -> List[Explanation]:
        """Causal chains for a job's transitions.

        With ``at`` set, only the transition in effect at that time is
        explained; otherwise the whole lifecycle is.  Raises
        ``KeyError`` for a job the trace never mentions.
        """
        timeline = self.jobs[job_id]
        if at is not None:
            current = timeline.state_at(at)
            transitions = [current] if current is not None else []
        else:
            transitions = timeline.transitions
        return [self._explain(job_id, tr) for tr in transitions]

    def _explain(self, job_id: int, tr: Transition) -> Explanation:
        out = Explanation(transition=tr)
        chain = out.chain
        if tr.state == "queued":
            spec = ", ".join(
                f"{k}={tr.detail[k]}"
                for k in ("min_workers", "max_workers", "elastic")
                if k in tr.detail
            )
            chain.append(CausalStep(tr.ts, f"job submitted ({spec})"
                                    if spec else "job submitted"))
            return out
        if tr.state == "completed":
            jct = tr.detail.get("jct_s")
            chain.append(CausalStep(
                tr.ts,
                "ran to completion"
                + (f" (jct {float(jct):.0f}s)" if jct is not None else ""),
            ))
            return out
        if tr.state == "preempted":
            self._explain_preemption(job_id, tr, chain)
            return out
        # running / scaled / migrated: a plan committed it
        plan = self.plan_at(tr.ts, job_id, kinds=_DISPATCH_KINDS)
        verb = {"running": "dispatched", "migrated": "migrated"}.get(
            tr.state, "rescaled"
        )
        if plan is not None:
            chain.append(CausalStep(
                plan.ts,
                f"{verb} by plan #{plan.plan_id} (policy {plan.policy})",
            ))
            self._narrate_triggers(plan, chain)
        else:
            chain.append(CausalStep(tr.ts, f"{verb} by the scheduler"))
        if tr.state == "running":
            placement = []
            if tr.detail.get("servers"):
                placement.append(
                    "servers " + ",".join(tr.detail["servers"])
                )
            if tr.detail.get("gpu_types"):
                placement.append(
                    "gpu " + "/".join(tr.detail["gpu_types"])
                )
            if tr.detail.get("onloan"):
                placement.append(
                    f"{len(tr.detail['onloan'])} on-loan server(s)"
                )
            if placement:
                chain.append(CausalStep(
                    tr.ts, "placed on " + ", ".join(placement)
                ))
        return out

    def _explain_preemption(self, job_id: int, tr: Transition,
                            chain: List[CausalStep]) -> None:
        cause = tr.detail.get("cause", "unknown")
        plan = self.plan_at(tr.ts, job_id, kinds=("preempt",
                                                  "reclaim_servers"))
        if plan is not None:
            chain.append(CausalStep(
                plan.ts,
                f"preempted (cause={cause}) by plan #{plan.plan_id} "
                f"(policy {plan.policy})",
            ))
            reclaim = next(
                (a for a in plan.actions
                 if a.get("kind") == "reclaim_servers"), None
            )
            if reclaim is not None and reclaim.get("servers"):
                chain.append(CausalStep(
                    plan.ts,
                    f"reclaim returned {len(reclaim['servers'])} "
                    f"server(s): " + ",".join(reclaim["servers"]),
                ))
            self._narrate_triggers(plan, chain)
            return
        failure = self.node_failure_for(job_id, tr.ts)
        if failure is not None:
            chain.append(CausalStep(
                failure["ts"],
                f"server {failure.get('server_id')} failed and took the "
                f"job's workers down",
            ))
            outage = self.last_fault_before(failure["ts"], "fault.outage")
            if outage is not None and outage["ts"] == failure["ts"]:
                chain.append(CausalStep(
                    outage["ts"],
                    f"fault injection: outage of "
                    f"{outage.get('servers')} server(s)",
                ))
            else:
                chain.append(CausalStep(
                    failure["ts"],
                    "stochastic node failure (cluster MTBF model)",
                ))
            return
        chain.append(CausalStep(
            tr.ts, f"preempted by the scheduler (cause={cause})"
        ))

    def _narrate_triggers(self, plan: PlanRecord,
                          chain: List[CausalStep]) -> None:
        for trigger in plan.triggers:
            kind = trigger.get("kind", "?")
            ts = float(trigger.get("ts", plan.ts))
            detail = {k: v for k, v in trigger.items()
                      if k not in ("kind", "ts")}
            if kind == "fault":
                fault = detail.pop("fault", "?")
                rest = ", ".join(f"{k}={v}" for k, v in sorted(
                    detail.items()
                ))
                text = f"trigger: fault injection '{fault}'" \
                    + (f" ({rest})" if rest else "")
            else:
                rest = ", ".join(f"{k}={v}" for k, v in sorted(
                    detail.items()
                ))
                text = f"trigger: {kind}" + (f" ({rest})" if rest else "")
            chain.append(CausalStep(ts, text))
        if plan.dropped_triggers:
            chain.append(CausalStep(
                plan.ts,
                f"(+{plan.dropped_triggers} more triggers dropped)",
            ))
        if plan.inputs:
            pairs = ", ".join(
                f"{k}={plan.inputs[k]}" for k in sorted(plan.inputs)
            )
            chain.append(CausalStep(plan.ts, f"decision inputs: {pairs}"))


# ----------------------------------------------------------------------
# rendering (`repro why` CLI)
# ----------------------------------------------------------------------

def _fmt_ts(ts: float) -> str:
    return f"t={ts:10.1f}s"


def render_why(job_id: int, explanations: List[Explanation]) -> str:
    """Format :meth:`TimelineStore.why` output for the CLI."""
    lines = [f"== why: job {job_id} =="]
    if not explanations:
        lines.append("  no recorded transitions")
        return "\n".join(lines)
    for item in explanations:
        tr = item.transition
        extras = ""
        if tr.state == "running" and tr.detail.get("workers") is not None:
            extras = f" (workers={tr.detail['workers']})"
        elif tr.state == "preempted" and tr.detail.get("cause"):
            extras = f" (cause={tr.detail['cause']})"
        lines.append(f"  {_fmt_ts(tr.ts)}  {tr.state}{extras}")
        for step in item.chain:
            lines.append(f"      - {step.text}")
    return "\n".join(lines)
