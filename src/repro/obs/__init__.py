"""Observability: structured tracing, metrics and profiling hooks.

The three pillars (§"make the simulator a glass box"):

* :class:`~repro.obs.tracer.Tracer` — typed simulator events with JSONL
  and Chrome ``trace_event`` export;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms with labels, the substrate under
  :class:`~repro.simulator.metrics.SimulationMetrics`;
* :class:`~repro.obs.profiling.PhaseProfiler` — wall-clock timers
  around the scheduler/orchestrator hot paths.

An :class:`Observability` bundles all three; pass one to
:class:`~repro.simulator.simulation.Simulation` (or
:func:`repro.scenarios.run_scheme`) to light the instrumentation up.
The default is a shared disabled bundle whose hooks cost one attribute
check per call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.obs.inspect import (
    TraceDiff,
    TraceFormatError,
    TraceSummary,
    diff_traces,
    inspect_trace,
    load_trace,
    render_diff,
    render_summary,
    summarize,
)
from repro.obs.log import configure_logging, get_logger, reset_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.profiling import NULL_PROFILER, PhaseProfiler, PhaseStat
from repro.obs.provenance import (
    PROVENANCE_EVENT,
    Provenance,
    Trigger,
)
from repro.obs.report import build_report, report_from_file
from repro.obs.timeline import TimelineStore, render_why
from repro.obs.tracer import (
    CAT_SPAN,
    NULL_TRACER,
    SPAN_EVENT,
    SUMMARY_EVENT,
    TraceEvent,
    Tracer,
    to_chrome,
)


@dataclass
class Observability:
    """The tracer + registry + profiler bundle a simulation carries."""

    tracer: Tracer = field(default_factory=Tracer)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    phases: PhaseProfiler = field(default_factory=PhaseProfiler)

    @classmethod
    def enabled(cls) -> "Observability":
        return cls()

    @classmethod
    def disabled(cls) -> "Observability":
        """A bundle whose tracer and profiler are off.

        The registry stays live — it is the storage layer of
        :class:`~repro.simulator.metrics.SimulationMetrics` and costs
        the same as the plain dataclass fields it replaced.
        """
        return cls(tracer=Tracer.disabled(), phases=PhaseProfiler.disabled())

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The aggregate record appended to exported traces."""
        return {
            "phases": self.phases.to_dict(),
            "metrics": self.registry.snapshot(),
        }

    def export_trace(self, path: str, format: str = "jsonl") -> int:
        """Export the trace plus the aggregate summary; returns the
        record count written."""
        return self.tracer.export(path, format=format, summary=self.summary())


__all__ = [
    "CAT_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "Observability",
    "PROVENANCE_EVENT",
    "PhaseProfiler",
    "PhaseStat",
    "Provenance",
    "SPAN_EVENT",
    "SUMMARY_EVENT",
    "TimelineStore",
    "TraceDiff",
    "TraceEvent",
    "TraceFormatError",
    "TraceSummary",
    "Tracer",
    "Trigger",
    "build_report",
    "configure_logging",
    "diff_traces",
    "get_logger",
    "inspect_trace",
    "load_trace",
    "percentile",
    "render_diff",
    "render_summary",
    "render_why",
    "report_from_file",
    "reset_logging",
    "summarize",
    "to_chrome",
]
