"""Decision provenance: why a plan was made, attached to the plan.

Every committed :class:`~repro.core.actions.EpochPlan` can carry a
:class:`Provenance` record answering the question a flat event stream
cannot: *what caused this decision epoch, and what did the policy see
when it decided?*  The record has three parts:

* **triggers** — the events that scheduled the epoch (job arrival,
  completion, preemption, fault injection, loan/reclaim, predictor
  forecast crossing, or the plain orchestrator interval), collected by
  the simulation between epochs and consumed by the next plan;
* **inputs** — the decision-relevant state the policy saw, noted by the
  policy itself (e.g. Lyra's MCKP admitted/value, the orchestrator's
  supply/target/current server counts);
* **pricing** — the dry-run price of the plan (preemptions, lost
  GPU-hours, servers moved), stamped by the executor at commit.

The executor emits the whole record as a single ``plan.provenance``
trace event (category ``plan``) right after the plan commits, with a
``plan_id`` shared with the ``scheduler.plan`` event and a ``span_id``
linking back to the ``obs.span`` that produced the plan.  Everything is
built only when the tracer is enabled — untraced runs never allocate a
:class:`Provenance` or a trigger dict.

JSON schema of the emitted event's ``args``::

    {
      "plan_id": 23,                  # 1-based commit ordinal
      "policy": "orchestrator:lyra",
      "span_id": 412,                 # obs.span id of the deciding phase
      "triggers": [                   # what scheduled this epoch
        {"kind": "arrival", "ts": 40100.0, "job_id": 17},
        {"kind": "fault", "ts": 40200.0, "fault": "flash_crowd"}
      ],
      "inputs": {"supply": 5, "target": 5, "current": 7},
      "pricing": {"preemptions": 1, "lost_gpu_hours": 1.2, ...},
      "actions": [                    # compact per-action digest
        {"kind": "preempt", "job_id": 9, "cause": "reclaim"},
        {"kind": "reclaim_servers", "servers": ["infer-0002"]}
      ]
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Event name of the per-plan provenance record in traces.
PROVENANCE_EVENT = "plan.provenance"

#: Trigger kinds the simulation records (the vocabulary `repro why`
#: narrates).  Kept as constants so the timeline reader and the
#: simulation cannot drift apart.
TRIGGER_ARRIVAL = "arrival"
TRIGGER_COMPLETION = "completion"
TRIGGER_PREEMPT = "preempt"
TRIGGER_LOAN = "loan"
TRIGGER_RECLAIM = "reclaim"
TRIGGER_NODE_FAILURE = "node_failure"
TRIGGER_NODE_RECOVERY = "node_recovery"
TRIGGER_FAULT = "fault"
TRIGGER_INTERVAL = "orchestrator_interval"
TRIGGER_FORECAST = "predictor_forecast"
TRIGGER_HEARTBEAT = "heartbeat"

#: Triggers kept per epoch before coalescing into a ``dropped`` count;
#: bounds the payload under pathological epochs (mass node failure).
MAX_TRIGGERS = 32


@dataclass(frozen=True)
class Trigger:
    """One event that caused (or contributed to) a scheduling epoch."""

    kind: str
    ts: float
    detail: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "ts": self.ts}
        out.update(self.detail)
        return out


@dataclass
class Provenance:
    """The causal record one committed plan carries."""

    policy: str
    ts: float
    triggers: Tuple[Trigger, ...] = ()
    inputs: Dict[str, Any] = field(default_factory=dict)
    span_id: Optional[int] = None
    dropped_triggers: int = 0

    def to_payload(self) -> Dict[str, Any]:
        """The ``args`` payload of the ``plan.provenance`` event
        (minus the executor-stamped ``plan_id``/``pricing``)."""
        out: Dict[str, Any] = {
            "policy": self.policy,
            "triggers": [t.to_dict() for t in self.triggers],
        }
        if self.inputs:
            out["inputs"] = self.inputs
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.dropped_triggers:
            out["dropped_triggers"] = self.dropped_triggers
        return out


def action_digest(action: Any) -> Dict[str, Any]:
    """A compact, JSON-stable digest of one plan action.

    Keeps just enough to tie a lifecycle transition back to the plan
    that caused it: the action kind, the affected job, the servers
    moved, and the preemption cause.
    """
    out: Dict[str, Any] = {"kind": action.kind}
    job_id = getattr(action, "job_id", None)
    if job_id is not None:
        out["job_id"] = job_id
    server_ids = getattr(action, "server_ids", None)
    if server_ids:
        out["servers"] = list(server_ids)
    cause = getattr(action, "cause", None)
    if cause is not None:
        out["cause"] = cause
    preempted = getattr(action, "preempted", None)
    if preempted:
        out["preempted"] = list(preempted)
    workers = getattr(action, "workers", None)
    if workers is not None:
        out["workers"] = workers
    return out


def triggers_from_payload(raw: List[Dict[str, Any]]) -> List[Trigger]:
    """Rebuild :class:`Trigger` records from an event payload (the
    inverse of :meth:`Trigger.to_dict`, used by the timeline reader)."""
    out = []
    for item in raw or []:
        detail = tuple(
            (k, v) for k, v in item.items() if k not in ("kind", "ts")
        )
        out.append(
            Trigger(
                kind=item.get("kind", "?"),
                ts=float(item.get("ts", 0.0)),
                detail=detail,
            )
        )
    return out
