"""Structured event tracing for simulations.

Every interesting decision a simulation makes — job lifecycle
transitions, loan/reclaim plans, MCKP allocations, scheduling epochs —
is emitted into a :class:`Tracer` as a typed :class:`TraceEvent` keyed
on *simulated* time.  The tracer is designed to disappear when disabled:
``Tracer.disabled()`` short-circuits on the very first instruction of
:meth:`Tracer.emit` and never allocates an event, so hot paths can call
it unconditionally.

Export formats:

* **JSONL** — one JSON object per line, in (sim-time, seq) order, plus a
  final ``trace.summary`` record carrying aggregated metrics and phase
  timings (what ``repro inspect`` reads back).
* **Chrome trace_event** — a ``{"traceEvents": [...]}`` JSON document
  loadable in ``about://tracing`` or https://ui.perfetto.dev: job
  lifetimes become duration (``"X"``) slices on one track per job,
  everything else becomes instant events, and running/pending job counts
  become counter tracks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from repro.ioutil import atomic_write

#: Event-name prefixes, used as Chrome trace categories.
CAT_JOB = "job"
CAT_SCHEDULER = "scheduler"
CAT_ORCHESTRATOR = "orchestrator"
CAT_CLUSTER = "cluster"
CAT_ELASTIC = "elastic"
CAT_META = "meta"
CAT_FAULT = "fault"
CAT_RECOVERY = "recovery"
CAT_PLAN = "plan"
CAT_SPAN = "span"

#: The reserved name of the trailing aggregate record in JSONL exports.
SUMMARY_EVENT = "trace.summary"

#: The event name nested profiler spans are emitted under.
SPAN_EVENT = "obs.span"


@dataclass(frozen=True)
class TraceEvent:
    """One structured simulator event.

    Attributes:
        ts: Simulated time in seconds.
        seq: Emission sequence number; ``(ts, seq)`` totally orders a
            trace even when many events share a timestamp.
        name: Dotted event name, e.g. ``"job.preempt"``.
        cat: Category (the name's first component, by convention).
        job_id: Affected job, when applicable.
        args: Free-form JSON-serializable payload.
    """

    ts: float
    seq: int
    name: str
    cat: str
    job_id: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ts": self.ts, "seq": self.seq,
            "name": self.name, "cat": self.cat,
        }
        if self.job_id is not None:
            out["job_id"] = self.job_id
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Collects :class:`TraceEvent` records in emission order.

    Args:
        enabled: When False, :meth:`emit` is a no-op (the instance stays
            permanently empty).
    """

    __slots__ = ("enabled", "events", "_seq")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._seq = 0

    @classmethod
    def disabled(cls) -> "Tracer":
        return cls(enabled=False)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def emit(
        self,
        name: str,
        ts: float,
        cat: Optional[str] = None,
        job_id: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record one event (no-op when the tracer is disabled)."""
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(
                ts=ts,
                seq=self._seq,
                name=name,
                cat=cat if cat is not None else name.split(".", 1)[0],
                job_id=job_id,
                args=args,
            )
        )
        self._seq += 1

    def sorted_events(self) -> List[TraceEvent]:
        """Events in (sim-time, seq) order.

        Emission is already time-ordered for anything driven by the
        simulation engine; sorting here additionally covers emitters
        with their own clocks (e.g. an :class:`ElasticController` fed a
        stale timestamp).
        """
        return sorted(self.events, key=lambda e: (e.ts, e.seq))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_jsonl(
        self,
        dest: Union[str, IO[str]],
        summary: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Write the trace as JSON lines; returns the line count.

        ``summary`` (aggregated counters/phase timings) is appended as a
        final :data:`SUMMARY_EVENT` record when provided.
        """
        events = self.sorted_events()

        def _write(fh: IO[str]) -> int:
            lines = 0
            for event in events:
                fh.write(json.dumps(event.to_dict(), default=str) + "\n")
                lines += 1
            if summary is not None:
                record = {
                    "ts": events[-1].ts if events else 0.0,
                    "seq": self._seq,
                    "name": SUMMARY_EVENT,
                    "cat": CAT_META,
                    "args": summary,
                }
                fh.write(json.dumps(record, default=str) + "\n")
                lines += 1
            return lines

        if isinstance(dest, str):
            with atomic_write(dest) as fh:
                return _write(fh)
        return _write(dest)

    def export_chrome(
        self,
        dest: Union[str, IO[str]],
        summary: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Write a Chrome ``trace_event`` JSON document.

        Returns the number of ``traceEvents`` written.  Timestamps are
        simulated seconds converted to microseconds, so the trace-viewer
        timeline reads in simulated time, not wall-clock.
        """
        doc = to_chrome(self.sorted_events(), summary=summary)
        if isinstance(dest, str):
            with atomic_write(dest) as fh:
                json.dump(doc, fh, default=str)
        else:
            json.dump(doc, dest, default=str)
        return len(doc["traceEvents"])

    def export(
        self,
        dest: str,
        format: str = "jsonl",
        summary: Optional[Dict[str, Any]] = None,
    ) -> int:
        if format == "jsonl":
            return self.export_jsonl(dest, summary=summary)
        if format == "chrome":
            return self.export_chrome(dest, summary=summary)
        raise ValueError(f"unknown trace format {format!r}; use jsonl|chrome")


#: A process-wide always-off tracer for code paths with no obs wiring.
NULL_TRACER = Tracer.disabled()


# ----------------------------------------------------------------------
# Chrome trace_event conversion
# ----------------------------------------------------------------------
def _us(ts: float) -> int:
    return int(round(ts * 1e6))


def to_chrome(
    events: Iterable[TraceEvent],
    summary: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Convert an ordered event stream to a Chrome trace document.

    Layout: process 1 holds one thread per job (its run intervals as
    ``"X"`` duration slices, other job events as instants); process 0
    holds scheduler/orchestrator/cluster instants and the running/pending
    counter tracks; process 2 renders profiler spans (:data:`SPAN_EVENT`
    records) as duration slices, one thread per nesting depth, placed at
    their simulated entry time with their wall-clock duration.
    """
    trace: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 0, "name": "process_name",
         "args": {"name": "control plane"}},
        {"ph": "M", "pid": 1, "name": "process_name",
         "args": {"name": "jobs"}},
        {"ph": "M", "pid": 2, "name": "process_name",
         "args": {"name": "spans (wall-clock dur)"}},
    ]
    open_spans: Dict[int, float] = {}
    named_jobs: set = set()
    span_depth: Dict[int, int] = {}
    running = pending = 0

    def counter(ts: float) -> Dict[str, Any]:
        return {
            "ph": "C", "pid": 0, "tid": 0, "ts": _us(ts), "name": "jobs",
            "args": {"running": running, "pending": pending},
        }

    for event in events:
        if event.name == SPAN_EVENT:
            args = event.args
            parent = args.get("parent_id")
            depth = span_depth.get(parent, -1) + 1 if parent else 0
            sid = args.get("span_id")
            if sid is not None:
                span_depth[sid] = depth
            trace.append({
                "ph": "X", "pid": 2, "tid": depth, "ts": _us(event.ts),
                "dur": max(1, int(round(args.get("dur_ms", 0.0) * 1e3))),
                "cat": CAT_SPAN, "name": args.get("span", "span"),
                "args": {"span_id": sid, "parent_id": parent},
            })
            continue
        job = event.job_id
        if job is not None and job not in named_jobs:
            named_jobs.add(job)
            trace.append({
                "ph": "M", "pid": 1, "tid": job, "name": "thread_name",
                "args": {"name": f"job {job}"},
            })
        if event.name == "job.start" and job is not None:
            open_spans[job] = event.ts
            running += 1
            pending = max(0, pending - 1)
            trace.append(counter(event.ts))
        if event.name in ("job.finish", "job.preempt") and job is not None:
            start = open_spans.pop(job, event.ts)
            trace.append({
                "ph": "X", "pid": 1, "tid": job, "ts": _us(start),
                "dur": max(0, _us(event.ts) - _us(start)),
                "cat": CAT_JOB, "name": f"run job {job}",
                "args": event.args or {},
            })
            running = max(0, running - 1)
            if event.name == "job.preempt":
                pending += 1
            trace.append(counter(event.ts))
        if event.name == "job.submit":
            pending += 1
            trace.append(counter(event.ts))
        pid, tid = (1, job) if job is not None else (0, 1)
        trace.append({
            "ph": "i", "pid": pid, "tid": tid if tid is not None else 1,
            "ts": _us(event.ts), "cat": event.cat, "name": event.name,
            "s": "t", "args": event.args or {},
        })
    doc: Dict[str, Any] = {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated seconds ×1e6"},
    }
    if summary is not None:
        doc["otherData"]["summary"] = summary
    return doc
