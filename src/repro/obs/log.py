"""Module-level logging, disabled by default.

The ``repro`` logger hierarchy carries a :class:`logging.NullHandler`
so importing the library never prints anything; an application (or the
CLI's ``--log-level`` flag) opts in via :func:`configure_logging`.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

LOGGER = logging.getLogger(ROOT_LOGGER_NAME)
LOGGER.addHandler(logging.NullHandler())

#: the handler configure_logging installed, so re-configuring replaces
#: rather than stacks handlers
_active_handler: Optional[logging.Handler] = None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return LOGGER
    return LOGGER.getChild(name)


def configure_logging(
    level: Union[int, str] = "info",
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Enable console logging for the library at ``level``.

    Idempotent: calling again replaces the previous configuration.
    """
    global _active_handler
    if isinstance(level, str):
        numeric = logging.getLevelName(level.upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}")
        level = numeric
    if _active_handler is not None:
        LOGGER.removeHandler(_active_handler)
    _active_handler = logging.StreamHandler(stream or sys.stderr)
    _active_handler.setFormatter(logging.Formatter(_FORMAT))
    LOGGER.addHandler(_active_handler)
    LOGGER.setLevel(level)
    return LOGGER


def reset_logging() -> None:
    """Return to the silent, NullHandler-only default (used in tests)."""
    global _active_handler
    if _active_handler is not None:
        LOGGER.removeHandler(_active_handler)
        _active_handler = None
    LOGGER.setLevel(logging.NOTSET)
