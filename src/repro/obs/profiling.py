"""Wall-clock profiling hooks for the scheduler hot paths.

A :class:`PhaseProfiler` hands out context managers that accumulate
wall-clock time per named phase (scheduler tick, MCKP DP solve, reclaim
planning, placement bin-packing).  Like the tracer, it is built to cost
nothing when disabled: ``phase()`` then returns a shared no-op context
manager, so instrumented code needs no conditionals.
"""

from __future__ import annotations

import time
from typing import Dict, List, NamedTuple


class PhaseStat(NamedTuple):
    """Aggregated wall-clock numbers for one phase."""

    name: str
    calls: int
    total_s: float
    mean_ms: float
    max_ms: float


class _NullPhase:
    """Shared do-nothing context manager for disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _Phase:
    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler._record(
            self._name, time.perf_counter() - self._start
        )


class PhaseProfiler:
    """Accumulates per-phase wall-clock totals."""

    __slots__ = ("enabled", "totals", "counts", "maxima")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.maxima: Dict[str, float] = {}

    @classmethod
    def disabled(cls) -> "PhaseProfiler":
        return cls(enabled=False)

    def phase(self, name: str):
        """Context manager timing one occurrence of ``name``."""
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name)

    def _record(self, name: str, elapsed: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1
        if elapsed > self.maxima.get(name, 0.0):
            self.maxima[name] = elapsed

    # ------------------------------------------------------------------
    def stats(self) -> List[PhaseStat]:
        """Per-phase aggregates, most expensive first."""
        out = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            calls = self.counts[name]
            total = self.totals[name]
            out.append(PhaseStat(
                name=name,
                calls=calls,
                total_s=total,
                mean_ms=1e3 * total / calls,
                max_ms=1e3 * self.maxima[name],
            ))
        return out

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            s.name: {
                "calls": s.calls, "total_s": s.total_s,
                "mean_ms": s.mean_ms, "max_ms": s.max_ms,
            }
            for s in self.stats()
        }

    def render_table(self) -> str:
        """The per-phase time breakdown as an aligned text table."""
        rows = self.stats()
        header = (f"{'phase':<28}{'calls':>8}{'total s':>10}"
                  f"{'mean ms':>10}{'max ms':>10}")
        lines = [header, "-" * len(header)]
        if not rows:
            lines.append("(no phases recorded)")
        for s in rows:
            lines.append(
                f"{s.name:<28}{s.calls:>8}{s.total_s:>10.3f}"
                f"{s.mean_ms:>10.3f}{s.max_ms:>10.3f}"
            )
        return "\n".join(lines)


#: A process-wide always-off profiler for unwired code paths.
NULL_PROFILER = PhaseProfiler.disabled()

#: Canonical phase names used by the wired-in hooks.
PHASE_SCHEDULER_TICK = "scheduler.tick"
PHASE_MCKP_SOLVE = "scheduler.mckp_solve"
PHASE_ALLOCATION = "scheduler.allocation"
PHASE_PLACEMENT = "scheduler.placement"
PHASE_RECLAIM_PLAN = "orchestrator.reclaim_plan"
PHASE_ORCH_TICK = "orchestrator.tick"
