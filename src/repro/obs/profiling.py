"""Wall-clock profiling hooks for the scheduler hot paths.

A :class:`PhaseProfiler` hands out context managers that accumulate
wall-clock time per named phase (scheduler tick, MCKP DP solve, reclaim
planning, placement bin-packing).  Like the tracer, it is built to cost
nothing when disabled: ``phase()`` then returns a shared no-op context
manager, so instrumented code needs no conditionals.

When a tracer is bound via :meth:`PhaseProfiler.bind`, every phase
additionally becomes a **span**: entering a phase pushes a fresh
deterministic span id onto a stack, and exiting emits an ``obs.span``
trace event (category ``span``) carrying the span id, its parent span
id, the phase name, the simulated time at entry, and the wall-clock
duration.  Span ids are sequential per run, so seeded runs produce
identical span *structure* — only the ``dur_ms`` field is wall-clock.
Plans link back to the span that produced them through
``EpochPlan.span_id``, captured from the phase context manager.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.obs.tracer import CAT_SPAN, SPAN_EVENT, Tracer


class PhaseStat(NamedTuple):
    """Aggregated wall-clock numbers for one phase."""

    name: str
    calls: int
    total_s: float
    mean_ms: float
    max_ms: float


class _NullPhase:
    """Shared do-nothing context manager for disabled profilers."""

    __slots__ = ()

    #: Matches :class:`_Phase`'s attribute so plan builders can read
    #: ``cm.span_id`` unconditionally.
    span_id = None

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _Phase:
    __slots__ = ("_profiler", "_name", "_start", "_ts", "_parent", "span_id")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self.span_id: Optional[int] = None
        self._parent: Optional[int] = None

    def __enter__(self) -> "_Phase":
        prof = self._profiler
        if prof.tracer is not None:
            prof._span_seq += 1
            self.span_id = prof._span_seq
            self._parent = prof._stack[-1] if prof._stack else None
            prof._stack.append(self.span_id)
            self._ts = prof.clock() if prof.clock is not None else 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        prof = self._profiler
        prof._record(self._name, elapsed)
        if self.span_id is not None:
            prof._stack.pop()
            prof.tracer.emit(
                SPAN_EVENT,
                ts=self._ts,
                cat=CAT_SPAN,
                span=self._name,
                span_id=self.span_id,
                parent_id=self._parent,
                dur_ms=round(elapsed * 1e3, 6),
            )


class PhaseProfiler:
    """Accumulates per-phase wall-clock totals (and spans when bound)."""

    __slots__ = (
        "enabled", "totals", "counts", "maxima",
        "tracer", "clock", "_stack", "_span_seq",
    )

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.maxima: Dict[str, float] = {}
        #: Span sink; ``None`` keeps phases span-free (pure timing).
        self.tracer: Optional[Tracer] = None
        #: Returns the current *simulated* time for span timestamps.
        self.clock: Optional[Callable[[], float]] = None
        self._stack: List[int] = []
        self._span_seq = 0

    @classmethod
    def disabled(cls) -> "PhaseProfiler":
        return cls(enabled=False)

    def bind(self, tracer: Tracer, clock: Callable[[], float]) -> None:
        """Promote phases to spans emitted into ``tracer``.

        No-op when either side is disabled, preserving the zero-cost
        guarantee of untraced runs.
        """
        if self.enabled and tracer.enabled:
            self.tracer = tracer
            self.clock = clock

    def current_span_id(self) -> Optional[int]:
        """The innermost open span's id, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def phase(self, name: str):
        """Context manager timing one occurrence of ``name``."""
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name)

    def _record(self, name: str, elapsed: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1
        if elapsed > self.maxima.get(name, 0.0):
            self.maxima[name] = elapsed

    # ------------------------------------------------------------------
    def stats(self) -> List[PhaseStat]:
        """Per-phase aggregates, most expensive first."""
        out = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            calls = self.counts[name]
            total = self.totals[name]
            out.append(PhaseStat(
                name=name,
                calls=calls,
                total_s=total,
                mean_ms=1e3 * total / calls,
                max_ms=1e3 * self.maxima[name],
            ))
        return out

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            s.name: {
                "calls": s.calls, "total_s": s.total_s,
                "mean_ms": s.mean_ms, "max_ms": s.max_ms,
            }
            for s in self.stats()
        }

    def render_table(self) -> str:
        """The per-phase time breakdown as an aligned text table."""
        rows = self.stats()
        header = (f"{'phase':<28}{'calls':>8}{'total s':>10}"
                  f"{'mean ms':>10}{'max ms':>10}")
        lines = [header, "-" * len(header)]
        if not rows:
            lines.append("(no phases recorded)")
        for s in rows:
            lines.append(
                f"{s.name:<28}{s.calls:>8}{s.total_s:>10.3f}"
                f"{s.mean_ms:>10.3f}{s.max_ms:>10.3f}"
            )
        return "\n".join(lines)


#: A process-wide always-off profiler for unwired code paths.
NULL_PROFILER = PhaseProfiler.disabled()

#: Canonical phase names used by the wired-in hooks.
PHASE_SCHEDULER_TICK = "scheduler.tick"
PHASE_DECIDE = "scheduler.decide"
PHASE_MCKP_SOLVE = "scheduler.mckp_solve"
PHASE_ALLOCATION = "scheduler.allocation"
PHASE_PLACEMENT = "scheduler.placement"
PHASE_RECLAIM_PLAN = "orchestrator.reclaim_plan"
PHASE_ORCH_TICK = "orchestrator.tick"
PHASE_PLAN_VALIDATE = "plan.validate"
PHASE_PLAN_COMMIT = "plan.commit"
