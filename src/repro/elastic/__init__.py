"""Elastic-scaling substrate: throughput models, controller, tuning."""

from repro.elastic.controller import (
    ControllerState,
    ElasticController,
    ElasticControllerError,
)
from repro.elastic.hetero import (
    WorkerShard,
    heterogeneous_throughput,
    mixed_penalty,
    plan_worker_mix,
    split_batch,
    step_efficiency,
)
from repro.elastic.throughput import (
    LINEAR,
    SUBLINEAR_20,
    ScalingModel,
    get_scaling_model,
)
from repro.elastic.tuning import (
    TrainingHyperparams,
    adascale_gain,
    adascale_lr,
    retune,
    scale_batch_for_workers,
    shrink_batch_for_memory,
    workers_for_global_batch,
)

__all__ = [
    "ControllerState",
    "ElasticController",
    "ElasticControllerError",
    "LINEAR",
    "SUBLINEAR_20",
    "ScalingModel",
    "TrainingHyperparams",
    "WorkerShard",
    "adascale_gain",
    "adascale_lr",
    "get_scaling_model",
    "heterogeneous_throughput",
    "mixed_penalty",
    "plan_worker_mix",
    "split_batch",
    "step_efficiency",
    "retune",
    "scale_batch_for_workers",
    "shrink_batch_for_memory",
    "workers_for_global_batch",
]
