"""Hyperparameter tuning for elastic jobs (Lyra+TunedJobs, §7.4).

Lyra+TunedJobs adapts Pollux's job agent: whenever a job's allocation
changes, the agent re-tunes the global batch size and the learning rate
within the scaling range.  Two standard rules are implemented:

* **Batch scaling** — the global batch grows with the worker count while
  the local (per-GPU) batch stays fixed, or the local batch shrinks when
  the job lands on lower-memory GPUs (capacity loaning, §2.1) so the
  global batch is preserved.
* **AdaScale learning-rate scaling** (Johnson et al., 2019) — the paper's
  choice for adjusting the learning rate: the effective LR multiplier is
  the *gain* ``r = (σ² + μ²) / (σ²/k + μ²)`` which interpolates between
  linear scaling (noise-dominated gradients) and no scaling
  (bias-dominated gradients) as the batch grows by factor ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TrainingHyperparams:
    """Hyperparameters the job agent controls."""

    local_batch_size: int
    global_batch_size: int
    learning_rate: float

    def __post_init__(self) -> None:
        if self.local_batch_size < 1 or self.global_batch_size < 1:
            raise ValueError("batch sizes must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning rate must be positive")


def scale_batch_for_workers(
    params: TrainingHyperparams, old_workers: int, new_workers: int
) -> TrainingHyperparams:
    """Grow/shrink the global batch with the worker count (fixed local)."""
    if old_workers < 1 or new_workers < 1:
        raise ValueError("worker counts must be >= 1")
    return TrainingHyperparams(
        local_batch_size=params.local_batch_size,
        global_batch_size=params.local_batch_size * new_workers,
        learning_rate=params.learning_rate,
    )


def shrink_batch_for_memory(
    params: TrainingHyperparams, memory_ratio: float
) -> TrainingHyperparams:
    """Fit the local batch into smaller GPU memory, preserving the global
    batch by implying proportionally more workers (§2.1).

    Args:
        memory_ratio: target GPU memory / source GPU memory, in (0, 1].
    """
    if not 0 < memory_ratio <= 1:
        raise ValueError(f"memory_ratio must be in (0, 1], got {memory_ratio}")
    local = max(1, math.floor(params.local_batch_size * memory_ratio))
    return TrainingHyperparams(
        local_batch_size=local,
        global_batch_size=params.global_batch_size,
        learning_rate=params.learning_rate,
    )


def workers_for_global_batch(params: TrainingHyperparams) -> int:
    """Workers needed so local batches cover the global batch."""
    return math.ceil(params.global_batch_size / params.local_batch_size)


def adascale_gain(
    batch_scale: float, grad_var: float = 1.0, grad_sqnorm: float = 1.0
) -> float:
    """AdaScale gain ``r`` for a batch grown by ``batch_scale``.

    ``r = (σ² + μ²) / (σ²/k + μ²)`` with ``σ²`` the gradient variance and
    ``μ²`` the squared gradient norm.  ``1 <= r <= k`` always holds.
    """
    if batch_scale < 1:
        raise ValueError(f"batch_scale must be >= 1, got {batch_scale}")
    if grad_var < 0 or grad_sqnorm < 0 or (grad_var + grad_sqnorm) == 0:
        raise ValueError("need non-negative, not-both-zero gradient stats")
    return (grad_var + grad_sqnorm) / (grad_var / batch_scale + grad_sqnorm)


def adascale_lr(
    base_lr: float,
    batch_scale: float,
    grad_var: float = 1.0,
    grad_sqnorm: float = 1.0,
) -> float:
    """Learning rate after an AdaScale adjustment."""
    if base_lr <= 0:
        raise ValueError(f"base_lr must be positive, got {base_lr}")
    return base_lr * adascale_gain(batch_scale, grad_var, grad_sqnorm)


def retune(
    params: TrainingHyperparams,
    old_workers: int,
    new_workers: int,
    grad_var: float = 1.0,
    grad_sqnorm: float = 1.0,
) -> TrainingHyperparams:
    """Full job-agent retune on an allocation change (§7.1 Lyra+TunedJobs).

    Scales the global batch with the worker count and applies the
    AdaScale gain to the learning rate.
    """
    scaled = scale_batch_for_workers(params, old_workers, new_workers)
    k = scaled.global_batch_size / params.global_batch_size
    if k >= 1:
        lr = adascale_lr(params.learning_rate, k, grad_var, grad_sqnorm)
    else:
        # Shrinking the batch: invert the gain of the reverse scaling.
        lr = params.learning_rate / adascale_gain(1 / k, grad_var, grad_sqnorm)
    return TrainingHyperparams(
        local_batch_size=scaled.local_batch_size,
        global_batch_size=scaled.global_batch_size,
        learning_rate=lr,
    )
