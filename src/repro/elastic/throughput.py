"""Training-throughput scaling models.

Lyra's allocator assumes training throughput scales linearly with the number
of workers inside a job's scaling range (§5), which the paper validates for
ResNet-50, VGG16, BERT and GNMT-16 (Fig. 3).  §7.2 additionally evaluates an
imperfect-scaling variant where every added worker contributes only 80 % of
its ideal throughput.  Both are modelled here as *effective worker* curves:
``effective_workers(w)`` maps a worker count to the equivalent number of
perfectly-scaling workers.

Throughput is expressed in training-GPU (V100) equivalents: a worker using
``g`` GPUs on hardware with ``relative_compute`` ``r`` contributes
``g * r * (effective_workers(w) / w)`` when the job runs ``w`` workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ScalingModel:
    """Per-worker efficiency curve of a distributed training job.

    Attributes:
        name: Identifier used by traces and scenario configs.
        marginal_loss: Throughput fraction lost by each *added* worker
            beyond the first.  ``0.0`` is the paper's default linear
            assumption; ``0.2`` reproduces the imperfect-scaling study
            (§7.2, Fig. 8 / Fig. 16).
    """

    name: str = "linear"
    marginal_loss: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.marginal_loss < 1.0:
            raise ValueError(
                f"marginal_loss must be in [0, 1), got {self.marginal_loss}"
            )

    def effective_workers(self, workers: int) -> float:
        """Equivalent number of perfectly-scaling workers.

        With marginal loss ``l``, worker ``k`` (k >= 2) contributes
        ``(1 - l)`` of a worker, so ``eff(w) = 1 + (w - 1) * (1 - l)``.
        ``eff(0) == 0`` and ``eff(1) == 1`` always hold.
        """
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if workers == 0:
            return 0.0
        return 1.0 + (workers - 1) * (1.0 - self.marginal_loss)

    def efficiency(self, workers: int) -> float:
        """Average per-worker efficiency at ``workers`` workers (<= 1.0)."""
        if workers == 0:
            return 1.0
        return self.effective_workers(workers) / workers

    def speedup(self, workers: int, base_workers: int) -> float:
        """Throughput ratio between ``workers`` and ``base_workers``."""
        base = self.effective_workers(base_workers)
        if base == 0:
            return math.inf if workers > 0 else 1.0
        return self.effective_workers(workers) / base


#: The paper's default assumption inside the scaling range (§5).
LINEAR = ScalingModel(name="linear", marginal_loss=0.0)

#: The §7.2 imperfect-scaling study: each added worker loses 20 %.
SUBLINEAR_20 = ScalingModel(name="sublinear20", marginal_loss=0.2)

_REGISTRY = {m.name: m for m in (LINEAR, SUBLINEAR_20)}


def get_scaling_model(name: str) -> ScalingModel:
    """Look up a scaling model by name, e.g. from a trace record."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scaling model {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
