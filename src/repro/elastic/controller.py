"""Per-job elastic controller (§6, "Enable elastic scaling").

The production implementation embeds a controller process in each elastic
job that coordinates worker join and departure: base-demand workers are
gang-scheduled (all or nothing), flexible workers may come and go while
preserving loss convergence.  This module reproduces that state machine so
the scheduler's scale operations have a concrete, verifiable protocol:

* a job may only *start* once its full base demand has joined (gang
  semantics);
* flexible workers join/leave one membership *generation* at a time; every
  membership change bumps the generation, which real systems use to
  re-establish collectives (torchelastic rendezvous, Horovod elastic);
* scaling in below base demand is refused — that would stall the job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.obs.tracer import NULL_TRACER, Tracer


class ControllerState(enum.Enum):
    WAITING = "waiting"  # gang-collecting base workers
    RUNNING = "running"
    STOPPED = "stopped"


class ElasticControllerError(RuntimeError):
    """A scaling request violated the controller protocol."""


def check_scale_floor(job_id: int, workers: int, min_workers: int) -> None:
    """Static form of the scale-in floor :meth:`ElasticController.leave`
    enforces per worker: a running job may never shrink below its
    gang-scheduled base demand — that would stall it.  Used by the plan
    executor to validate ``ScaleIn`` actions before committing a plan.
    """
    if workers < min_workers:
        raise ElasticControllerError(
            f"job {job_id}: scaling in to {workers} workers would drop "
            f"below base demand {min_workers}; preempt the job instead"
        )


@dataclass
class ElasticController:
    """Coordinates worker membership for one elastic job.

    Attributes:
        job_id: The controlled job.
        min_workers: Gang-scheduled base demand.
        max_workers: Upper end of the scaling range.
    """

    job_id: int
    min_workers: int
    max_workers: int
    state: ControllerState = ControllerState.WAITING
    generation: int = 0
    _workers: Set[str] = field(default_factory=set)
    _base: Set[str] = field(default_factory=set)
    #: membership history, one frozenset per generation (for audits)
    history: List[frozenset] = field(default_factory=list)
    #: structured-event sink (disabled by default, costs nothing)
    tracer: Tracer = field(default=NULL_TRACER, repr=False)
    #: time source for emitted events (e.g. ``lambda: sim.now``)
    clock: Optional[Callable[[], float]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"need 1 <= min <= max, got {self.min_workers}..{self.max_workers}"
            )

    # ------------------------------------------------------------------
    @property
    def worker_count(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> frozenset:
        return frozenset(self._workers)

    def _bump(self) -> None:
        self.generation += 1
        self.history.append(frozenset(self._workers))

    def _emit(self, name: str, **args) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                name,
                ts=self.clock() if self.clock is not None else 0.0,
                job_id=self.job_id,
                generation=self.generation,
                state=self.state.value,
                workers=self.worker_count,
                **args,
            )

    # ------------------------------------------------------------------
    def join(self, worker_id: str, flexible: bool = False) -> int:
        """A worker joins; returns the new membership generation.

        Base workers may only join while gang-collecting; once running,
        only flexible workers may join (and only within the range).
        """
        if self.state is ControllerState.STOPPED:
            raise ElasticControllerError(f"job {self.job_id} already stopped")
        if worker_id in self._workers:
            raise ElasticControllerError(f"duplicate worker {worker_id!r}")
        if self.worker_count >= self.max_workers:
            raise ElasticControllerError(
                f"job {self.job_id} at max workers {self.max_workers}"
            )
        if self.state is ControllerState.RUNNING and not flexible:
            raise ElasticControllerError(
                "base workers are gang-scheduled; cannot join after start"
            )
        self._workers.add(worker_id)
        if not flexible:
            self._base.add(worker_id)
        if (
            self.state is ControllerState.WAITING
            and len(self._base) >= self.min_workers
        ):
            self.state = ControllerState.RUNNING
        self._bump()
        self._emit("elastic.join", worker_id=worker_id, flexible=flexible)
        return self.generation

    def leave(self, worker_id: str) -> int:
        """A flexible worker departs; returns the new generation.

        Departure of a base worker while running is a protocol violation
        (the scheduler must preempt the whole job instead).
        """
        if worker_id not in self._workers:
            raise ElasticControllerError(f"unknown worker {worker_id!r}")
        if self.state is ControllerState.RUNNING and worker_id in self._base:
            raise ElasticControllerError(
                "cannot remove a base worker from a running job; preempt it"
            )
        self._workers.remove(worker_id)
        self._base.discard(worker_id)
        self._bump()
        self._emit("elastic.leave", worker_id=worker_id)
        return self.generation

    def stop(self) -> None:
        """Tear the job down (completion or preemption)."""
        self.state = ControllerState.STOPPED
        self._workers.clear()
        self._base.clear()
        self._bump()
        self._emit("elastic.stop")
