"""Heterogeneous GPU training support (§2.1, §8).

A small fraction of jobs can run on mixed GPU types at runtime
("heterogeneous" jobs).  The paper's production system supports this only
experimentally: "adjusting the batch size can roughly synchronize the
workers, [but] it may prolong the training convergence in some cases"
(§8), and the Advanced scenario models the net effect as at most 70 % of
ideal throughput (§7.1).

This module provides the mechanism behind those statements — the
semi-dynamic load-balancing rule from the literature the paper cites
(Chen et al., SoCC '20): split the global batch across workers in
proportion to device speed so one synchronous step takes (nearly) the
same wall time on every worker, then quantify what is lost to rounding
and residual stalls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster.gpu import GPUType


@dataclass(frozen=True)
class WorkerShard:
    """One worker's share of a heterogeneous synchronous step."""

    gpu: GPUType
    batch: int

    @property
    def step_time(self) -> float:
        """Relative time to process the shard (batch / speed)."""
        return self.batch / self.gpu.relative_compute


def split_batch(
    global_batch: int, gpus: Sequence[GPUType]
) -> List[WorkerShard]:
    """Split a global batch across mixed workers proportionally to speed.

    Every worker receives at least one sample; remainders go to the
    fastest workers (largest-remainder rounding), so the sum always
    equals ``global_batch``.
    """
    if global_batch < len(gpus):
        raise ValueError(
            f"global batch {global_batch} smaller than worker count "
            f"{len(gpus)}"
        )
    if not gpus:
        raise ValueError("need at least one worker")
    total_speed = sum(g.relative_compute for g in gpus)
    raw = [global_batch * g.relative_compute / total_speed for g in gpus]
    floors = [max(1, math.floor(r)) for r in raw]
    deficit = global_batch - sum(floors)
    order = sorted(
        range(len(gpus)),
        key=lambda i: (raw[i] - floors[i], gpus[i].relative_compute),
        reverse=True,
    )
    shards = list(floors)
    i = 0
    while deficit > 0:
        shards[order[i % len(order)]] += 1
        deficit -= 1
        i += 1
    while deficit < 0:
        idx = order[-1 - (i % len(order))]
        if shards[idx] > 1:
            shards[idx] -= 1
            deficit += 1
        i += 1
    return [WorkerShard(gpu=g, batch=b) for g, b in zip(gpus, shards)]


def step_efficiency(shards: Sequence[WorkerShard]) -> float:
    """Throughput efficiency of one synchronous heterogeneous step.

    A synchronous step ends when the *slowest* shard finishes; efficiency
    is useful work over (workers x makespan).  Perfectly proportional
    shards give 1.0; imbalance (rounding, very unequal devices) lowers
    it.
    """
    if not shards:
        raise ValueError("need at least one shard")
    makespan = max(s.step_time for s in shards)
    useful = sum(s.step_time for s in shards)
    return useful / (len(shards) * makespan)


def heterogeneous_throughput(
    global_batch: int, gpus: Sequence[GPUType], sync_overhead: float = 0.05
) -> float:
    """Aggregate samples/step-time of a balanced heterogeneous job,
    relative to the sum of device speeds.

    ``sync_overhead`` models the extra coordination cost of mixed-pace
    workers (gradient bucketing, stragglers) that batch balancing cannot
    remove — the reason the paper caps heterogeneous jobs at 70 % of
    ideal (§7.1).
    """
    if not 0 <= sync_overhead < 1:
        raise ValueError(f"sync_overhead must be in [0, 1), got {sync_overhead}")
    shards = split_batch(global_batch, gpus)
    eff = step_efficiency(shards)
    total_speed = sum(g.relative_compute for g in gpus)
    return total_speed * eff * (1.0 - sync_overhead)


def mixed_penalty(
    global_batch: int, gpus: Sequence[GPUType], sync_overhead: float = 0.05
) -> float:
    """Fraction of homogeneous-equivalent throughput retained when the
    job spans GPU types — the factor the Advanced scenario draws from.

    Returns 1.0 for a homogeneous set; for V100+T4 mixes with realistic
    batch sizes the value lands in the 0.7-0.95 band the paper and its
    references report.
    """
    types = {g.name for g in gpus}
    if len(types) <= 1:
        return 1.0
    total_speed = sum(g.relative_compute for g in gpus)
    return heterogeneous_throughput(global_batch, gpus, sync_overhead) / (
        total_speed
    )


def plan_worker_mix(
    demand_gpus: int, training_free: int, onloan_free: int,
    onloan_cost: float = 3.0,
) -> Dict[str, int]:
    """How a heterogeneous job's nominal GPU demand maps onto a mixed
    placement: training GPUs first, the remainder on loaned hardware at
    the normalization cost (§6: base on training, flex on inference).

    Returns ``{"training": gpus, "onloan": physical_gpus}``; raises if
    the demand cannot be covered.
    """
    if demand_gpus < 1:
        raise ValueError(f"demand_gpus must be >= 1, got {demand_gpus}")
    from_training = min(demand_gpus, training_free)
    remainder = demand_gpus - from_training
    onloan_needed = math.ceil(remainder * onloan_cost)
    if onloan_needed > onloan_free:
        raise ValueError(
            f"demand {demand_gpus} does not fit: {training_free} training "
            f"+ {onloan_free} on-loan GPUs (cost {onloan_cost})"
        )
    return {"training": from_training, "onloan": onloan_needed}
