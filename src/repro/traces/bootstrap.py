"""Bootstrap resampling of job traces (Fig. 12).

The paper validates reproducibility by composing ten 10-day traces from the
full 15-day trace with the bootstrapping technique: days are sampled with
replacement and their jobs stitched into a new trace.  The same procedure
is implemented here over synthetic traces.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

import numpy as np

from repro.cluster.job import JobSpec
from repro.traces.workload import DAY, Workload


def bootstrap_trace(
    workload: Workload, days: int = 10, seed: int = 0
) -> Workload:
    """Compose a ``days``-day trace by sampling whole days with replacement.

    Jobs keep their within-day submission offset; ids are renumbered so
    the result is a standalone trace.  The cluster configuration is
    inherited from the source workload.
    """
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    rng = np.random.default_rng(seed)
    source_days = int(workload.config.days)
    if source_days < 1:
        raise ValueError("source workload must span at least one full day")

    by_day: List[List[JobSpec]] = [[] for _ in range(source_days)]
    for spec in workload.specs:
        day = int(spec.submit_time // DAY)
        if day < source_days:
            by_day[day].append(spec)

    sampled = rng.integers(0, source_days, size=days)
    specs: List[JobSpec] = []
    for new_day, src_day in enumerate(sampled):
        for spec in by_day[int(src_day)]:
            offset = spec.submit_time - src_day * DAY
            specs.append(
                replace(spec, job_id=len(specs), submit_time=new_day * DAY + offset)
            )
    specs.sort(key=lambda s: s.submit_time)
    specs = [replace(s, job_id=i) for i, s in enumerate(specs)]
    config = replace(workload.config, num_jobs=max(1, len(specs)), days=float(days),
                     seed=seed)
    return Workload(specs=specs, config=config)


def bootstrap_traces(
    workload: Workload, count: int = 10, days: int = 10, seed: int = 0
) -> List[Workload]:
    """The Fig. 12 ensemble: ``count`` independent bootstrapped traces."""
    return [
        bootstrap_trace(workload, days=days, seed=seed * 1000 + i)
        for i in range(count)
    ]
