"""Model-family catalog.

The paper's elastic scaling is restricted to model families that scale well
without retuning the local batch size — ResNet-50, VGG16, BERT and GNMT-16
(Fig. 3, §2.2).  This catalog records each family's throughput
characteristics so traces can tag jobs and the Fig. 3 benchmark can
regenerate the scaling curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ModelFamily:
    """A DNN model family as seen by the scheduler.

    Attributes:
        name: Family label used in traces.
        unit: Throughput unit for reporting (e.g. ``"img/s"``).
        per_worker_throughput: Samples/second of one 2-GPU worker on
            V100s (the Fig. 3 testbed configuration).
        scaling_efficiency: Fraction of ideal throughput retained each
            time the worker count doubles (Fig. 3 curves are near-linear,
            so these sit close to 1.0).
        elastic_capable: Whether Lyra will consider jobs of this family
            for elastic scaling (§2.2).
        gpus_per_worker: Worker container size used by this family.
    """

    name: str
    unit: str
    per_worker_throughput: float
    scaling_efficiency: float
    elastic_capable: bool
    gpus_per_worker: int = 2

    def throughput(self, workers: int) -> float:
        """Aggregate throughput with ``workers`` workers (Fig. 3 model)."""
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if workers == 0:
            return 0.0
        doublings = 0
        w = workers
        while w > 1:
            w /= 2
            doublings += 1
        return (
            self.per_worker_throughput
            * workers
            * self.scaling_efficiency**doublings
        )


#: Families measured in Fig. 3 (values approximate the published curves).
RESNET = ModelFamily("resnet", "img/s", 1950.0, 0.97, True)
VGG = ModelFamily("vgg", "img/s", 780.0, 0.94, True)
BERT = ModelFamily("bert", "sequence/s", 310.0, 0.96, True)
GNMT = ModelFamily("gnmt", "sequence/s", 240.0, 0.95, True)

#: A catch-all family for the long tail of production jobs that do not
#: scale well enough for elasticity.
GENERIC = ModelFamily("generic", "sample/s", 500.0, 0.80, False, gpus_per_worker=1)

ALL_FAMILIES: Dict[str, ModelFamily] = {
    f.name: f for f in (RESNET, VGG, BERT, GNMT, GENERIC)
}

#: The four elastic-capable families of §2.2.
ELASTIC_FAMILIES: List[ModelFamily] = [RESNET, VGG, BERT, GNMT]


def get_family(name: str) -> ModelFamily:
    try:
        return ALL_FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown model family {name!r}; known: {sorted(ALL_FAMILIES)}"
        ) from None


def fig3_series(
    family: ModelFamily, epochs: int = 30, double_every: int = 5
) -> List[Tuple[int, int, float]]:
    """Regenerate a Fig. 3 curve: workers double every five epochs.

    Returns ``(epoch, workers, throughput)`` triples starting from one
    worker, exactly the experiment plotted in the paper.
    """
    series = []
    workers = 1
    for epoch in range(1, epochs + 1):
        if epoch > 1 and (epoch - 1) % double_every == 0:
            workers *= 2
        series.append((epoch, workers, family.throughput(workers)))
    return series
