"""Synthetic traces standing in for the paper's production data."""

from repro.traces.bootstrap import bootstrap_trace, bootstrap_traces
from repro.traces.inference import (
    SAMPLE_INTERVAL,
    InferenceTrace,
    generate_inference_trace,
)
from repro.traces.io import load_workload, save_workload
from repro.traces.models import (
    ALL_FAMILIES,
    BERT,
    ELASTIC_FAMILIES,
    GENERIC,
    GNMT,
    RESNET,
    VGG,
    ModelFamily,
    fig3_series,
    get_family,
)
from repro.traces.workload import TraceConfig, Workload, generate_workload

__all__ = [
    "ALL_FAMILIES",
    "BERT",
    "ELASTIC_FAMILIES",
    "GENERIC",
    "GNMT",
    "InferenceTrace",
    "ModelFamily",
    "RESNET",
    "SAMPLE_INTERVAL",
    "TraceConfig",
    "VGG",
    "Workload",
    "bootstrap_trace",
    "bootstrap_traces",
    "fig3_series",
    "generate_inference_trace",
    "generate_workload",
    "load_workload",
    "save_workload",
    "get_family",
]
