"""Trace serialization: save and load workloads as JSON or CSV.

Lets users replay their own traces (or share generated ones) instead of
the synthetic generator — the reproduction-friendly equivalent of the
paper's proprietary trace files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Union

from repro.cluster.job import JobSpec
from repro.ioutil import atomic_write, atomic_write_text
from repro.traces.workload import DAY, TraceConfig, Workload

_FIELDS = [
    "job_id", "submit_time", "duration", "max_workers", "min_workers",
    "gpus_per_worker", "elastic", "fungible", "heterogeneous",
    "checkpointing", "model_family",
]

_BOOL_FIELDS = {"elastic", "fungible", "heterogeneous", "checkpointing"}
_INT_FIELDS = {"job_id", "max_workers", "min_workers", "gpus_per_worker"}
_FLOAT_FIELDS = {"submit_time", "duration"}


def _spec_to_dict(spec: JobSpec) -> dict:
    return {name: getattr(spec, name) for name in _FIELDS}


def _spec_from_dict(record: dict) -> JobSpec:
    kwargs = {}
    for name in _FIELDS:
        if name not in record:
            raise ValueError(f"trace record missing field {name!r}")
        value = record[name]
        if name in _BOOL_FIELDS:
            if isinstance(value, str):
                value = value.strip().lower() in ("1", "true", "yes")
            else:
                value = bool(value)
        elif name in _INT_FIELDS:
            value = int(value)
        elif name in _FLOAT_FIELDS:
            value = float(value)
        kwargs[name] = value
    return JobSpec(**kwargs)


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload to ``path`` (.json or .csv by extension)."""
    path = Path(path)
    records = [_spec_to_dict(s) for s in workload.specs]
    if path.suffix == ".json":
        payload = {
            "config": {
                "num_jobs": workload.config.num_jobs,
                "days": workload.config.days,
                "cluster_gpus": workload.config.cluster_gpus,
                "seed": workload.config.seed,
                "target_load": workload.config.target_load,
            },
            "jobs": records,
        }
        atomic_write_text(path, json.dumps(payload))
    elif path.suffix == ".csv":
        with atomic_write(path, newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=_FIELDS)
            writer.writeheader()
            writer.writerows(records)
    else:
        raise ValueError(f"unsupported trace format {path.suffix!r}")


def load_workload(
    path: Union[str, Path], cluster_gpus: int = 0
) -> Workload:
    """Read a workload from ``path`` (.json or .csv).

    JSON files produced by :func:`save_workload` carry their trace
    config; CSV files (and foreign JSON without one) get a config
    reconstructed from the data, with ``cluster_gpus`` supplied by the
    caller (or estimated from the peak demand).
    """
    path = Path(path)
    config_dict = None
    if path.suffix == ".json":
        payload = json.loads(path.read_text())
        records = payload["jobs"] if isinstance(payload, dict) else payload
        if isinstance(payload, dict):
            config_dict = payload.get("config")
    elif path.suffix == ".csv":
        with path.open(newline="") as fh:
            records = list(csv.DictReader(fh))
    else:
        raise ValueError(f"unsupported trace format {path.suffix!r}")

    specs: List[JobSpec] = [_spec_from_dict(r) for r in records]
    if not specs:
        raise ValueError(f"trace {path} contains no jobs")
    specs.sort(key=lambda s: (s.submit_time, s.job_id))

    if config_dict is not None:
        config = TraceConfig(
            num_jobs=len(specs),
            days=float(config_dict.get("days", 1.0)),
            cluster_gpus=int(config_dict.get("cluster_gpus", 1)),
            seed=int(config_dict.get("seed", 0)),
            target_load=float(config_dict.get("target_load", 1.0)),
        )
    else:
        span_days = max(1.0 / 24.0, specs[-1].submit_time / DAY)
        gpus = cluster_gpus or max(s.max_gpus for s in specs)
        config = TraceConfig(
            num_jobs=len(specs),
            days=float(span_days),
            cluster_gpus=int(gpus),
        )
    return Workload(specs=specs, config=config)
