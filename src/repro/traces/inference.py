"""Synthetic inference-cluster utilization trace.

Substitutes the proprietary trace behind Fig. 1: one sample per five
minutes of the fraction of inference GPUs serving at least one request.
The published shape: a clear diurnal pattern with ~4-hour night peaks,
troughs before dawn, utilization spanning 42 %–95 % with mean ≈65 % and a
peak-to-trough ratio ≈2.2, plus short traffic bursts (the median 5-minute
burst is ~2 % of cluster capacity, which motivates the 2 % loaning
headroom, §7.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

#: Seconds between consecutive utilization samples (paper: 5 minutes).
SAMPLE_INTERVAL = 300.0
DAY = 86400.0


@dataclass
class InferenceTrace:
    """A utilization time series for the inference cluster.

    Attributes:
        utilization: Samples in [0, 1], one per :data:`SAMPLE_INTERVAL`.
            This is the Fig. 1 metric — the fraction of GPUs *serving at
            least one request* — not raw GPU busy time.
        num_servers: Inference cluster size the trace describes.
        gpu_busy_fraction: Average GPU busy time of an occupied inference
            GPU.  Inference GPUs serving requests still idle between
            requests, which is why the paper's combined-usage numbers
            (Table 5: Baseline 0.52 overall with ~65 % of inference GPUs
            occupied) sit well below the occupancy series.
    """

    utilization: np.ndarray
    num_servers: int
    gpu_busy_fraction: float = 0.55

    def __post_init__(self) -> None:
        self.utilization = np.asarray(self.utilization, dtype=float)
        if self.utilization.ndim != 1 or len(self.utilization) == 0:
            raise ValueError("utilization must be a non-empty 1-D series")
        if np.any(self.utilization < 0) or np.any(self.utilization > 1):
            raise ValueError("utilization samples must lie in [0, 1]")
        if self.num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {self.num_servers}")

    @property
    def span(self) -> float:
        """Trace length in seconds."""
        return len(self.utilization) * SAMPLE_INTERVAL

    def utilization_at(self, t: float) -> float:
        """Utilization sample covering time ``t`` (clamped to the trace)."""
        idx = int(t // SAMPLE_INTERVAL)
        idx = min(max(idx, 0), len(self.utilization) - 1)
        return float(self.utilization[idx])

    def busy_servers_at(self, t: float) -> int:
        """Servers the inference workload itself occupies at ``t``."""
        return math.ceil(self.utilization_at(t) * self.num_servers)

    def loanable_at(self, t: float, headroom: float = 0.02) -> int:
        """Servers the inference scheduler can lend at time ``t``.

        The scheduler keeps ``headroom`` of the cluster (never loaned,
        §7.1) on top of the servers its own traffic occupies.
        """
        if not 0 <= headroom < 1:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        reserved = self.busy_servers_at(t) + math.ceil(headroom * self.num_servers)
        return max(0, self.num_servers - reserved)

    def peak_to_trough(self) -> float:
        trough = float(np.min(self.utilization))
        return float(np.max(self.utilization)) / trough if trough > 0 else math.inf

    def with_spikes(
        self, spikes: "list[tuple[float, float, float]]"
    ) -> "InferenceTrace":
        """A copy of this trace with flash-crowd overlays applied.

        Each spike is ``(at, duration, magnitude)``: utilization rises
        by ``magnitude`` (clipped to [0, 1]) for every sample covering
        ``[at, at + duration)``.  The original trace is untouched — the
        fault injector swaps the overlaid copy into the simulation, so
        the orchestrator sees the reclaim storm while the spec of the
        spike stays declarative.
        """
        series = self.utilization.copy()
        for at, duration, magnitude in spikes:
            lo = max(0, int(at // SAMPLE_INTERVAL))
            hi = min(
                len(series),
                int(math.ceil((at + duration) / SAMPLE_INTERVAL)),
            )
            if hi > lo:
                series[lo:hi] = np.clip(series[lo:hi] + magnitude, 0.0, 1.0)
        return InferenceTrace(
            utilization=series,
            num_servers=self.num_servers,
            gpu_busy_fraction=self.gpu_busy_fraction,
        )


def generate_inference_trace(
    days: float = 7.0,
    num_servers: int = 520,
    seed: int = 0,
    mean_utilization: float = 0.65,
    trough: float = 0.42,
    peak: float = 0.95,
    burst_scale: float = 0.02,
    peak_hour: float = 22.0,
) -> InferenceTrace:
    """Generate a diurnal utilization trace matching the Fig. 1 statistics.

    The base curve is an asymmetric diurnal wave — a sharpened cosine
    whose positive lobe produces the ~4-hour night peak — rescaled to hit
    the requested trough/peak and nudged toward the requested mean, with
    AR(1) burst noise of ~``burst_scale`` median magnitude per sample.

    Args:
        days: Trace length in days.
        num_servers: Inference cluster size (paper: ~4,000 GPUs / 8).
        seed: RNG seed for reproducibility.
        mean_utilization: Target mean of the series.
        trough: Target minimum utilization.
        peak: Target maximum utilization.
        burst_scale: Typical per-sample burst amplitude.
        peak_hour: Local hour of the diurnal peak.  Inference clusters
            in different time zones shift this (a market's lenders peak
            at different wall-clock times, which is what makes
            cross-region loaning profitable).
    """
    if days <= 0:
        raise ValueError(f"days must be positive, got {days}")
    rng = np.random.default_rng(seed)
    n = int(days * DAY / SAMPLE_INTERVAL)
    t = np.arange(n) * SAMPLE_INTERVAL

    # Peak at ``peak_hour`` (22:00 by default); sharpening the positive
    # lobe narrows the peak to a few hours while widening the trough.
    phase = 2 * math.pi * (t / DAY - peak_hour / 24.0)
    wave = np.cos(phase)
    sharpened = np.sign(wave) * np.abs(wave) ** 0.6

    # Mild weekly modulation (weekend traffic is a little lower).
    weekly = 1.0 - 0.05 * (np.floor(t / DAY).astype(int) % 7 >= 5)

    base = (sharpened + 1.0) / 2.0  # -> [0, 1]
    series = trough + (peak - trough) * base
    series *= weekly

    # AR(1) bursts: short-lived positive excursions.
    noise = np.zeros(n)
    shocks = rng.exponential(burst_scale, size=n) * (rng.random(n) < 0.5)
    for i in range(1, n):
        noise[i] = 0.55 * noise[i - 1] + shocks[i]
    series = series + noise - np.mean(noise)

    # Nudge the mean without disturbing the extremes much.
    series = series + (mean_utilization - float(np.mean(series))) * 0.5
    series = np.clip(series, 0.0, 1.0)
    return InferenceTrace(utilization=series, num_servers=num_servers)
