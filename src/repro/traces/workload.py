"""Synthetic training-job trace generator.

Substitutes the paper's proprietary 15-day trace (50,390 jobs, 3,544
training GPUs).  The generator is calibrated to every workload statistic
the paper reports:

* job running times range from minutes to days (log-normal body);
* ~5 % of jobs are *elastic* — large jobs from the ResNet/VGG/BERT/GNMT
  families — and together account for ~36 % of training resources with an
  average running time around 14.2 hours (§2.2);
* 21 % of all jobs are *fungible* (can run on a different GPU type in a
  different run, §2.1);
* the offered load is high enough that a FIFO scheduler sees multi-
  thousand-second average queuing at ~82 % utilization (§2.1), controlled
  here by ``target_load``.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List

import numpy as np

from repro.cluster.job import JobSpec
from repro.traces.models import ELASTIC_FAMILIES

DAY = 86400.0

#: Total-GPU demand distribution for ordinary (non-elastic) jobs:
#: dominated by small jobs, with a heavy-ish multi-server tail.
_REGULAR_GPUS = np.array([1, 2, 4, 8, 16, 32, 64])
_REGULAR_PROBS = np.array([0.46, 0.16, 0.13, 0.14, 0.07, 0.03, 0.01])


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace generator.

    Attributes:
        num_jobs: Jobs to generate.
        days: Trace span in days.
        cluster_gpus: Training-cluster size the load is calibrated to.
        seed: RNG seed.
        target_load: Offered work divided by cluster capacity over the
            span; ~0.95 reproduces the paper's congested regime.
        fungible_fraction: Overall fraction of fungible jobs (§2.1).
        elastic_job_fraction: Fraction of jobs that are elastic (§2.2).
        elastic_resource_share: Target share of total GPU-time held by
            elastic jobs; the generator sizes elastic jobs to approach
            it.
        heterogeneous_fraction: Fraction of jobs able to span GPU types
            at runtime (0 outside the Advanced/Heterogeneous scenarios).
        checkpointing_fraction: Fraction of jobs that checkpoint (§7.3's
            conservative default is zero).
        elastic_mean_hours: Mean elastic-job running time (paper: 14.2 h).
    """

    num_jobs: int = 2000
    days: float = 15.0
    cluster_gpus: int = 3544
    seed: int = 0
    target_load: float = 0.95
    fungible_fraction: float = 0.21
    elastic_job_fraction: float = 0.05
    elastic_resource_share: float = 0.36
    heterogeneous_fraction: float = 0.0
    checkpointing_fraction: float = 0.0
    elastic_mean_hours: float = 14.2

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError(f"num_jobs must be >= 1, got {self.num_jobs}")
        if self.days <= 0:
            raise ValueError(f"days must be positive, got {self.days}")
        for name in (
            "fungible_fraction",
            "elastic_job_fraction",
            "elastic_resource_share",
            "heterogeneous_fraction",
            "checkpointing_fraction",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class Workload:
    """A generated trace plus bookkeeping helpers."""

    specs: List[JobSpec]
    config: TraceConfig

    @property
    def span(self) -> float:
        return self.config.days * DAY

    def total_work(self) -> float:
        return sum(spec.total_work for spec in self.specs)

    def offered_load(self) -> float:
        """Offered work relative to cluster capacity over the span."""
        return self.total_work() / (self.config.cluster_gpus * self.span)

    def elastic_share(self) -> float:
        """Fraction of total GPU-time belonging to elastic jobs."""
        total = self.total_work()
        if total == 0:
            return 0.0
        elastic = sum(s.total_work for s in self.specs if s.elastic)
        return elastic / total

    def fungible_fraction(self) -> float:
        return sum(1 for s in self.specs if s.fungible) / len(self.specs)


def _diurnal_arrivals(
    rng: np.random.Generator, n: int, span: float
) -> np.ndarray:
    """Arrival times with mild diurnal intensity and noise, sorted."""
    hours = max(1, int(span / 3600.0))
    hour_starts = np.arange(hours) * 3600.0
    tod = (hour_starts % DAY) / DAY
    intensity = 1.0 + 0.3 * np.sin(2 * math.pi * (tod - 0.25))
    intensity *= rng.lognormal(0.0, 0.35, size=hours)
    probs = intensity / intensity.sum()
    counts = rng.multinomial(n, probs)
    times = np.concatenate(
        [
            start + rng.random(count) * 3600.0
            for start, count in zip(hour_starts, counts)
            if count > 0
        ]
    )
    times = np.clip(times, 0.0, span - 1.0)
    times.sort()
    return times


def generate_workload(config: TraceConfig = TraceConfig()) -> Workload:
    """Generate a seeded synthetic trace per ``config``.

    The routine first draws job shapes and durations, then rescales all
    durations by a single factor so the offered load matches
    ``config.target_load`` exactly — the property the scheduling results
    are sensitive to.
    """
    rng = np.random.default_rng(config.seed)
    n = config.num_jobs
    span = config.days * DAY
    num_elastic = int(round(n * config.elastic_job_fraction))
    num_regular = n - num_elastic

    specs: List[JobSpec] = []

    # --- ordinary jobs -------------------------------------------------
    gpus = rng.choice(_REGULAR_GPUS, size=num_regular, p=_REGULAR_PROBS)
    # Median ~25 minutes, heavy tail to days.  The tail is clipped
    # relative to the span so a handful of giants cannot dominate a
    # short trace the way they could not dominate the 15-day original.
    regular_cap = min(3 * DAY, span / 4.0)
    durations = np.clip(
        rng.lognormal(math.log(1500.0), 1.7, num_regular), 120, regular_cap
    )
    for i in range(num_regular):
        total = int(gpus[i])
        # Worker containers use at most 2 GPUs (the paper's testbed
        # containers are 2-GPU, Fig. 3); multi-GPU jobs run more
        # workers.  Small containers are also what lets fungible jobs
        # re-shard onto 16 GB inference GPUs (§2.1).
        gpw = 1 if total == 1 else 2
        workers = max(1, total // gpw)
        specs.append(
            JobSpec(
                job_id=i,
                submit_time=0.0,
                duration=float(durations[i]),
                max_workers=workers,
                min_workers=workers,
                gpus_per_worker=gpw,
                fungible=False,  # assigned below to hit the global fraction
                model_family="generic",
            )
        )

    # --- elastic jobs ---------------------------------------------------
    # Large, long jobs from the four well-scaling families; base demand
    # r workers, scaling range up to 2r (the paper's Ideal-scenario rule,
    # reused as the default limited-elasticity range).
    if num_elastic:
        families = rng.choice(len(ELASTIC_FAMILIES), size=num_elastic)
        base_workers = rng.choice([2, 4, 8, 12, 16], size=num_elastic,
                                  p=[0.30, 0.30, 0.20, 0.10, 0.10])
        elastic_cap = min(5 * DAY, span / 2.0)
        elastic_durations = np.clip(
            rng.lognormal(
                math.log(config.elastic_mean_hours * 3600.0) - 0.5 * 0.8**2,
                0.8,
                num_elastic,
            ),
            1800,
            elastic_cap,
        )
        for i in range(num_elastic):
            family = ELASTIC_FAMILIES[int(families[i])]
            r = int(base_workers[i])
            # ``duration`` is the minimum running time at max demand 2r;
            # at base demand r the job runs twice as long (linear).
            specs.append(
                JobSpec(
                    job_id=num_regular + i,
                    submit_time=0.0,
                    duration=float(elastic_durations[i]) / 2.0,
                    max_workers=2 * r,
                    min_workers=r,
                    gpus_per_worker=family.gpus_per_worker,
                    elastic=True,
                    model_family=family.name,
                )
            )

    # --- calibrate the elastic resource share ---------------------------
    total = sum(s.total_work for s in specs)
    elastic_work = sum(s.total_work for s in specs if s.elastic)
    if 0 < elastic_work < total and 0 < config.elastic_resource_share < 1:
        share = config.elastic_resource_share
        # Scale elastic durations so elastic_work / total == share.
        factor = share / (1 - share) * (total - elastic_work) / elastic_work
        specs = [
            replace(s, duration=s.duration * factor) if s.elastic else s
            for s in specs
        ]

    # --- calibrate offered load -----------------------------------------
    # Scale-then-clip, iterated: clipping giants back under the span-
    # relative caps changes the total, so a couple of rounds are needed
    # to land near the target load without re-growing monster jobs.
    def _cap(s: JobSpec) -> float:
        return elastic_cap if s.elastic else regular_cap

    elastic_cap = min(5 * DAY, span / 2.0)
    for _ in range(3):
        total = sum(s.total_work for s in specs)
        load_factor = config.target_load * config.cluster_gpus * span / total
        specs = [
            replace(
                s,
                duration=min(_cap(s), max(60.0, s.duration * load_factor)),
            )
            for s in specs
        ]

    # --- arrivals, fungibility, flags ------------------------------------
    arrivals = _diurnal_arrivals(rng, n, span)
    order = rng.permutation(n)
    specs = [specs[i] for i in order]

    # Fungibility is drawn uniformly over all jobs: that makes the
    # fungible share of the *job count* and of the *load* both match the
    # configured fraction in expectation, as the paper reports (21 % of
    # jobs in §2.1 and 21 % of training load in §7.1).
    want_fungible = int(round(config.fungible_fraction * n))
    fungible_ids = set(
        rng.choice(n, size=want_fungible, replace=False).tolist()
    )
    hetero_ids = set(
        rng.choice(n, size=int(round(config.heterogeneous_fraction * n)),
                   replace=False).tolist()
    )
    ckpt_ids = set(
        rng.choice(n, size=int(round(config.checkpointing_fraction * n)),
                   replace=False).tolist()
    )

    final: List[JobSpec] = []
    for idx, spec in enumerate(specs):
        final.append(
            replace(
                spec,
                job_id=idx,
                submit_time=float(arrivals[idx]),
                fungible=spec.fungible or idx in fungible_ids,
                heterogeneous=idx in hetero_ids,
                checkpointing=idx in ckpt_ids,
            )
        )
    return Workload(specs=final, config=config)
