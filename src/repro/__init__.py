"""repro: a reproduction of "Lyra: Elastic Scheduling for Deep Learning
Clusters" (EuroSys '23).

Public API highlights:

* :mod:`repro.cluster` — GPUs, servers, jobs, whitelist-based loaning.
* :mod:`repro.core` — Lyra's reclaiming, two-phase allocation, placement
  and the resource orchestrator.
* :mod:`repro.schedulers` — Lyra's job scheduler plus FIFO/SJF/Gandiva/
  AFS/Pollux/Opportunistic comparison schemes.
* :mod:`repro.simulator` — the discrete-event cluster simulator.
* :mod:`repro.traces` — synthetic workload and inference-utilization
  traces calibrated to the paper's statistics.
* :mod:`repro.elastic` — scaling models, elastic job controller,
  hyperparameter tuning.
* :mod:`repro.predictor` — the NumPy LSTM usage predictor.
* :mod:`repro.obs` — observability: event tracing, metrics registry,
  phase profiling and trace inspection (docs/OBSERVABILITY.md).
* :mod:`repro.scenarios` — evaluation scenarios and the experiment
  runner (:func:`repro.scenarios.run_scheme`).
"""

from repro.analysis import compare_to_paper, render_report
from repro.obs import Observability
from repro.profiler import JobProfiler
from repro.scenarios import (
    SCENARIOS,
    SCHEMES,
    ExperimentSetup,
    apply_scenario,
    default_setup,
    run_scheme,
)

__version__ = "1.0.0"

__all__ = [
    "JobProfiler",
    "SCENARIOS",
    "SCHEMES",
    "ExperimentSetup",
    "Observability",
    "apply_scenario",
    "compare_to_paper",
    "default_setup",
    "render_report",
    "run_scheme",
    "__version__",
]
