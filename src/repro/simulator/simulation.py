"""High-fidelity cluster simulation (§7.1's simulator, rebuilt).

The simulation replays a job trace against a training cluster (optionally
paired with an inference cluster for capacity loaning), delegating all
policy decisions to a pluggable :class:`~repro.schedulers.base.SchedulerPolicy`
and, when loaning is enabled, to a
:class:`~repro.core.orchestrator.ResourceOrchestrator`.

Simulated mechanics (matching §7.1–7.2):

* job events — arrival, start, completion, scaling, preemption — are all
  discrete events; job running time derives from remaining work divided by
  the allocation-dependent throughput, so elastic running time is
  inversely proportional to resources in the linear regime;
* a preempted job pays a fixed overhead (the 63 s measured on the
  testbed, §7.5) and, without checkpointing, loses all progress;
* the orchestrator ticks every five minutes; the job scheduler runs at a
  much smaller interval and additionally after every arrival, completion
  and capacity change (§3);
* GPU usage of the (dynamically sized) training whitelist, of both
  clusters combined, and of on-loan servers is sampled every five minutes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set

from repro.cluster.cluster import Cluster, ClusterPair
from repro.cluster.job import Job, JobSpec, JobStatus
from repro.core.actions import PlanExecutor
from repro.core.placement import PlacementEngine
from repro.core.view import ClusterView
from repro.elastic.throughput import get_scaling_model
from repro.obs import Observability, get_logger
from repro.obs.profiling import PHASE_SCHEDULER_TICK
from repro.obs.provenance import (
    MAX_TRIGGERS,
    TRIGGER_ARRIVAL,
    TRIGGER_COMPLETION,
    TRIGGER_FAULT,
    TRIGGER_FORECAST,
    TRIGGER_HEARTBEAT,
    TRIGGER_INTERVAL,
    TRIGGER_NODE_FAILURE,
    TRIGGER_NODE_RECOVERY,
    TRIGGER_PREEMPT,
    Provenance,
    Trigger,
)
from repro.obs.tracer import CAT_JOB, CAT_ORCHESTRATOR, CAT_SCHEDULER
from repro.profiler.profiler import JobProfiler
from repro.rm.manager import ResourceManager
from repro.simulator.engine import Engine
from repro.simulator.events import Activity, EventKind
from repro.simulator.metrics import SimulationMetrics
from repro.traces.inference import InferenceTrace

DAY = 86400.0

logger = get_logger("simulator")

#: Structured-trace (name, category) for each activity kind.
_TRACE_NAMES = {
    EventKind.SUBMIT: ("job.submit", CAT_JOB),
    EventKind.START: ("job.start", CAT_JOB),
    EventKind.FINISH: ("job.finish", CAT_JOB),
    EventKind.PREEMPT: ("job.preempt", CAT_JOB),
    EventKind.SCALE_OUT: ("job.scale_out", CAT_JOB),
    EventKind.SCALE_IN: ("job.scale_in", CAT_JOB),
    EventKind.LOAN: ("orchestrator.loan", CAT_ORCHESTRATOR),
    EventKind.RECLAIM: ("orchestrator.reclaim", CAT_ORCHESTRATOR),
    EventKind.SCHEDULE_EPOCH: ("scheduler.epoch", CAT_SCHEDULER),
    EventKind.MIGRATE: ("job.migrate", CAT_JOB),
}

#: Relative tolerance for "the job is done" at a completion event.
_WORK_EPS = 1e-6


@dataclass
class SimulationConfig:
    """Simulation-wide knobs.

    Attributes:
        scheduler_interval: Minimum seconds between scheduling epochs;
            epochs are additionally triggered by job/capacity events.
        orchestrator_interval: Seconds between orchestrator ticks (§7.1:
            five minutes).
        preemption_overhead: Seconds of extra work charged per preemption
            (§7.5: 63 s measured on the testbed).
        sample_interval: Seconds between usage samples.
        elastic: Master switch for elastic scaling.
        drain_limit: Extra simulated seconds allowed after the last
            arrival for the queue to drain before the run is cut off.
        scaling_model: Throughput scaling model name applied to elastic
            jobs ("linear" or "sublinear20", §7.2).
        tuned_jobs: Lyra+TunedJobs mode — hyperparameter tuning recovers
            scaling losses and adds a small throughput bonus whenever a
            job runs above its base demand (§7.4).
    """

    scheduler_interval: float = 30.0
    orchestrator_interval: float = 300.0
    preemption_overhead: float = 63.0
    sample_interval: float = 300.0
    elastic: bool = True
    drain_limit: float = 30 * DAY
    scaling_model: str = "linear"
    tuned_jobs: bool = False
    special_elastic_grouping: bool = True
    record_activities: bool = False
    #: use the §3 job profiler for runtime estimates instead of oracle
    #: durations: estimates are learned online from completed jobs
    use_profiler: bool = False
    #: mean time between node failures across the training whitelist, in
    #: seconds (None disables failure injection)
    node_mtbf: Optional[float] = None
    #: time a failed node spends unhealthy before rejoining
    node_repair_time: float = 3600.0
    failure_seed: int = 0
    #: full chaos specification (:class:`repro.faults.plan.FaultPlan`);
    #: supersedes the legacy ``node_mtbf`` knobs when set.  Typed loosely
    #: so fault-free simulations never import :mod:`repro.faults`.
    fault_plan: Optional[object] = None
    #: maintain a delta-invalidated :class:`~repro.core.view.ClusterView`
    #: and serve pools/candidates/queue order from it (False falls back
    #: to the legacy full-scan path; decisions are identical either way)
    incremental_view: bool = True
    #: which scheduling-state backend serves the policy facades:
    #: ``"legacy"`` (full scans, no view), ``"incremental"`` (the
    #: dict-indexed ClusterView) or ``"array"`` (the numpy
    #: structure-of-arrays mirror, :mod:`repro.core.arrays`).  ``None``
    #: derives the backend from ``incremental_view`` for back-compat.
    #: Decisions are byte-identical across all three (golden-pinned).
    view_backend: Optional[str] = None
    #: keep every applied non-empty :class:`~repro.core.actions.EpochPlan`
    #: (as JSON dicts with pricing) in ``Simulation.plan_log`` — the
    #: ``repro run --explain`` data source
    record_plans: bool = False

    def __post_init__(self) -> None:
        if self.scheduler_interval <= 0:
            raise ValueError("scheduler_interval must be positive")
        if self.orchestrator_interval <= 0:
            raise ValueError("orchestrator_interval must be positive")
        if self.view_backend not in (None, "legacy", "incremental", "array"):
            raise ValueError(
                f"unknown view_backend {self.view_backend!r}; expected "
                f"'legacy', 'incremental' or 'array'"
            )

    def resolved_view_backend(self) -> str:
        """The effective backend name (``view_backend`` wins; else the
        legacy ``incremental_view`` flag maps to incremental/legacy)."""
        if self.view_backend is not None:
            return self.view_backend
        return "incremental" if self.incremental_view else "legacy"


#: Throughput bonus hyperparameter tuning yields above base demand (§7.4).
_TUNING_BONUS = 1.08


class Simulation:
    """One end-to-end replay of a trace under a scheduling policy."""

    def __init__(
        self,
        specs: Sequence[JobSpec],
        pair: ClusterPair,
        policy: "SchedulerPolicy",
        inference_trace: Optional[InferenceTrace] = None,
        orchestrator: Optional["ResourceOrchestrator"] = None,
        config: SimulationConfig = SimulationConfig(),
        obs: Optional[Observability] = None,
    ):
        self.pair = pair
        self.cluster: Cluster = pair.training
        self.rm = ResourceManager(pair)
        self.profiler = JobProfiler() if config.use_profiler else None
        self.policy = policy
        self.inference_trace = inference_trace
        self.orchestrator = orchestrator
        self.config = config
        self.engine = Engine()
        self.obs = obs if obs is not None else Observability.disabled()
        self.tracer = self.obs.tracer
        # Promote profiler phases to spans on the simulated clock; a
        # no-op unless both the profiler and the tracer are enabled.
        self.obs.phases.bind(self.tracer, lambda: self.engine.now)
        self.metrics = SimulationMetrics(registry=self.obs.registry)
        self.activities: List[Activity] = []
        #: epoch triggers awaiting the next plan's provenance record;
        #: only ever populated while the tracer is enabled
        self._pending_triggers: List[Trigger] = []
        self._dropped_triggers = 0
        #: jobs that have dispatched at least once (queue-wait metric)
        self._started_once: Set[int] = set()

        self.jobs: Dict[int, Job] = {}
        self.pending: List[Job] = []
        self.running: Dict[int, Job] = {}
        #: straggling servers: ``{server_id: throughput factor}``; empty
        #: in fault-free runs, in which case every guard below is inert
        self.degraded_servers: Dict[str, float] = {}
        #: the installed :class:`~repro.faults.injector.FaultInjector`,
        #: when a fault plan is active
        self.fault_injector = None
        self._fail_times: Dict[str, float] = {}
        self._preempt_times: Dict[int, float] = {}
        self._completion_epoch: Dict[int, int] = {}
        self._tick_pending = False
        self._last_tick = -math.inf
        self._last_arrival = 0.0
        self._first_attempt_seen: Set[int] = set()
        self._hour_submissions: Dict[int, int] = {}
        self._hour_queued: Dict[int, int] = {}

        scaling = get_scaling_model(config.scaling_model)
        for spec in specs:
            job = Job(self._clamp_spec(spec))
            if job.elastic and not config.tuned_jobs:
                job.scaling_model = scaling
            self.jobs[job.job_id] = job
            self._last_arrival = max(self._last_arrival, spec.submit_time)
        self.metrics.jobs = list(self.jobs.values())
        self.metrics.submissions = len(self.jobs)

        #: incremental scheduling state; None in legacy full-scan mode
        self.view: Optional[ClusterView] = None
        backend = config.resolved_view_backend()
        if backend != "legacy":
            view_cls = ClusterView
            if backend == "array":
                from repro.core.arrays import ArrayClusterView

                view_cls = ArrayClusterView
            default_cost = (
                1.0 / pair.inference_compute
                if hasattr(pair, "inference_compute")
                else 3.0
            )
            self.view = view_cls(
                pair.training,
                default_onloan_cost=default_cost,
                jobs=self.jobs,
            )
        #: the single commit point for decision plans: every epoch's
        #: :class:`~repro.core.actions.EpochPlan` is applied through it
        self.executor = PlanExecutor(self)
        #: applied plans (JSON dicts), populated when ``record_plans``
        self.plan_log: List[dict] = []
        #: persistent placement engines, keyed by opportunistic flag
        self._engines: Dict[bool, PlacementEngine] = {}
        #: scheduling epochs skipped because no deltas arrived
        self._epochs_skipped = 0
        self._last_epoch_version: Optional[int] = None
        #: heartbeat firings (drops when wake-up skipping is active)
        self._heartbeats = 0
        #: attached :class:`~repro.recovery.manager.RecoveryManager`;
        #: None (the default) keeps the run loop on the exact pre-recovery
        #: code path — no checkpoints, no WAL, no recovery allocations
        self.recovery = None
        #: the run deadline, kept so a restored run can resume to it
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------
    def _clamp_spec(self, spec: JobSpec) -> JobSpec:
        """Cap demands at the dedicated cluster size (a real cluster
        rejects jobs larger than itself), preserving total workload."""
        capacity = self.pair.training.total_gpus
        max_fit = max(1, capacity // spec.gpus_per_worker)
        if spec.max_workers <= max_fit:
            return spec
        total_work = spec.total_work
        new_max = max_fit
        new_min = min(spec.min_workers, new_max)
        duration = total_work / (new_max * spec.gpus_per_worker)
        return replace(
            spec,
            max_workers=new_max,
            min_workers=new_min,
            duration=duration,
            elastic=spec.elastic and new_min < new_max,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def log(self, kind: EventKind, job_id: Optional[int] = None, detail=None,
            **trace_args):
        """Record one activity: calibration log plus structured trace.

        ``detail`` feeds the legacy :class:`Activity` audit trail;
        ``trace_args`` become the structured event's payload (falling
        back to ``detail`` when no richer payload is given).
        """
        if self.config.record_activities:
            self.activities.append(
                Activity(self.engine.now, kind, job_id, detail)
            )
        if self.tracer.enabled:
            name, cat = _TRACE_NAMES[kind]
            if detail is not None and "detail" not in trace_args:
                trace_args["detail"] = detail
            self.tracer.emit(
                name, ts=self.engine.now, cat=cat, job_id=job_id,
                **trace_args,
            )

    def trace(self, name: str, job_id: Optional[int] = None, **args) -> None:
        """Emit a structured event outside the :class:`EventKind` set."""
        if self.tracer.enabled:
            self.tracer.emit(name, ts=self.engine.now, job_id=job_id, **args)

    def phase(self, name: str):
        """Wall-clock phase timer (no-op unless profiling is enabled)."""
        return self.obs.phases.phase(name)

    def note_trigger(self, kind: str, **detail) -> None:
        """Record one cause of the next scheduling epoch (provenance).

        Call sites pair this with :meth:`trigger_schedule`; the pending
        list is consumed into the next applied plan's
        :class:`~repro.obs.provenance.Provenance`.  A no-op (no dict, no
        allocation) when the run is untraced.
        """
        if not self.tracer.enabled:
            return
        if len(self._pending_triggers) >= MAX_TRIGGERS:
            self._dropped_triggers += 1
            return
        self._pending_triggers.append(
            Trigger(
                kind=kind,
                ts=self.engine.now,
                detail=tuple(sorted(detail.items())),
            )
        )

    def _take_provenance(
        self, plan, extra_triggers=(), consume_pending=True
    ) -> None:
        """Attach a provenance record to a freshly built plan.

        Scheduler plans consume the pending trigger list (the events
        that scheduled the epoch); orchestrator plans are driven by
        their own interval and only carry synthesized triggers, leaving
        the pending list for the next scheduling epoch.
        """
        dropped = 0
        if consume_pending:
            triggers = tuple(self._pending_triggers) + tuple(extra_triggers)
            self._pending_triggers = []
            dropped = self._dropped_triggers
            self._dropped_triggers = 0
        else:
            triggers = tuple(extra_triggers)
        plan.provenance = Provenance(
            policy=plan.policy,
            ts=self.engine.now,
            triggers=triggers,
            inputs=plan.decision_inputs or {},
            span_id=plan.span_id,
            dropped_triggers=dropped,
        )

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationMetrics:
        """Replay the trace; ``until`` optionally cuts the run short at a
        simulated timestamp (the ``repro whatif`` probe point)."""
        for job in self.jobs.values():
            self.engine.schedule(
                job.spec.submit_time, self._arrival(job),
                tag=("arrival", job.job_id),
            )
        self.engine.schedule(0.0, self._sampler, tag=("sampler",))
        self.engine.schedule(0.0, self._heartbeat, tag=("heartbeat",))
        if self.orchestrator is not None:
            self.engine.schedule(0.0, self._orchestrator_tick, tag=("orch",))
        plan = self._resolve_fault_plan()
        if self.tracer.enabled:
            self.tracer.emit(
                "run.config", ts=0.0,
                node_mtbf=self.config.node_mtbf,
                node_repair_time=self.config.node_repair_time,
                failure_seed=self.config.failure_seed,
                fault_plan=plan.to_dict() if plan is not None else None,
                scheduler_interval=self.config.scheduler_interval,
                orchestrator_interval=self.config.orchestrator_interval,
                elastic=self.config.elastic,
                scaling_model=self.config.scaling_model,
            )
        if plan is not None:
            # lazy import: fault-free runs never load repro.faults
            from repro.faults.injector import FaultInjector

            self.fault_injector = FaultInjector(plan, self)
            self.fault_injector.install()
        deadline = self._last_arrival + self.config.drain_limit
        if until is not None:
            deadline = min(deadline, until)
        self._deadline = deadline
        self._run_loop(deadline)
        self._finalize_hourly_ratio()
        return self.metrics

    def _run_loop(self, deadline: float) -> None:
        """Drive the engine to ``deadline``.

        Without an attached recovery manager this is exactly the
        pre-recovery ``engine.run`` call; with one, the manager steps
        the engine so it can checkpoint (and honor crash barriers)
        *between* events — event order is identical either way.
        """
        if self.recovery is None:
            self.engine.run(until=deadline)
        else:
            self.recovery.run_loop(self, deadline)

    def resume(self) -> SimulationMetrics:
        """Continue a restored run to its original deadline.

        The counterpart of :meth:`run` for simulations loaded from a
        snapshot: all setup (initial events, fault installation) already
        happened in the original process and lives in the restored
        state, so only the loop and the final bookkeeping remain.
        """
        if self._deadline is None:
            raise RuntimeError("resume() requires a run() to have started")
        self._run_loop(self._deadline)
        self._finalize_hourly_ratio()
        return self.metrics

    def _resolve_fault_plan(self):
        """The effective fault plan: explicit plan, legacy knobs, or None.

        Returns None (not an empty plan) when nothing is injected, so
        the zero-cost path skips the injector entirely.
        """
        plan = self.config.fault_plan
        if plan is not None:
            return None if plan.is_empty() else plan
        if self.config.node_mtbf:
            from repro.faults.plan import FaultPlan

            return FaultPlan.from_legacy(
                self.config.node_mtbf,
                repair_time=self.config.node_repair_time,
                seed=self.config.failure_seed,
            )
        return None

    def _heartbeat(self) -> None:
        """Periodic scheduling epochs (§3: the job scheduler runs
        periodically, on top of the event-driven triggers)."""
        self._heartbeats += 1
        if self.pending:
            self.note_trigger(TRIGGER_HEARTBEAT, pending=len(self.pending))
            self.trigger_schedule()
        if self.pending or self.running or self.engine.now < self._last_arrival:
            delay = max(60.0, self.config.scheduler_interval)
            when = self.engine.now + delay
            if self.view is not None:
                # Skip redundant wake-ups: heartbeat firings strictly
                # before the next heap event see unchanged state and do
                # nothing (any pending job implies a coalesced tick in
                # the heap no later than now + delay), so jump straight
                # to the first grid point not before that event.  The
                # grid is walked by repeated addition because that is the
                # exact float sequence chained schedule_after calls
                # produce — a closed form would drift by ULPs and shift
                # every later timestamp.
                nxt = self.engine.peek_next_time()
                if nxt is not None:
                    while when < nxt:
                        when = when + delay
            self.engine.schedule(when, self._heartbeat, tag=("heartbeat",))

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _arrival(self, job: Job):
        def handler() -> None:
            if self.profiler is not None:
                # the scheduler sees the profiler's estimate, not the
                # oracle duration (§3: profiling happens at enqueue)
                job.estimate_error = self.profiler.estimate_error(job.spec)
            self.pending.append(job)
            if self.view is not None:
                self.view.note_queue_change()
            hour = int(self.engine.now // 3600)
            self._hour_submissions[hour] = self._hour_submissions.get(hour, 0) + 1
            job._arrival_hour = hour  # noqa: SLF001 - simulator-private
            self.log(
                EventKind.SUBMIT, job.job_id,
                min_workers=job.spec.min_workers,
                max_workers=job.spec.max_workers,
                gpus_per_worker=job.spec.gpus_per_worker,
                elastic=job.spec.elastic,
            )
            self.note_trigger(TRIGGER_ARRIVAL, job_id=job.job_id)
            self.trigger_schedule()

        return handler

    def trigger_schedule(self) -> None:
        """Request a scheduling epoch, coalescing rapid-fire triggers."""
        if self._tick_pending:
            return
        self._tick_pending = True
        when = max(self.engine.now, self._last_tick + self.config.scheduler_interval)
        self.engine.schedule(when, self._schedule_tick, tag=("tick",))

    def _schedule_tick(self) -> None:
        self._tick_pending = False
        self._last_tick = self.engine.now
        self.log(EventKind.SCHEDULE_EPOCH, detail=len(self.pending))
        with self.obs.phases.phase(PHASE_SCHEDULER_TICK):
            if self._can_skip_epoch():
                # No deltas since the last epoch and the policy is
                # epoch-idempotent: re-running would provably repeat the
                # same (non-)decisions.  The epoch is still logged and
                # the bookkeeping below still runs, so activity logs and
                # metrics are identical to the non-skipping path.
                self._epochs_skipped += 1
                self.metrics.registry.counter("sim.epochs_skipped").inc()
            else:
                plan = self.policy.plan(self)
                if self.tracer.enabled:
                    self._take_provenance(plan)
                self.executor.apply(plan)
                if self.view is not None:
                    self._last_epoch_version = self.view.version
        # First-attempt bookkeeping for the Fig. 2 queuing ratio.
        for job in self.pending:
            if job.job_id not in self._first_attempt_seen:
                self._first_attempt_seen.add(job.job_id)
                hour = getattr(job, "_arrival_hour", 0)
                self._hour_queued[hour] = self._hour_queued.get(hour, 0) + 1
        for job in list(self.running.values()):
            self._first_attempt_seen.add(job.job_id)
        if not self.pending and not self.running and self.engine.now >= self._last_arrival:
            # Nothing left to do: cut the run short (samplers would
            # otherwise keep the heap alive forever).
            self.engine.stop()

    def _can_skip_epoch(self) -> bool:
        """Whether this epoch is provably a no-op.

        Requires an epoch-idempotent policy, an unchanged ClusterView
        version since the last executed epoch, and no active fault
        machinery (transient launch gates could make a retry succeed
        where the last epoch failed)."""
        return (
            self.view is not None
            and getattr(self.policy, "epoch_idempotent", False)
            and self._last_epoch_version is not None
            and self._last_epoch_version == self.view.version
            and self.fault_injector is None
            and not self.degraded_servers
        )

    def placement_engine(self, opportunistic: bool = False) -> PlacementEngine:
        """The persistent, view-fed placement engine for this simulation.

        One engine per opportunistic flag lives for the whole run (the
        engine is stateless apart from configuration, so persistence is
        safe); its clock is refreshed on every call.
        """
        engine = self._engines.get(opportunistic)
        if engine is None:
            engine = PlacementEngine(
                self.cluster,
                special_elastic_grouping=self.config.special_elastic_grouping,
                opportunistic=opportunistic,
                rm=self.rm,
                view=self.view,
            )
            self._engines[opportunistic] = engine
        engine.now = self.now
        return engine

    def _sampler(self) -> None:
        now = self.engine.now
        if now > self._last_arrival:
            # Usage statistics cover the trace window only (the paper's
            # clusters run continuously; our finite replay has a drain
            # tail that would otherwise dilute every mean).
            return
        training = self.cluster
        # Training usage per Table 5: GPU-time delivered to training,
        # normalized and measured against the *dedicated* cluster size —
        # capacity loaning therefore pushes it up (Baseline 0.72 ->
        # Basic 0.86 in the paper), rather than diluting the denominator.
        dedicated_total = used = 0.0
        for server in training.servers:
            if server.on_loan:
                used += server.used_gpus * server.gpu_type.relative_compute
            else:
                used += server.used_gpus
                dedicated_total += server.num_gpus
        if dedicated_total:
            ratio = min(1.0, used / dedicated_total)
            self.metrics.training_usage.append(now, ratio)
            self.obs.registry.gauge("usage.training").set(ratio)

        total_gpus = self.pair.training.total_gpus + self.pair.inference.total_gpus
        inference_busy = 0.0
        if self.inference_trace is not None and self.pair.inference.total_gpus:
            gpus_per_server = (
                self.pair.inference.servers[0].num_gpus
                if self.pair.inference.servers
                else 8
            )
            busy_servers = min(
                self.inference_trace.busy_servers_at(now),
                len(self.pair.inference.servers),
            )
            inference_busy = (
                busy_servers
                * gpus_per_server
                * self.inference_trace.gpu_busy_fraction
            )
        overall = (training.used_gpus + inference_busy) / total_gpus if total_gpus else 0.0
        self.metrics.overall_usage.append(now, overall)
        self.obs.registry.gauge("usage.overall").set(overall)

        onloan = training.on_loan_servers
        onloan_usage = None
        if onloan:
            used = sum(s.used_gpus for s in onloan)
            total = sum(s.num_gpus for s in onloan)
            onloan_usage = used / total
            self.metrics.onloan_usage.append(now, onloan_usage)
            busy = sum(1 for s in onloan if not s.idle)
            self.metrics.onloan_busy.append(now, busy / len(onloan))

        if self.tracer.enabled:
            # Periodic utilization snapshot: the `repro report`
            # utilization timeline reads these back from the trace.
            self.trace(
                "cluster.usage",
                training=round(
                    self.metrics.training_usage.values[-1], 6
                ) if self.metrics.training_usage.values else None,
                overall=round(overall, 6),
                loaned=self.pair.loaned_count,
                onloan_usage=(
                    round(onloan_usage, 6)
                    if onloan_usage is not None else None
                ),
                running=len(self.running),
                pending=len(self.pending),
            )

        self.engine.schedule_after(
            self.config.sample_interval, self._sampler, tag=("sampler",)
        )

    def _orchestrator_tick(self) -> None:
        assert self.orchestrator is not None
        plan = self.orchestrator.plan_tick(self)
        if self.tracer.enabled:
            inputs = plan.decision_inputs or {}
            extra = [Trigger(
                kind=TRIGGER_INTERVAL,
                ts=self.engine.now,
                detail=(("interval_s", self.config.orchestrator_interval),),
            )]
            if inputs.get("forecast_capped"):
                extra.append(Trigger(TRIGGER_FORECAST, ts=self.engine.now))
            if inputs.get("degraded"):
                extra.append(Trigger(
                    TRIGGER_FAULT,
                    ts=self.engine.now,
                    detail=(("fault", "predictor_down"),),
                ))
            self._take_provenance(
                plan, extra_triggers=extra, consume_pending=False
            )
        self.executor.apply(plan)
        if self.pending or self.running or self.engine.now < self._last_arrival:
            self.engine.schedule_after(
                self.config.orchestrator_interval, self._orchestrator_tick,
                tag=("orch",),
            )

    # ------------------------------------------------------------------
    # policy-facing API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.engine.now

    @property
    def running_elastic(self) -> List[Job]:
        return [j for j in self.running.values() if j.elastic]

    def activate(self, job: Job) -> None:
        """Start a job whose workers the policy just placed."""
        if job.total_workers < job.spec.min_workers:
            raise RuntimeError(
                f"job {job.job_id} activated with {job.total_workers} workers "
                f"< base demand {job.spec.min_workers}"
            )
        self.pending.remove(job)
        if self.view is not None:
            self.view.note_queue_change()
        job.mark_started(self.now)
        self._apply_tuning(job)
        if self.degraded_servers:
            job.straggler_penalty = self._straggler_penalty_for(job)
        restart_of = self._preempt_times.pop(job.job_id, None)
        if restart_of is not None:
            # time-to-recover: how long a preempted job waited to run again
            self.metrics.registry.histogram(
                "resilience.time_to_restart_s"
            ).observe(self.now - restart_of)
        self.running[job.job_id] = job
        if job.job_id not in self._started_once:
            self._started_once.add(job.job_id)
            self.metrics.registry.histogram("sim.queue_wait_s").observe(
                self.now - job.spec.submit_time
            )
        self.log(
            EventKind.START, job.job_id, detail=job.total_workers,
            workers=job.total_workers,
            queued_s=self.now - job.spec.submit_time,
            **self._start_trace_extras(job),
        )
        self._reschedule_completion(job)

    def _start_trace_extras(self, job: Job) -> Dict[str, object]:
        """Placement/loan context attached to traced ``job.start`` events
        (powers the per-job timeline); empty — and allocation-free — in
        untraced runs."""
        if not self.tracer.enabled:
            return {}
        gpu_types = set()
        for sid in job.servers:
            server = self.rm._server(sid)
            if server is not None:
                gpu_types.add(server.gpu_type.name)
        return {
            "servers": sorted(job.servers),
            "onloan": sorted(job._onloan_servers),
            "gpu_types": sorted(gpu_types),
        }

    def rescale(self, job: Job, scaled_out: bool) -> None:
        """Account a scale operation on a running job and re-time it."""
        job.advance(self.now)
        self._apply_tuning(job)
        if self.degraded_servers:
            job.straggler_penalty = self._straggler_penalty_for(job)
        job.scale_ops += 1
        self.metrics.scale_ops += 1
        kind = EventKind.SCALE_OUT if scaled_out else EventKind.SCALE_IN
        self.log(kind, job.job_id, detail=job.total_workers,
                 workers=job.total_workers)
        self._reschedule_completion(job)

    # -- plan-commit primitives (called by PlanExecutor only) ----------
    def _commit_start(
        self, job: Job, workers: int, queued_s: float, eta: float
    ) -> None:
        """Commit a staged :class:`~repro.core.actions.Launch`.

        The job's resource-side start (placement, mark_started, tuning)
        already happened inside the plan transaction; this performs the
        deferred lifecycle half of :meth:`activate` with the payloads
        snapshotted at decision time, so logs and completion timing are
        byte-identical to the imperative path.
        """
        self.pending.remove(job)
        if self.view is not None:
            self.view.note_queue_change()
        restart_of = self._preempt_times.pop(job.job_id, None)
        if restart_of is not None:
            # time-to-recover: how long a preempted job waited to run again
            self.metrics.registry.histogram(
                "resilience.time_to_restart_s"
            ).observe(self.now - restart_of)
        self.running[job.job_id] = job
        if job.job_id not in self._started_once:
            self._started_once.add(job.job_id)
            self.metrics.registry.histogram("sim.queue_wait_s").observe(
                queued_s
            )
        self.log(
            EventKind.START, job.job_id, detail=workers,
            workers=workers, queued_s=queued_s,
            **self._start_trace_extras(job),
        )
        self._schedule_completion_at(job, eta)

    def _commit_rescale(
        self, job: Job, scaled_out: bool, workers: int, eta: float
    ) -> None:
        """Commit a staged ScaleOut/ScaleIn: the lifecycle half of
        :meth:`rescale`, with decision-time payload snapshots."""
        job.scale_ops += 1
        self.metrics.scale_ops += 1
        kind = EventKind.SCALE_OUT if scaled_out else EventKind.SCALE_IN
        self.log(kind, job.job_id, detail=workers, workers=workers)
        self._schedule_completion_at(job, eta)

    def _apply_tuning(self, job: Job) -> None:
        """Lyra+TunedJobs: retune batch size/LR on every allocation change.

        Tuning restores near-perfect scaling and yields a small goodput
        bonus whenever the job runs above base demand (§7.4)."""
        if not self.config.tuned_jobs or not job.elastic:
            return
        if job.total_workers > job.spec.min_workers:
            job.hetero_penalty = _TUNING_BONUS
        else:
            job.hetero_penalty = 1.0

    def _reschedule_completion(self, job: Job) -> None:
        self._schedule_completion_at(job, job.eta())

    def _schedule_completion_at(self, job: Job, eta: float) -> None:
        """(Re-)arm the job's completion at ``now + eta``.

        ``eta`` may be a plan-time snapshot: committing every staged
        action's recorded eta in order reproduces the legacy sequence of
        heap insertions exactly, including ones superseded later in the
        same epoch (heap identity drives heartbeat skip-ahead timing).
        """
        epoch = self._completion_epoch.get(job.job_id, 0) + 1
        self._completion_epoch[job.job_id] = epoch
        if math.isinf(eta):
            return
        self.engine.schedule(
            self.now + eta, self._completion(job, epoch),
            tag=("completion", job.job_id, epoch),
        )

    def _completion(self, job: Job, epoch: int):
        def handler() -> None:
            if self._completion_epoch.get(job.job_id) != epoch:
                return  # stale event from a superseded allocation
            if job.status is not JobStatus.RUNNING:
                return
            job.advance(self.now)
            if job.remaining_work > _WORK_EPS * job.spec.total_work:
                self._reschedule_completion(job)
                return
            self.rm.release_job(job, now=self.now)
            job.mark_finished(self.now)
            del self.running[job.job_id]
            if self.profiler is not None:
                self.profiler.observe(job.spec, job.spec.duration)
            self.metrics.registry.histogram("sim.jct_s").observe(job.jct)
            self.log(EventKind.FINISH, job.job_id, jct_s=job.jct)
            logger.debug("job %d finished at %.0f (jct %.0f s)",
                         job.job_id, self.now, job.jct)
            self.note_trigger(TRIGGER_COMPLETION, job_id=job.job_id)
            self.trigger_schedule()

        return handler

    def preempt(self, job: Job, cause: str = "scheduler") -> None:
        """Preempt a running job (reclaiming made it inevitable, §4)."""
        if job.job_id not in self.running:
            raise RuntimeError(f"job {job.job_id} is not running")
        job.advance(self.now)  # bank progress before containers die
        workers = job.total_workers
        # resilience accounting: GPU-seconds this preemption destroys —
        # all banked progress unless checkpointing, plus the §7.5
        # checkpoint/restart overhead either way
        lost_work = self.config.preemption_overhead * (
            job.spec.max_workers * job.spec.gpus_per_worker
        )
        if not job.spec.checkpointing:
            lost_work += job.spec.total_work - job.remaining_work
        self.metrics.registry.histogram(
            "resilience.lost_gpu_hours", cause=cause
        ).observe(lost_work / 3600.0)
        self.metrics.registry.counter(
            "sim.preemptions_by_cause", cause=cause
        ).inc()
        self._preempt_times[job.job_id] = self.now
        self.rm.release_job(job, now=self.now)
        job.mark_preempted(self.now, overhead=self.config.preemption_overhead)
        del self.running[job.job_id]
        self._completion_epoch[job.job_id] = (
            self._completion_epoch.get(job.job_id, 0) + 1
        )
        self.pending.append(job)
        if self.view is not None:
            self.view.note_queue_change()
        self.metrics.preemptions += 1
        self.log(EventKind.PREEMPT, job.job_id, cause=cause, workers=workers)
        logger.debug("job %d preempted at %.0f (cause=%s)",
                     job.job_id, self.now, cause)
        self.note_trigger(TRIGGER_PREEMPT, job_id=job.job_id, cause=cause)
        self.trigger_schedule()

    def scale_in_worker_counts(self, job: Job, server_workers: Dict[str, int]):
        """Remove specific flexible workers of a running job."""
        job.advance(self.now)
        for server_id, workers in server_workers.items():
            self.rm.scale_in(job, server_id, workers, now=self.now)
        self.rescale(job, scaled_out=False)

    # ------------------------------------------------------------------
    # failure injection (driven by repro.faults.injector.FaultInjector)
    # ------------------------------------------------------------------
    @property
    def drained(self) -> bool:
        """True once no work remains and no more arrivals are due."""
        return (
            not self.pending
            and not self.running
            and self.now >= self._last_arrival
        )

    def record_failure_noop(
        self, reason: str, server_id: Optional[str] = None
    ) -> None:
        """A fault event landed on nothing; record it, never skip it
        silently (an outage of an empty rack is still an outage)."""
        self.metrics.registry.counter(
            "resilience.node_failure_noop", reason=reason
        ).inc()
        self.trace(
            "fault.node_failure_noop", reason=reason, server_id=server_id
        )
        logger.debug("node failure no-op at %.0f (%s, server=%s)",
                     self.now, reason, server_id)

    def apply_node_failure(
        self,
        server_id: str,
        repair_time: Optional[float] = None,
        cause: str = "node_failure",
    ) -> bool:
        """One server dies (§6 monitors server status; the paper's
        clusters see real node failures).

        Jobs that lost base workers restart from the queue (gang
        semantics); jobs that only lost flexible workers shrink and
        continue.  Returns True when the failure landed; a failure
        targeting an unknown or already-unhealthy server is a recorded
        no-op returning False.  ``repair_time`` schedules the matching
        recovery (None leaves the node down for the rest of the run).
        """
        if server_id not in self.cluster and server_id not in self.pair.inference:
            self.record_failure_noop("unknown_server", server_id)
            return False
        if not self.rm.is_healthy(server_id):
            self.record_failure_noop("already_unhealthy", server_id)
            return False
        report = self.rm.fail_node(server_id, now=self.now)
        if self.view is not None:
            # node health lives in the RM, not the GPU books — force
            # consumers (placement health filter) to revisit
            self.view.bump()
        self.metrics.node_failures += 1
        self._fail_times[server_id] = self.now
        self.trace(
            "cluster.node_failure", server_id=server_id,
            jobs_lost_base=sorted(report.jobs_lost_base),
            jobs_lost_flex=sorted(report.jobs_lost_flex),
        )
        logger.info("node %s failed at %.0f (%d base jobs lost)",
                    server_id, self.now, len(report.jobs_lost_base))
        # jobs that lost base workers restart from the queue
        for job_id in sorted(report.jobs_lost_base):
            if job_id in self.running:
                self.preempt(self.jobs[job_id], cause=cause)
        # jobs that only lost flexible workers shrink and continue
        for job_id in sorted(report.jobs_lost_flex):
            workers = report.jobs_lost_flex[job_id]
            job = self.jobs[job_id]
            if job_id not in self.running:
                continue
            job.advance(self.now)  # progress up to the failure instant
            remaining = workers
            for sid in list(job.flex_placement):
                if sid != server_id:
                    continue
                have = job.flex_placement[sid]
                take = min(have, remaining)
                job.flex_placement[sid] = have - take
                if job.flex_placement[sid] == 0:
                    job.remove_flex_on(sid)
                remaining -= take
            self.rescale(job, scaled_out=False)
        if repair_time is not None:
            self.engine.schedule_after(
                repair_time,
                lambda sid=server_id: self._node_recovery(sid),
                tag=("node_recovery", server_id),
            )
        self.note_trigger(
            TRIGGER_NODE_FAILURE, server_id=server_id, cause=cause
        )
        self.trigger_schedule()
        return True

    def _node_recovery(self, server_id: str) -> None:
        self.rm.recover_node(server_id, now=self.now)
        if self.view is not None:
            self.view.bump()
        failed_at = self._fail_times.pop(server_id, None)
        if failed_at is not None:
            self.metrics.registry.histogram(
                "resilience.node_downtime_s"
            ).observe(self.now - failed_at)
        self.trace("cluster.node_recovery", server_id=server_id)
        self.note_trigger(TRIGGER_NODE_RECOVERY, server_id=server_id)
        self.trigger_schedule()

    # ------------------------------------------------------------------
    # straggler degradation (driven by the fault injector)
    # ------------------------------------------------------------------
    def set_server_degradation(
        self, server_id: str, factor: Optional[float] = None
    ) -> None:
        """Mark a server as straggling at ``factor`` of nominal
        throughput (None restores full speed) and re-time every running
        job it hosts."""
        server = self.rm._server(server_id)
        if factor is None:
            self.degraded_servers.pop(server_id, None)
            if server is not None:
                server.perf_factor = 1.0
        else:
            self.degraded_servers[server_id] = factor
            if server is not None:
                server.perf_factor = factor
        if self.view is not None:
            # perf_factor feeds the placement sort order; mirroring
            # backends refresh their column from the updated server
            if server is not None:
                self.view.note_server_attrs(server)
            else:
                self.view.bump()
        for job in list(self.running.values()):
            if server_id in job.servers:
                job.advance(self.now)
                job.straggler_penalty = self._straggler_penalty_for(job)
                self._reschedule_completion(job)

    def _straggler_penalty_for(self, job: Job) -> float:
        """Synchronous training paces at its slowest worker: the penalty
        is the worst factor among the job's host servers."""
        if not self.degraded_servers:
            return 1.0
        return min(
            (self.degraded_servers.get(sid, 1.0) for sid in job.servers),
            default=1.0,
        )

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def _finalize_hourly_ratio(self) -> None:
        ratios = []
        for hour in sorted(self._hour_submissions):
            submitted = self._hour_submissions[hour]
            queued = self._hour_queued.get(hour, 0)
            ratios.append(queued / submitted if submitted else 0.0)
        self.metrics.hourly_queuing_ratio = ratios
