"""High-fidelity cluster simulation (§7.1's simulator, rebuilt).

The simulation replays a job trace against a training cluster (optionally
paired with an inference cluster for capacity loaning), delegating all
policy decisions to a pluggable :class:`~repro.schedulers.base.SchedulerPolicy`
and, when loaning is enabled, to a
:class:`~repro.core.orchestrator.ResourceOrchestrator`.

Since the kernel/driver split, :class:`Simulation` is the *simulated-time
driver* for the clock-agnostic
:class:`~repro.core.kernel.SchedulerKernel`: the epoch pipeline, job
lifecycle, failure handling and all scheduling state live in the kernel
base class; this module adds only what is specific to replaying a finite
trace on the discrete-event :class:`~repro.simulator.engine.Engine` —
the run loop, trace-driven arrivals, the heartbeat, the usage sampler,
the orchestrator cadence, and the drain cutoff.  The wall-clock serving
driver (:mod:`repro.serve`) hosts the same kernel against real time.

Simulated mechanics (matching §7.1–7.2):

* job events — arrival, start, completion, scaling, preemption — are all
  discrete events; job running time derives from remaining work divided by
  the allocation-dependent throughput, so elastic running time is
  inversely proportional to resources in the linear regime;
* a preempted job pays a fixed overhead (the 63 s measured on the
  testbed, §7.5) and, without checkpointing, loses all progress;
* the orchestrator ticks every five minutes; the job scheduler runs at a
  much smaller interval and additionally after every arrival, completion
  and capacity change (§3);
* GPU usage of the (dynamically sized) training whitelist, of both
  clusters combined, and of on-loan servers is sampled every five minutes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.cluster.cluster import ClusterPair
from repro.cluster.job import Job, JobSpec
from repro.core.kernel import (  # noqa: F401  (re-exports: long-standing API)
    DAY,
    SchedulerKernel,
    SimulationConfig,
)
from repro.obs import Observability, get_logger
from repro.obs.provenance import (  # noqa: F401  (Provenance re-exported)
    TRIGGER_HEARTBEAT,
    Provenance,
)
from repro.simulator.engine import Engine
from repro.simulator.metrics import SimulationMetrics

logger = get_logger("simulator")


class Simulation(SchedulerKernel):
    """One end-to-end replay of a trace under a scheduling policy.

    A :class:`~repro.core.kernel.SchedulerKernel` that is its own
    :class:`~repro.core.kernel.Driver`: time and timers come from the
    discrete-event engine, and the kernel's epoch pipeline runs
    unchanged on top.
    """

    def __init__(
        self,
        specs: Sequence[JobSpec],
        pair: ClusterPair,
        policy: "SchedulerPolicy",
        inference_trace=None,
        orchestrator: Optional["ResourceOrchestrator"] = None,
        config: SimulationConfig = SimulationConfig(),
        obs: Optional[Observability] = None,
    ):
        self.engine = Engine()
        super().__init__(
            specs,
            pair,
            policy,
            inference_trace=inference_trace,
            orchestrator=orchestrator,
            config=config,
            obs=obs,
        )
        # Promote profiler phases to spans on the simulated clock; a
        # no-op unless both the profiler and the tracer are enabled.
        self.obs.phases.bind(self.tracer, lambda: self.engine.now)
        #: heartbeat firings (drops when wake-up skipping is active)
        self._heartbeats = 0
        #: the run deadline, kept so a restored run can resume to it
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # the Driver protocol, implemented over the discrete-event engine
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.engine.now

    def schedule(
        self, when: float, callback: Callable[[], None], tag=None
    ) -> None:
        self.engine.schedule(when, callback, tag=tag)

    def schedule_after(
        self, delay: float, callback: Callable[[], None], tag=None
    ) -> None:
        self.engine.schedule_after(delay, callback, tag=tag)

    def epoch_finished(self) -> None:
        if self.drained:
            # Nothing left to do: cut the run short (samplers would
            # otherwise keep the heap alive forever).
            self.engine.stop()

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationMetrics:
        """Replay the trace; ``until`` optionally cuts the run short at a
        simulated timestamp (the ``repro whatif`` probe point)."""
        for job in self.jobs.values():
            self.engine.schedule(
                job.spec.submit_time, self._arrival(job),
                tag=("arrival", job.job_id),
            )
        self.engine.schedule(0.0, self._sampler, tag=("sampler",))
        self.engine.schedule(0.0, self._heartbeat, tag=("heartbeat",))
        if self.orchestrator is not None:
            self.engine.schedule(0.0, self._orchestrator_tick, tag=("orch",))
        plan = self._resolve_fault_plan()
        if self.tracer.enabled:
            self.tracer.emit(
                "run.config", ts=0.0,
                node_mtbf=self.config.node_mtbf,
                node_repair_time=self.config.node_repair_time,
                failure_seed=self.config.failure_seed,
                fault_plan=plan.to_dict() if plan is not None else None,
                scheduler_interval=self.config.scheduler_interval,
                orchestrator_interval=self.config.orchestrator_interval,
                elastic=self.config.elastic,
                scaling_model=self.config.scaling_model,
            )
        if plan is not None:
            # lazy import: fault-free runs never load repro.faults
            from repro.faults.injector import FaultInjector

            self.fault_injector = FaultInjector(plan, self)
            self.fault_injector.install()
        deadline = self._last_arrival + self.config.drain_limit
        if until is not None:
            deadline = min(deadline, until)
        self._deadline = deadline
        self._run_loop(deadline)
        self._finalize_hourly_ratio()
        return self.metrics

    def _run_loop(self, deadline: float) -> None:
        """Drive the engine to ``deadline``.

        Without an attached recovery manager this is exactly the
        pre-recovery ``engine.run`` call; with one, the manager steps
        the engine so it can checkpoint (and honor crash barriers)
        *between* events — event order is identical either way.
        """
        if self.recovery is None:
            self.engine.run(until=deadline)
        else:
            self.recovery.run_loop(self, deadline)

    def resume(self) -> SimulationMetrics:
        """Continue a restored run to its original deadline.

        The counterpart of :meth:`run` for simulations loaded from a
        snapshot: all setup (initial events, fault installation) already
        happened in the original process and lives in the restored
        state, so only the loop and the final bookkeeping remain.
        """
        if self._deadline is None:
            raise RuntimeError("resume() requires a run() to have started")
        self._run_loop(self._deadline)
        self._finalize_hourly_ratio()
        return self.metrics

    def _resolve_fault_plan(self):
        """The effective fault plan: explicit plan, legacy knobs, or None.

        Returns None (not an empty plan) when nothing is injected, so
        the zero-cost path skips the injector entirely.
        """
        plan = self.config.fault_plan
        if plan is not None:
            return None if plan.is_empty() else plan
        if self.config.node_mtbf:
            from repro.faults.plan import FaultPlan

            return FaultPlan.from_legacy(
                self.config.node_mtbf,
                repair_time=self.config.node_repair_time,
                seed=self.config.failure_seed,
            )
        return None

    def _heartbeat(self) -> None:
        """Periodic scheduling epochs (§3: the job scheduler runs
        periodically, on top of the event-driven triggers)."""
        self._heartbeats += 1
        if self.pending:
            self.note_trigger(TRIGGER_HEARTBEAT, pending=len(self.pending))
            self.trigger_schedule()
        if self.pending or self.running or self.engine.now < self._last_arrival:
            delay = max(60.0, self.config.scheduler_interval)
            when = self.engine.now + delay
            if self.view is not None:
                # Skip redundant wake-ups: heartbeat firings strictly
                # before the next heap event see unchanged state and do
                # nothing (any pending job implies a coalesced tick in
                # the heap no later than now + delay), so jump straight
                # to the first grid point not before that event.  The
                # grid is walked by repeated addition because that is the
                # exact float sequence chained schedule_after calls
                # produce — a closed form would drift by ULPs and shift
                # every later timestamp.
                nxt = self.engine.peek_next_time()
                if nxt is not None:
                    while when < nxt:
                        when = when + delay
            self.engine.schedule(when, self._heartbeat, tag=("heartbeat",))

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _arrival(self, job: Job):
        def handler() -> None:
            self.admit_job(job)

        return handler

    def _sampler(self) -> None:
        now = self.engine.now
        if now > self._last_arrival:
            # Usage statistics cover the trace window only (the paper's
            # clusters run continuously; our finite replay has a drain
            # tail that would otherwise dilute every mean).
            return
        training = self.cluster
        # Training usage per Table 5: GPU-time delivered to training,
        # normalized and measured against the *dedicated* cluster size —
        # capacity loaning therefore pushes it up (Baseline 0.72 ->
        # Basic 0.86 in the paper), rather than diluting the denominator.
        dedicated_total = used = 0.0
        for server in training.servers:
            if server.on_loan:
                used += server.used_gpus * server.gpu_type.relative_compute
            else:
                used += server.used_gpus
                dedicated_total += server.num_gpus
        if dedicated_total:
            ratio = min(1.0, used / dedicated_total)
            self.metrics.training_usage.append(now, ratio)
            self.obs.registry.gauge("usage.training").set(ratio)

        total_gpus = self.pair.training.total_gpus + self.pair.inference.total_gpus
        inference_busy = 0.0
        if self.inference_trace is not None and self.pair.inference.total_gpus:
            gpus_per_server = (
                self.pair.inference.servers[0].num_gpus
                if self.pair.inference.servers
                else 8
            )
            busy_servers = min(
                self.inference_trace.busy_servers_at(now),
                len(self.pair.inference.servers),
            )
            inference_busy = (
                busy_servers
                * gpus_per_server
                * self.inference_trace.gpu_busy_fraction
            )
        overall = (training.used_gpus + inference_busy) / total_gpus if total_gpus else 0.0
        self.metrics.overall_usage.append(now, overall)
        self.obs.registry.gauge("usage.overall").set(overall)

        onloan = training.on_loan_servers
        onloan_usage = None
        if onloan:
            used = sum(s.used_gpus for s in onloan)
            total = sum(s.num_gpus for s in onloan)
            onloan_usage = used / total
            self.metrics.onloan_usage.append(now, onloan_usage)
            busy = sum(1 for s in onloan if not s.idle)
            self.metrics.onloan_busy.append(now, busy / len(onloan))

        if self.tracer.enabled:
            # Periodic utilization snapshot: the `repro report`
            # utilization timeline reads these back from the trace.
            self.trace(
                "cluster.usage",
                training=round(
                    self.metrics.training_usage.values[-1], 6
                ) if self.metrics.training_usage.values else None,
                overall=round(overall, 6),
                loaned=self.pair.loaned_count,
                onloan_usage=(
                    round(onloan_usage, 6)
                    if onloan_usage is not None else None
                ),
                running=len(self.running),
                pending=len(self.pending),
            )

        self.engine.schedule_after(
            self.config.sample_interval, self._sampler, tag=("sampler",)
        )

    def _orchestrator_tick(self) -> None:
        self.run_orchestrator_epoch()
        if self.pending or self.running or self.engine.now < self._last_arrival:
            self.engine.schedule_after(
                self.config.orchestrator_interval, self._orchestrator_tick,
                tag=("orch",),
            )
