"""Typed activity log for simulations.

The paper calibrates its simulator against the testbed by comparing "the
timestamp and decision of each activity (e.g. job launching, start and end
of training, scheduling decision)" (§7.2).  We keep the same audit trail:
every simulation appends :class:`Activity` records that tests and the
calibration benchmark can replay and diff.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional


class EventKind(enum.Enum):
    """Every activity kind a simulation can log."""

    SUBMIT = "submit"
    START = "start"
    FINISH = "finish"
    PREEMPT = "preempt"
    SCALE_OUT = "scale_out"
    SCALE_IN = "scale_in"
    LOAN = "loan"
    RECLAIM = "reclaim"
    SCHEDULE_EPOCH = "schedule_epoch"
    MIGRATE = "migrate"


@dataclass(frozen=True)
class Activity:
    """One timestamped simulator activity.

    Attributes:
        time: Simulation timestamp in seconds.
        kind: What happened.
        job_id: Affected job, when applicable.
        detail: Free-form payload (server ids, worker deltas, counts).
    """

    time: float
    kind: EventKind
    job_id: Optional[int] = None
    detail: Any = None
