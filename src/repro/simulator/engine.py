"""Discrete-event simulation engine.

A minimal, allocation-free event loop: callbacks are scheduled at absolute
simulated times and executed in (time, insertion) order.  Everything else —
jobs, clusters, schedulers — lives above this layer.

Every event may carry a *tag*: a small, JSON/pickle-friendly tuple that
names the callback it wraps (``("completion", job_id, epoch)``,
``("heartbeat",)``, ...).  Tags are what make the engine *durable*:
closures cannot be serialized, but a tagged heap can be snapshotted as
``(when, seq, tag)`` triples and rebuilt by resolving each tag back to a
fresh callback against the restored simulation (see
:mod:`repro.recovery.state`).  Untagged events still work for ad-hoc
harnesses — they simply make the engine unsnapshotable.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: A serializable event descriptor; ``None`` marks an ad-hoc closure.
EventTag = Optional[tuple]


class UnsnapshotableEvent(RuntimeError):
    """The heap holds an untagged event, so it cannot be serialized."""


class Engine:
    """A priority-queue driven simulation clock."""

    def __init__(self, start_time: float = 0.0):
        self.now = start_time
        self._heap: List[Tuple[float, int, Callable[[], None], EventTag]] = []
        self._next_seq = 0
        self._stopped = False

    def schedule(
        self,
        when: float,
        callback: Callable[[], None],
        tag: EventTag = None,
    ) -> None:
        """Run ``callback`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < now {self.now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (when, seq, callback, tag))

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        tag: EventTag = None,
    ) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self.now + delay, callback, tag=tag)

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def peek_next_time(self) -> Optional[float]:
        """Absolute time of the earliest scheduled event, or None.

        Lets periodic wake-ups (the simulator heartbeat) skip ahead past
        known-idle stretches instead of firing on every grid point.
        """
        return self._heap[0][0] if self._heap else None

    def stop(self) -> None:
        """Abort the run loop after the current callback returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` are still executed.
        """
        self._stopped = False
        heap = self._heap
        while heap and not self._stopped:
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self.now = when
            # Batch: drain every event sharing this timestamp before
            # re-checking the deadline.  Same-timestamp events a callback
            # schedules get a larger seq, so they sort after the existing
            # ones and still run inside this batch — the (time, seq)
            # execution order is identical to the one-pop-per-iteration
            # loop, but a heartbeat storm costs one deadline check and
            # one clock write instead of thousands.
            while heap and heap[0][0] == when and not self._stopped:
                callback = heapq.heappop(heap)[2]
                callback()
        if until is not None and self.now < until:
            self.now = until
        return self.now

    # ------------------------------------------------------------------
    # stepped execution (the checkpointed run loop)
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Reset the stop flag, as :meth:`run` does on entry."""
        self._stopped = False

    def step(self, until: Optional[float] = None) -> bool:
        """Process exactly one event; False when there is nothing to do.

        ``begin()``/``step()``/``finish()`` decompose :meth:`run` so a
        caller can interleave work *between* events — the recovery
        layer's checkpoint barrier — without perturbing event order:
        the sequence of (time, callback) executions is identical to one
        uninterrupted ``run(until)`` call.
        """
        if not self._heap or self._stopped:
            return False
        when, _, callback, _tag = self._heap[0]
        if until is not None and when > until:
            return False
        heapq.heappop(self._heap)
        self.now = when
        callback()
        return True

    def finish(self, until: Optional[float] = None) -> float:
        """Apply :meth:`run`'s final-clock semantics after a step loop."""
        if until is not None and self.now < until:
            self.now = until
        return self.now

    # ------------------------------------------------------------------
    # serialization (tags only; callbacks are resolved on restore)
    # ------------------------------------------------------------------
    def snapshot_events(self) -> List[Tuple[float, int, tuple]]:
        """The heap as ``(when, seq, tag)`` triples, heap-order sorted.

        Raises :class:`UnsnapshotableEvent` if any event lacks a tag.
        """
        events = []
        for when, seq, _cb, tag in self._heap:
            if tag is None:
                raise UnsnapshotableEvent(
                    f"event at t={when} (seq {seq}) has no tag; only tagged "
                    f"events can be serialized"
                )
            events.append((when, seq, tag))
        events.sort()
        return events

    def __getstate__(self) -> dict:
        # an engine may be re-pickled before rebind() (snapshot payloads
        # round-trip through pickle to detach from the live run); its
        # events then live in _unresolved, not the heap
        unresolved = getattr(self, "_unresolved", None)
        return {
            "now": self.now,
            "next_seq": self._next_seq,
            "stopped": self._stopped,
            "events": (
                list(unresolved)
                if unresolved is not None
                else self.snapshot_events()
            ),
        }

    def __setstate__(self, state: dict) -> None:
        self.now = state["now"]
        self._next_seq = state["next_seq"]
        self._stopped = state["stopped"]
        self._heap = []
        #: restored tag triples awaiting :meth:`rebind`
        self._unresolved = state["events"]

    def rebind(self, resolver: Callable[[tuple], Callable[[], None]]) -> int:
        """Rebuild the heap from restored tags; returns the event count.

        ``resolver`` maps each tag back to a callback against the
        restored simulation.  Original (when, seq) pairs are preserved,
        so execution order is bit-identical to the snapshotted run.
        """
        unresolved = getattr(self, "_unresolved", None)
        if unresolved is None:
            return 0
        for when, seq, tag in unresolved:
            heapq.heappush(self._heap, (when, seq, resolver(tag), tag))
        del self._unresolved
        return len(self._heap)
