"""Discrete-event simulation engine.

A minimal, allocation-free event loop: callbacks are scheduled at absolute
simulated times and executed in (time, insertion) order.  Everything else —
jobs, clusters, schedulers — lives above this layer.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Engine:
    """A priority-queue driven simulation clock."""

    def __init__(self, start_time: float = 0.0):
        self.now = start_time
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._stopped = False

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < now {self.now}"
            )
        heapq.heappush(self._heap, (when, next(self._counter), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self.now + delay, callback)

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def peek_next_time(self) -> Optional[float]:
        """Absolute time of the earliest scheduled event, or None.

        Lets periodic wake-ups (the simulator heartbeat) skip ahead past
        known-idle stretches instead of firing on every grid point.
        """
        return self._heap[0][0] if self._heap else None

    def stop(self) -> None:
        """Abort the run loop after the current callback returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` are still executed.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            when, _, callback = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            callback()
        if until is not None and self.now < until:
            self.now = until
        return self.now
