"""Simulation metrics: the quantities every table and figure reports.

Queuing time is the delay between submission and the first dispatch (§2.1);
JCT is submission to completion; GPU usage is tracked both for the training
whitelist (whose size changes under loaning) and for the combined clusters;
preemption ratio is total preemptions over total submissions (Table 5
note 2); collateral damage is the fraction of GPUs vacated in excess of the
reclaiming demand (§7.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.cluster.job import Job


def percentile(values: Sequence[float], pct: float) -> float:
    """Percentile with linear interpolation; NaN on empty input."""
    if not values:
        return math.nan
    return float(np.percentile(np.asarray(values, dtype=float), pct))


@dataclass
class DistributionSummary:
    """Mean/median/percentiles of a sample, as the tables report them."""

    mean: float
    median: float
    p75: float
    p95: float
    p99: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DistributionSummary":
        if not values:
            nan = math.nan
            return cls(nan, nan, nan, nan, nan, 0)
        arr = np.asarray(values, dtype=float)
        return cls(
            mean=float(arr.mean()),
            median=float(np.percentile(arr, 50)),
            p75=float(np.percentile(arr, 75)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            count=len(values),
        )


@dataclass
class TimeSeries:
    """A sampled time series (5-minute cadence by default)."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else math.nan

    def hourly_means(self) -> List[float]:
        """Average per simulated hour (for Figs. 2 and 7)."""
        if not self.times:
            return []
        buckets: Dict[int, List[float]] = {}
        for t, v in zip(self.times, self.values):
            buckets.setdefault(int(t // 3600), []).append(v)
        return [float(np.mean(buckets[h])) for h in sorted(buckets)]


@dataclass
class SimulationMetrics:
    """Everything a finished simulation exposes for reporting."""

    #: finished jobs (the population all distributions are computed over)
    jobs: List[Job] = field(default_factory=list)
    #: jobs submitted during the run (denominator of preemption ratio)
    submissions: int = 0
    #: total preemption events
    preemptions: int = 0
    #: total elastic scale operations issued
    scale_ops: int = 0
    #: injected node failures (0 unless failure injection is enabled)
    node_failures: int = 0
    #: loaning operations performed (server count each)
    loan_ops: List[int] = field(default_factory=list)
    #: reclaim operations performed (server count each)
    reclaim_ops: List[int] = field(default_factory=list)
    #: collateral damage per reclaim op (fraction of reclaim demand)
    collateral: List[float] = field(default_factory=list)
    #: fraction of each reclaim demand satisfied by the flex group alone
    flex_satisfied: List[float] = field(default_factory=list)
    #: training-whitelist GPU usage samples
    training_usage: TimeSeries = field(default_factory=TimeSeries)
    #: combined training+inference GPU usage samples
    overall_usage: TimeSeries = field(default_factory=TimeSeries)
    #: GPU usage of on-loan servers (sampled only while any are loaned)
    onloan_usage: TimeSeries = field(default_factory=TimeSeries)
    #: fraction of on-loan servers hosting at least one worker (the
    #: Fig. 1-style occupancy metric, used for Fig. 9)
    onloan_busy: TimeSeries = field(default_factory=TimeSeries)
    #: fraction of newly submitted jobs that queued, per hour (Fig. 2)
    hourly_queuing_ratio: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # distributions
    # ------------------------------------------------------------------
    def _finished(self) -> List[Job]:
        return [j for j in self.jobs if j.jct is not None]

    def queuing_times(self, queued_only: bool = False) -> List[float]:
        values = [
            j.queuing_time for j in self.jobs if j.queuing_time is not None
        ]
        if queued_only:
            values = [v for v in values if v > 0]
        return values

    def jcts(self) -> List[float]:
        return [j.jct for j in self._finished()]

    def queuing_summary(self) -> DistributionSummary:
        return DistributionSummary.from_values(self.queuing_times())

    def jct_summary(self) -> DistributionSummary:
        return DistributionSummary.from_values(self.jcts())

    def onloan_job_ids(self, min_fraction: float = 0.5) -> List[int]:
        """Jobs that did at least ``min_fraction`` of their work on loan."""
        out = []
        for job in self._finished():
            if job.spec.total_work <= 0:
                continue
            if job.onloan_work / job.spec.total_work >= min_fraction:
                out.append(job.job_id)
        return out

    def summary_for(self, job_ids: Iterable[int]) -> Dict[str, DistributionSummary]:
        wanted = set(job_ids)
        members = [j for j in self._finished() if j.job_id in wanted]
        return {
            "queuing": DistributionSummary.from_values(
                [j.queuing_time for j in members if j.queuing_time is not None]
            ),
            "jct": DistributionSummary.from_values([j.jct for j in members]),
        }

    # ------------------------------------------------------------------
    # scalars
    # ------------------------------------------------------------------
    @property
    def preemption_ratio(self) -> float:
        return self.preemptions / self.submissions if self.submissions else 0.0

    def mean_collateral(self) -> float:
        return float(np.mean(self.collateral)) if self.collateral else 0.0

    def mean_flex_satisfied(self) -> float:
        return float(np.mean(self.flex_satisfied)) if self.flex_satisfied else 0.0

    def completion_ratio(self) -> float:
        return len(self._finished()) / len(self.jobs) if self.jobs else 0.0


def reduction(baseline: float, ours: float) -> float:
    """The paper's improvement metric: baseline duration / Lyra duration."""
    if ours <= 0:
        return math.inf
    return baseline / ours
