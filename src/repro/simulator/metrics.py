"""Simulation metrics: the quantities every table and figure reports.

Queuing time is the delay between submission and the first dispatch (§2.1);
JCT is submission to completion; GPU usage is tracked both for the training
whitelist (whose size changes under loaning) and for the combined clusters;
preemption ratio is total preemptions over total submissions (Table 5
note 2); collateral damage is the fraction of GPUs vacated in excess of the
reclaiming demand (§7.3).

:class:`SimulationMetrics` is a reporting facade over a
:class:`~repro.obs.metrics.MetricsRegistry`: scalar counts live in
registry counters and the per-op samples in registry histograms, so any
component holding the registry can record without new fields being
plumbed through.  The original dataclass construction and attribute
surface (``metrics.preemptions += 1``, ``metrics.loan_ops.append(...)``)
is preserved as a compatibility shim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.job import Job
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import percentile as _shared_percentile


def percentile(values: Sequence[float], pct: float) -> float:
    """Percentile with linear interpolation; NaN on empty input.

    Delegates to the shared :func:`repro.obs.metrics.percentile` so the
    registry histograms, the distribution summaries and the Table 8
    bench all agree on one definition.
    """
    return _shared_percentile(list(values), pct)


@dataclass
class DistributionSummary:
    """Mean/median/percentiles of a sample, as the tables report them."""

    mean: float
    median: float
    p75: float
    p95: float
    p99: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DistributionSummary":
        if not values:
            nan = math.nan
            return cls(nan, nan, nan, nan, nan, 0)
        sample = [float(v) for v in values]
        return cls(
            mean=float(np.mean(sample)),
            median=percentile(sample, 50),
            p75=percentile(sample, 75),
            p95=percentile(sample, 95),
            p99=percentile(sample, 99),
            count=len(sample),
        )


@dataclass
class TimeSeries:
    """A sampled time series (5-minute cadence by default)."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    @classmethod
    def from_samples(
        cls, values: Sequence[float], interval: float, start: float = 0.0
    ) -> "TimeSeries":
        """Wrap evenly spaced samples (e.g. a raw utilization array)."""
        times = [start + i * interval for i in range(len(values))]
        return cls(times=times, values=[float(v) for v in values])

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else math.nan

    # ------------------------------------------------------------------
    # bucketing (Figs. 2, 7 and 9 aggregate by hour or day)
    # ------------------------------------------------------------------
    def buckets(self, width: float = 3600.0) -> Dict[int, List[float]]:
        """Samples grouped by ``int(t // width)``, insertion-ordered
        within each bucket."""
        out: Dict[int, List[float]] = {}
        for t, v in zip(self.times, self.values):
            out.setdefault(int(t // width), []).append(v)
        return out

    def bucket_bounds(
        self, width: float = 3600.0
    ) -> List[Tuple[float, float]]:
        """``(start, end)`` time of every non-empty bucket, ascending.

        Aligned with the lists :meth:`bucket_means` / :meth:`bucket_max`
        return, so callers no longer have to reconstruct which hour a
        value belongs to.
        """
        return [
            (h * width, (h + 1) * width)
            for h in sorted(self.buckets(width))
        ]

    def bucket_means(self, width: float = 3600.0) -> List[float]:
        buckets = self.buckets(width)
        return [float(np.mean(buckets[h])) for h in sorted(buckets)]

    def bucket_max(self, width: float = 3600.0) -> List[float]:
        buckets = self.buckets(width)
        return [float(np.max(buckets[h])) for h in sorted(buckets)]

    def hourly_means(self) -> List[float]:
        """Average per simulated hour (for Figs. 2 and 7)."""
        return self.bucket_means(3600.0)

    def hourly_max(self) -> List[float]:
        """Maximum per simulated hour (peak-tracking curves)."""
        return self.bucket_max(3600.0)

    def hourly_bounds(self) -> List[Tuple[float, float]]:
        """Bucket boundaries matching :meth:`hourly_means`."""
        return self.bucket_bounds(3600.0)


#: (attribute, counter metric name) pairs backing the scalar counts.
_COUNTERS = (
    ("submissions", "sim.submissions"),
    ("preemptions", "sim.preemptions"),
    ("scale_ops", "sim.scale_ops"),
    ("node_failures", "sim.node_failures"),
)

#: (attribute, histogram metric name) pairs backing the per-op samples.
_HISTOGRAMS = (
    ("loan_ops", "orchestrator.loan_servers"),
    ("reclaim_ops", "orchestrator.reclaim_servers"),
    ("collateral", "orchestrator.collateral"),
    ("flex_satisfied", "orchestrator.flex_satisfied"),
)


def _counter_property(metric_name: str):
    def getter(self: "SimulationMetrics") -> int:
        return self.registry.counter(metric_name).value

    def setter(self: "SimulationMetrics", value: int) -> None:
        self.registry.counter(metric_name).set(value)

    return property(getter, setter)


def _histogram_property(metric_name: str):
    def getter(self: "SimulationMetrics") -> List[float]:
        # The raw observation list: append() keeps the histogram and the
        # legacy list attribute in sync because it *is* the histogram.
        return self.registry.histogram(metric_name).observations

    def setter(self: "SimulationMetrics", values: Sequence[float]) -> None:
        obs = self.registry.histogram(metric_name).observations
        obs[:] = list(values)

    return property(getter, setter)


class SimulationMetrics:
    """Everything a finished simulation exposes for reporting.

    Attribute surface (unchanged from the original dataclass):

    * ``jobs`` — finished jobs (the population all distributions cover)
    * ``submissions`` / ``preemptions`` / ``scale_ops`` /
      ``node_failures`` — scalar counts (registry counters)
    * ``loan_ops`` / ``reclaim_ops`` — per-op server counts
    * ``collateral`` / ``flex_satisfied`` — per-reclaim fractions (§7.3)
    * ``training_usage`` / ``overall_usage`` / ``onloan_usage`` /
      ``onloan_busy`` — sampled usage time series
    * ``hourly_queuing_ratio`` — Fig. 2's per-hour queued fraction
    """

    #: scalar counts, stored as registry counters
    submissions = _counter_property("sim.submissions")
    preemptions = _counter_property("sim.preemptions")
    scale_ops = _counter_property("sim.scale_ops")
    node_failures = _counter_property("sim.node_failures")
    #: per-op samples, stored as registry histograms
    loan_ops = _histogram_property("orchestrator.loan_servers")
    reclaim_ops = _histogram_property("orchestrator.reclaim_servers")
    collateral = _histogram_property("orchestrator.collateral")
    flex_satisfied = _histogram_property("orchestrator.flex_satisfied")

    def __init__(
        self,
        jobs: Optional[List[Job]] = None,
        submissions: int = 0,
        preemptions: int = 0,
        scale_ops: int = 0,
        node_failures: int = 0,
        loan_ops: Optional[List[int]] = None,
        reclaim_ops: Optional[List[int]] = None,
        collateral: Optional[List[float]] = None,
        flex_satisfied: Optional[List[float]] = None,
        training_usage: Optional[TimeSeries] = None,
        overall_usage: Optional[TimeSeries] = None,
        onloan_usage: Optional[TimeSeries] = None,
        onloan_busy: Optional[TimeSeries] = None,
        hourly_queuing_ratio: Optional[List[float]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        # Compatibility shim: direct construction (with or without the
        # old dataclass keywords) still works and self-hosts a registry.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.jobs: List[Job] = jobs if jobs is not None else []
        self.submissions = submissions
        self.preemptions = preemptions
        self.scale_ops = scale_ops
        self.node_failures = node_failures
        if loan_ops is not None:
            self.loan_ops = loan_ops
        if reclaim_ops is not None:
            self.reclaim_ops = reclaim_ops
        if collateral is not None:
            self.collateral = collateral
        if flex_satisfied is not None:
            self.flex_satisfied = flex_satisfied
        self.training_usage = training_usage or TimeSeries()
        self.overall_usage = overall_usage or TimeSeries()
        self.onloan_usage = onloan_usage or TimeSeries()
        self.onloan_busy = onloan_busy or TimeSeries()
        self.hourly_queuing_ratio: List[float] = hourly_queuing_ratio or []

    def __repr__(self) -> str:
        return (
            f"SimulationMetrics(jobs={len(self.jobs)}, "
            f"submissions={self.submissions}, "
            f"preemptions={self.preemptions}, "
            f"scale_ops={self.scale_ops}, "
            f"loan_ops={len(self.loan_ops)}, "
            f"reclaim_ops={len(self.reclaim_ops)})"
        )

    # ------------------------------------------------------------------
    # distributions
    # ------------------------------------------------------------------
    def _finished(self) -> List[Job]:
        return [j for j in self.jobs if j.jct is not None]

    def queuing_times(self, queued_only: bool = False) -> List[float]:
        values = [
            j.queuing_time for j in self.jobs if j.queuing_time is not None
        ]
        if queued_only:
            values = [v for v in values if v > 0]
        return values

    def jcts(self) -> List[float]:
        return [j.jct for j in self._finished()]

    def queuing_summary(self) -> DistributionSummary:
        return DistributionSummary.from_values(self.queuing_times())

    def jct_summary(self) -> DistributionSummary:
        return DistributionSummary.from_values(self.jcts())

    def onloan_job_ids(self, min_fraction: float = 0.5) -> List[int]:
        """Jobs that did at least ``min_fraction`` of their work on loan."""
        out = []
        for job in self._finished():
            if job.spec.total_work <= 0:
                continue
            if job.onloan_work / job.spec.total_work >= min_fraction:
                out.append(job.job_id)
        return out

    def summary_for(self, job_ids: Iterable[int]) -> Dict[str, DistributionSummary]:
        wanted = set(job_ids)
        members = [j for j in self._finished() if j.job_id in wanted]
        return {
            "queuing": DistributionSummary.from_values(
                [j.queuing_time for j in members if j.queuing_time is not None]
            ),
            "jct": DistributionSummary.from_values([j.jct for j in members]),
        }

    # ------------------------------------------------------------------
    # scalars
    # ------------------------------------------------------------------
    @property
    def preemption_ratio(self) -> float:
        return self.preemptions / self.submissions if self.submissions else 0.0

    def mean_collateral(self) -> float:
        return float(np.mean(self.collateral)) if self.collateral else 0.0

    def mean_flex_satisfied(self) -> float:
        return float(np.mean(self.flex_satisfied)) if self.flex_satisfied else 0.0

    def completion_ratio(self) -> float:
        return len(self._finished()) / len(self.jobs) if self.jobs else 0.0


def reduction(baseline: float, ours: float) -> float:
    """The paper's improvement metric: baseline duration / Lyra duration."""
    if ours <= 0:
        return math.inf
    return baseline / ours
