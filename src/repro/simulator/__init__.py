"""Discrete-event cluster simulator."""

from repro.simulator.calibration import (
    Divergence,
    first_divergence,
    match_fraction,
)
from repro.simulator.engine import Engine
from repro.simulator.events import Activity, EventKind
from repro.simulator.metrics import (
    DistributionSummary,
    SimulationMetrics,
    TimeSeries,
    percentile,
    reduction,
)
from repro.simulator.simulation import Simulation, SimulationConfig

__all__ = [
    "Activity",
    "Divergence",
    "first_divergence",
    "match_fraction",
    "DistributionSummary",
    "Engine",
    "EventKind",
    "Simulation",
    "SimulationConfig",
    "SimulationMetrics",
    "TimeSeries",
    "percentile",
    "reduction",
]
