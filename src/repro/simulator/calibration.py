"""Simulator calibration tooling (§7.2's methodology, rebuilt).

The paper calibrates its simulator against the testbed by replaying tiny
traces on both, recording "the timestamp and decision of each activity",
and hunting for the first wrong decision or the first activity whose
timestamp drifts by more than two seconds.  We reproduce that workflow
over activity logs so that (a) determinism regressions are caught by the
test suite and (b) alternative simulator configurations can be diffed the
same way the authors diffed simulator-vs-testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.simulator.events import Activity, EventKind

#: The paper's calibration tolerance: activities are "matching" when the
#: same decision happens within two seconds.
DEFAULT_TOLERANCE = 2.0


@dataclass(frozen=True)
class Divergence:
    """The first point where two activity logs disagree.

    Attributes:
        index: Position in the logs (after filtering).
        reason: ``"decision"`` (different kind/job) or ``"timestamp"``
            (same decision, drift beyond tolerance) or ``"length"``.
        left: Activity from the first log, if any.
        right: Activity from the second log, if any.
    """

    index: int
    reason: str
    left: Optional[Activity] = None
    right: Optional[Activity] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"divergence@{self.index} ({self.reason}): "
            f"{self.left} vs {self.right}"
        )


def _comparable(log: Sequence[Activity]) -> List[Activity]:
    """Keep only decision-bearing activities (drop bookkeeping epochs)."""
    return [a for a in log if a.kind is not EventKind.SCHEDULE_EPOCH]


def first_divergence(
    left: Sequence[Activity],
    right: Sequence[Activity],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Optional[Divergence]:
    """Find the first mismatching activity between two logs.

    Mirrors §7.2: "compare the timestamp and decision of each activity,
    and find the first wrong decision or the first activity with a
    larger-than-two-seconds time difference."  Returns None when the
    logs match end to end.
    """
    a_log = _comparable(left)
    b_log = _comparable(right)
    for index, (a, b) in enumerate(zip(a_log, b_log)):
        if a.kind is not b.kind or a.job_id != b.job_id:
            return Divergence(index, "decision", a, b)
        if abs(a.time - b.time) > tolerance:
            return Divergence(index, "timestamp", a, b)
    if len(a_log) != len(b_log):
        index = min(len(a_log), len(b_log))
        return Divergence(
            index,
            "length",
            a_log[index] if index < len(a_log) else None,
            b_log[index] if index < len(b_log) else None,
        )
    return None


def match_fraction(
    left: Sequence[Activity],
    right: Sequence[Activity],
    tolerance: float = DEFAULT_TOLERANCE,
) -> float:
    """Fraction of paired activities that match decision and timing."""
    a_log = _comparable(left)
    b_log = _comparable(right)
    if not a_log and not b_log:
        return 1.0
    pairs = list(zip(a_log, b_log))
    if not pairs:
        return 0.0
    good = sum(
        1
        for a, b in pairs
        if a.kind is b.kind
        and a.job_id == b.job_id
        and abs(a.time - b.time) <= tolerance
    )
    return good / max(len(a_log), len(b_log))
