"""Scheduler policy interface and shared machinery.

A policy's :meth:`SchedulerPolicy.decide` is invoked at every scheduling
epoch with a :class:`~repro.core.actions.PlanTransaction` — a façade over
the live :class:`~repro.simulator.simulation.Simulation`; it reads the
pending queue and cluster state, places workers through the
:class:`~repro.core.placement.PlacementEngine`, and reports starts/scales
back through the transaction's ``activate``/``rescale`` API, which stages
them as actions.  :meth:`SchedulerPolicy.plan` wraps an epoch's decisions
into an :class:`~repro.core.actions.EpochPlan` the simulation applies
through its :class:`~repro.core.actions.PlanExecutor` — the single commit
point between policy and cluster.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.job import Job
from repro.core.actions import EpochPlan, PlanExecutor, PlanTransaction
from repro.core.allocation import Pools
from repro.core.placement import PlacementEngine, PlacementRequest
from repro.obs.profiling import PHASE_DECIDE, PHASE_PLACEMENT


class SchedulerPolicy(abc.ABC):
    """Base class for all job-scheduling policies."""

    #: human-readable scheme name (matches the paper's tables)
    name: str = "abstract"

    #: True when re-running :meth:`decide` against unchanged cluster and
    #: queue state provably repeats the previous epoch's (non-)decisions,
    #: letting the simulator skip the epoch outright when the ClusterView
    #: reports no deltas.  Policies whose decisions depend on wall-clock
    #: time, attained service, or internal RNG state must declare False.
    #: Every registered policy declares this explicitly (tested).
    epoch_idempotent: bool = False

    #: Conformance hook: when the repro.oracle runner (or a test) attaches
    #: a callable here, :meth:`emit_decision` feeds it every decision
    #: record a policy chooses to publish — e.g. the exact MCKP instance
    #: an allocation epoch solved — so an external oracle can re-derive
    #: and certify decisions in situ.  None (the default) costs one
    #: attribute read per epoch; policies never depend on a probe's
    #: presence or behaviour.
    conformance_probe = None

    def emit_decision(self, kind: str, **payload) -> None:
        """Publish one decision record to an attached conformance probe.

        ``kind`` names the decision family (``"allocation"``, ...);
        ``payload`` carries the live decision objects.  Probes must
        treat the payload as read-only — it is the policy's working
        state, not a copy.
        """
        probe = self.conformance_probe
        if probe is not None:
            probe(self.name, kind, payload)

    def plan(self, sim: "Simulation") -> EpochPlan:
        """Run one epoch's decisions and return them as an EpochPlan.

        Opens a :class:`PlanTransaction` over the simulation, runs
        :meth:`decide` against it, and seals the staged decisions into a
        plan.  Nothing lifecycle-visible has happened yet: the caller
        commits (or prices) the plan through a
        :class:`~repro.core.actions.PlanExecutor`.  If ``decide`` raises,
        every staged resource mutation is rolled back before re-raising.
        """
        txn = PlanTransaction(sim, policy=self.name)
        decide_span = sim.phase(PHASE_DECIDE)
        try:
            with decide_span:
                self.decide(txn)
        except BaseException:
            txn.abort()
            raise
        plan = txn.seal()
        plan.span_id = decide_span.span_id
        return plan

    def decide(self, ctx: "PlanTransaction") -> None:
        """Make one epoch's decisions against the transaction façade.

        The default delegates to a legacy imperative :meth:`schedule`
        override, whose mutations land on the transaction and are staged
        — so third-party imperative policies keep working unchanged.
        """
        self.schedule(ctx)

    def schedule(self, sim: "Simulation") -> None:
        """Legacy entry point: plan an epoch and apply it immediately.

        Kept for direct callers (tests, harnesses); the simulator itself
        calls :meth:`plan` and commits through its own executor.
        """
        if type(self).decide is SchedulerPolicy.decide:
            raise NotImplementedError(
                f"{type(self).__name__} must implement decide() "
                f"(or a legacy imperative schedule())"
            )
        plan = self.plan(sim)
        executor = getattr(sim, "executor", None)
        if executor is None:
            executor = PlanExecutor(sim)
        executor.apply(plan)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def free_pools(sim: "Simulation") -> Pools:
        """Current idle capacity split into training / on-loan pools.

        Served O(1) from the ClusterView's cached totals when available;
        the fallback scans every server.  Either way the on-loan cost
        factor (physical GPUs per normalized GPU, §5.2) is derived
        deterministically from the loaned hardware's relative compute:
        the *weakest* loaned type sets the cost, so heterogeneous loans
        can never overcommit the physical on-loan pool (historically the
        scan kept whichever server iterated last — iteration-order-
        dependent with mixed loaned hardware).
        """
        view = getattr(sim, "view", None)
        if view is not None:
            pools = view.pools()
            if pools.onloan_cost < 1.0:
                raise ValueError(
                    f"view produced on-loan cost {pools.onloan_cost!r} < 1.0; "
                    f"the §5.2 weakest-type normalization guarantees at "
                    f"least one physical GPU per normalized GPU — the "
                    f"view's GPU-type index is corrupt"
                )
            return pools
        training = onloan = 0
        default = 1.0 / sim.pair.inference_compute if hasattr(
            sim.pair, "inference_compute"
        ) else 3.0
        costs = []
        for server in sim.cluster.servers:
            if server.on_loan:
                onloan += server.free_gpus
                costs.append(1.0 / server.gpu_type.relative_compute)
            else:
                training += server.free_gpus
        cost = max(costs) if costs else default
        return Pools(training=training, onloan=onloan, onloan_cost=max(1.0, cost))

    @staticmethod
    def credit_flex(sim: "Simulation", pools: Pools, jobs: Sequence[Job]) -> None:
        """Add running jobs' flexible-worker GPUs back into the pools.

        §5.2: the resources available at an epoch include GPUs being used
        by flexible workers, because those can be resized away.
        """
        for job in jobs:
            for server_id, workers in job.flex_placement.items():
                if server_id not in sim.cluster:
                    continue
                gpus = workers * job.gpu_cost_on(server_id)
                if sim.cluster.get(server_id).on_loan:
                    pools.onloan += gpus
                else:
                    pools.training += gpus

    @staticmethod
    def make_engine(sim: "Simulation") -> PlacementEngine:
        """The epoch's placement engine.

        Simulations expose a persistent, view-fed engine through
        ``sim.placement_engine()``; bare harnesses (unit tests driving a
        policy directly) fall back to constructing a throwaway one.
        """
        maker = getattr(sim, "placement_engine", None)
        if maker is not None:
            return maker()
        return PlacementEngine(
            sim.cluster,
            special_elastic_grouping=sim.config.special_elastic_grouping,
            rm=getattr(sim, "rm", None),
            now=sim.now,
        )

    def sorted_pending(
        self, sim: "Simulation", key_fn, cache_key: str, dynamic: bool = False
    ) -> Sequence[Job]:
        """The pending queue in ``key_fn`` order, cached on the view.

        ``dynamic`` marks time-varying orderings (least-attained-service)
        that must be recomputed every epoch.  All our ordering keys end
        in ``job_id`` — total orders — so the cached result is identical
        to a fresh ``sorted`` regardless of queue insertion order.  The
        returned sequence is read-only.
        """
        view = getattr(sim, "view", None)
        if view is not None and not dynamic:
            return view.ordered_pending(cache_key, key_fn, sim.pending)
        return sorted(sim.pending, key=key_fn)

    @staticmethod
    def update_hetero_penalty(sim: "Simulation", job: Job) -> None:
        """Apply the <=70 % mixed-GPU throughput penalty (§7.1 Advanced).

        A heterogeneous job spanning more than one GPU type pays the
        penalty; on a homogeneous placement it runs at full speed.  The
        Ideal scenario models perfect heterogeneous training and keeps
        the multiplier at 1.0 via ``hetero_ideal``.
        """
        if not job.spec.heterogeneous or getattr(sim, "hetero_ideal", False):
            return
        types = {
            sim.cluster.get(sid).gpu_type.name
            for sid in job.servers
            if sid in sim.cluster
        }
        job.hetero_penalty = 0.7 if len(types) > 1 else 1.0

    def admit_inelastically(
        self,
        sim: "Simulation",
        ordered_pending: Sequence[Job],
        workers_for=None,
    ) -> List[Job]:
        """Admit jobs in a fixed order at a fixed worker count.

        The workhorse of the FIFO/SJF baselines and of opportunistic
        admission: scan ``ordered_pending``, place each job's workers
        (``workers_for(job)``, defaulting to the base demand), skip jobs
        that do not fit and keep scanning (backfill).  Returns the jobs
        started.
        """
        engine = self.make_engine(sim)
        pools = self.free_pools(sim)
        started: List[Job] = []
        failed_shapes = set()
        opportunistic = getattr(engine, "opportunistic", False)
        view = getattr(sim, "view", None)
        if getattr(view, "backend", None) == "array" and ordered_pending:
            return self._admit_inelastically_array(
                sim, engine, pools, ordered_pending,
                workers_for=workers_for, opportunistic=opportunistic,
            )
        for job in list(ordered_pending):
            workers = workers_for(job) if workers_for else job.spec.min_workers
            gpus = workers * job.spec.gpus_per_worker
            if opportunistic and job.spec.fungible:
                budget = pools.onloan
            elif job.spec.fungible or job.spec.heterogeneous:
                budget = pools.total
            else:
                budget = pools.training
            if gpus > budget:
                continue
            shape = (job.spec.gpus_per_worker, workers, job.spec.fungible)
            if shape in failed_shapes:
                continue
            with sim.phase(PHASE_PLACEMENT):
                result = engine.place(
                    [PlacementRequest(job, base_workers=workers)]
                )
            if result.failed_base:
                failed_shapes.add(shape)
                continue
            pools = self.free_pools(sim)
            self.update_hetero_penalty(sim, job)
            sim.activate(job)
            started.append(job)
        return started

    def _admit_inelastically_array(
        self,
        sim: "Simulation",
        engine: PlacementEngine,
        pools: Pools,
        ordered_pending: Sequence[Job],
        workers_for=None,
        opportunistic: bool = False,
    ) -> List[Job]:
        """The array-backend twin of the admission scan.

        The scalar loop touches every pending job per epoch; with 200k
        queued jobs that Python iteration *is* the epoch.  This twin
        precomputes each job's demand, budget class and shape id once,
        then finds the next admissible job with one vectorized mask.

        Equivalence argument: per-class budgets only shrink during the
        scan (placements consume GPUs, the on-loan cost factor is fixed
        while membership is) and the failed-shape set only grows, so a
        job skipped at its turn could never have been admitted later —
        the scalar loop's single pass and this mask walk attempt exactly
        the same jobs in the same order.
        """
        jobs = list(ordered_pending)
        n = len(jobs)
        gpus = np.empty(n, dtype=np.int64)
        cls = np.empty(n, dtype=np.int64)
        worker_counts: List[int] = []
        shape_ids = np.empty(n, dtype=np.int64)
        shape_codes: Dict[Tuple, int] = {}
        for i, job in enumerate(jobs):
            spec = job.spec
            workers = workers_for(job) if workers_for else spec.min_workers
            worker_counts.append(workers)
            gpus[i] = workers * spec.gpus_per_worker
            if opportunistic and spec.fungible:
                cls[i] = 0
            elif spec.fungible or spec.heterogeneous:
                cls[i] = 1
            else:
                cls[i] = 2
            shape = (spec.gpus_per_worker, workers, spec.fungible)
            code = shape_codes.get(shape)
            if code is None:
                code = len(shape_codes)
                shape_codes[shape] = code
            shape_ids[i] = code
        failed = np.zeros(len(shape_codes), dtype=bool)
        alive = np.ones(n, dtype=bool)
        started: List[Job] = []
        while True:
            budgets = np.array(
                [pools.onloan, pools.total, pools.training], dtype=np.int64
            )
            ok = alive & (gpus <= budgets[cls]) & ~failed[shape_ids]
            hits = np.flatnonzero(ok)
            if hits.size == 0:
                return started
            i = int(hits[0])
            # everything before i was scanned and skipped for good
            alive[: i + 1] = False
            job = jobs[i]
            with sim.phase(PHASE_PLACEMENT):
                result = engine.place(
                    [PlacementRequest(job, base_workers=worker_counts[i])]
                )
            if result.failed_base:
                failed[shape_ids[i]] = True
                continue
            pools = self.free_pools(sim)
            self.update_hetero_penalty(sim, job)
            sim.activate(job)
            started.append(job)

    # ------------------------------------------------------------------
    # scale-in helper
    # ------------------------------------------------------------------
    @staticmethod
    def choose_flex_removals(
        sim: "Simulation", job: Job, workers: int
    ) -> Dict[str, int]:
        """Pick which flexible workers to drop when scaling ``job`` in.

        Prefers vacating dedicated training servers first (keeping the
        on-loan FLEX group intact preserves reclaim-without-preemption),
        then the emptiest on-loan servers.
        """

        def rank(server_id: str) -> Tuple:
            if server_id not in sim.cluster:
                return (0, 0, server_id)
            server = sim.cluster.get(server_id)
            return (server.on_loan, -server.free_gpus, server_id)

        removals: Dict[str, int] = {}
        remaining = workers
        for server_id in sorted(job.flex_placement, key=rank):
            if remaining <= 0:
                break
            take = min(job.flex_placement[server_id], remaining)
            removals[server_id] = take
            remaining -= take
        return removals
