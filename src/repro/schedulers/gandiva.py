"""Gandiva-style opportunistic elastic scaling (§7.1 scheme).

Gandiva "adopts an opportunistic approach to grow or shrink the number of
GPUs used by a job without considering cluster-wide efficiency" (§2.3).
The paper's adaptation: "It exploits elasticity by scaling out jobs to
utilize the remaining resources on servers whenever they are
under-utilized.  We consider under-utilization to be the period when there
are available resources but no pending jobs" (§7.1).

Crucially there is no coordinated scale-in to admit waiting jobs — grown
workers are only returned when their job completes — which is why Gandiva
barely improves queuing over the FIFO baseline (Table 5 row 10).
"""

from __future__ import annotations

from repro.core.placement import PlacementRequest
from repro.schedulers.base import SchedulerPolicy


class GandivaScheduler(SchedulerPolicy):
    """Opportunistic grow-only elastic scheduling."""

    name = "gandiva"
    #: admission and the grow loop both run to a fixpoint each epoch —
    #: with no deltas since, re-running repeats the same failed attempts
    epoch_idempotent = True

    @staticmethod
    def order_key(job):
        return (job.spec.submit_time, job.job_id)

    def decide(self, ctx: "PlanTransaction") -> None:
        # Admission: FIFO with backfill at base demand.
        ordered = self.sorted_pending(
            ctx, self.order_key, self.name + ":order"
        )
        self.admit_inelastically(ctx, ordered)

        # Grow phase: only when nothing is pending (under-utilization).
        if ctx.pending or not ctx.config.elastic:
            return
        engine = self.make_engine(ctx)
        grew = True
        while grew:
            grew = False
            for job in ctx.running_elastic:
                if job.total_workers >= job.spec.max_workers:
                    continue
                result = engine.place(
                    [PlacementRequest(job, flex_workers=1)]
                )
                if result.flex_shortfall.get(job.job_id, 0) == 0:
                    ctx.rescale(job, scaled_out=True)
                    grew = True
