"""Pollux-style goodput-driven scheduling (§7.1 scheme).

Pollux (OSDI '21) co-optimizes resource allocation and training
hyperparameters: it models each job's *goodput* — system throughput times
statistical efficiency — and searches cluster-wide allocations with a
genetic algorithm, re-tuning batch size and learning rate as allocations
change.

Faithful-to-the-critique modelling choices (§7.4):

* goodput has diminishing returns in the allocation, so the GA tends to
  shrink large-and-long jobs near their end to feed fast-progressing
  newcomers — prolonging the big jobs;
* queuing time is not part of the objective, so admission is whatever the
  GA happens to pick, not launch-as-many-as-possible;
* the GA's quality hinges on its iteration budget; we default to the 250
  generations the paper grants it.

Hyperparameter tuning itself is modelled exactly as for Lyra+TunedJobs:
simulations running Pollux set ``tuned_jobs=True`` so scaled jobs recover
their scaling losses plus a small goodput bonus.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.cluster.job import Job
from repro.core.placement import PlacementRequest
from repro.schedulers.base import SchedulerPolicy

#: Diminishing statistical efficiency per extra worker above base demand.
_STAT_EFFICIENCY_DECAY = 0.06


class PolluxScheduler(SchedulerPolicy):
    """Genetic-algorithm goodput optimizer."""

    name = "pollux"
    #: explicit (not inherited): the GA cadence gate and its RNG make
    #: every epoch stateful — an unchanged cluster can still re-decide
    epoch_idempotent = False

    def __init__(
        self,
        generations: int = 250,
        population: int = 20,
        seed: int = 0,
        ga_interval: float = 120.0,
    ):
        if generations < 1 or population < 2:
            raise ValueError("need generations >= 1 and population >= 2")
        self.generations = generations
        self.population = population
        self.rng = random.Random(seed)
        self.ga_interval = ga_interval
        self._last_ga = float("-inf")

    # ------------------------------------------------------------------
    # goodput model
    # ------------------------------------------------------------------
    @staticmethod
    def goodput(job: Job, workers: int) -> float:
        """Normalized goodput of ``job`` at ``workers`` workers.

        Throughput (effective workers x GPUs) discounted by a
        statistical-efficiency term decaying in the surplus over base
        demand, normalized by the job's maximum demand so big and small
        jobs are comparable fleet-wide.
        """
        if workers <= 0:
            return 0.0
        throughput = (
            job.scaling_model.effective_workers(min(workers, job.spec.max_workers))
            * job.spec.gpus_per_worker
        )
        surplus = max(0, workers - job.spec.min_workers)
        stat_eff = 1.0 / (1.0 + _STAT_EFFICIENCY_DECAY * surplus)
        # Statistical efficiency decays as training converges (gradient
        # noise shrinks), so nearly-finished jobs look unattractive and
        # get shrunk in favour of fast-progressing newcomers — the exact
        # behaviour §7.4 blames for Pollux prolonging large-long jobs.
        progress = 1.0 - job.remaining_work / job.spec.total_work
        late_decay = 1.0 - 0.5 * max(0.0, progress - 0.5)
        return throughput * stat_eff * late_decay / job.spec.max_gpus

    # ------------------------------------------------------------------
    # genetic search
    # ------------------------------------------------------------------
    def _worker_options(self, job: Job) -> List[int]:
        if job.elastic:
            return list(range(job.spec.min_workers, job.spec.max_workers + 1))
        return [job.spec.min_workers]

    def _fitness(self, genome: List[int], jobs: List[Job]) -> float:
        return sum(
            self.goodput(job, w) for job, w in zip(jobs, genome) if w > 0
        )

    def _repair(self, genome: List[int], jobs: List[Job], capacity: int) -> None:
        """Drop allocations until the genome fits the capacity."""

        def used() -> int:
            return sum(
                w * j.spec.gpus_per_worker for j, w in zip(jobs, genome)
            )

        while used() > capacity:
            # Shrink the job whose last worker has the lowest marginal
            # goodput; evict (set to 0) pending jobs before shrinking
            # running ones below base.
            best_idx, best_loss = -1, float("inf")
            for i, (job, w) in enumerate(zip(jobs, genome)):
                if w == 0:
                    continue
                if w > job.spec.min_workers:
                    loss = self.goodput(job, w) - self.goodput(job, w - 1)
                else:
                    # removing the whole job
                    loss = self.goodput(job, w)
                    if job.job_id not in self._running_ids:
                        loss *= 0.5  # prefer evicting not-yet-started jobs
                if loss < best_loss:
                    best_loss, best_idx = loss, i
            if best_idx < 0:
                return
            job = jobs[best_idx]
            if genome[best_idx] > job.spec.min_workers:
                genome[best_idx] -= 1
            else:
                genome[best_idx] = 0

    def _search(self, jobs: List[Job], capacity: int) -> List[int]:
        options = [self._worker_options(job) for job in jobs]
        seed_genome = [
            job.total_workers if job.job_id in self._running_ids
            else job.spec.min_workers
            for job in jobs
        ]
        population = [seed_genome[:]]
        for _ in range(self.population - 1):
            genome = [
                self.rng.choice([0] + opts) for opts in options
            ]
            population.append(genome)
        for genome in population:
            self._repair(genome, jobs, capacity)

        for _ in range(self.generations):
            scored = sorted(
                population,
                key=lambda g: self._fitness(g, jobs),
                reverse=True,
            )
            survivors = scored[: max(2, self.population // 2)]
            children = []
            while len(survivors) + len(children) < self.population:
                a, b = self.rng.sample(survivors, 2)
                child = [
                    a[i] if self.rng.random() < 0.5 else b[i]
                    for i in range(len(jobs))
                ]
                # mutation
                if jobs:
                    i = self.rng.randrange(len(jobs))
                    child[i] = self.rng.choice([0] + options[i])
                self._repair(child, jobs, capacity)
                children.append(child)
            population = survivors + children
        return max(population, key=lambda g: self._fitness(g, jobs))

    # ------------------------------------------------------------------
    # scheduling epoch
    # ------------------------------------------------------------------
    def decide(self, ctx: "PlanTransaction") -> None:
        if ctx.now - self._last_ga < self.ga_interval:
            return  # GA runs on its own cadence; queue waits (by design)
        self._last_ga = ctx.now
        self._running_ids = set(ctx.running)

        jobs: List[Job] = list(ctx.running.values()) + list(ctx.pending)
        if not jobs:
            return
        pools = self.free_pools(ctx)
        self.credit_flex(ctx, pools, ctx.running_elastic)
        running_base = sum(
            j.base_workers * j.spec.gpus_per_worker for j in ctx.running.values()
        )
        capacity = pools.total + running_base

        genome = self._search(jobs, capacity)

        # Apply: scale running jobs, admit pending ones with w > 0.
        engine = self.make_engine(ctx)
        target: Dict[int, int] = {
            job.job_id: w for job, w in zip(jobs, genome)
        }
        for job in list(ctx.running.values()):
            want = max(target.get(job.job_id, job.total_workers),
                       job.spec.min_workers)
            flex_want = want - job.base_workers
            delta = flex_want - job.flex_workers
            if delta < 0:
                removals = self.choose_flex_removals(ctx, job, -delta)
                ctx.scale_in_worker_counts(job, removals)
            elif delta > 0:
                result = engine.place([PlacementRequest(job, flex_workers=delta)])
                if result.flex_shortfall.get(job.job_id, 0) < delta:
                    ctx.rescale(job, scaled_out=True)
        for job in list(ctx.pending):
            want = target.get(job.job_id, 0)
            if want < job.spec.min_workers:
                continue
            flex = want - job.spec.min_workers
            result = engine.place(
                [
                    PlacementRequest(
                        job,
                        base_workers=job.spec.min_workers,
                        flex_workers=flex,
                    )
                ]
            )
            if not result.failed_base:
                ctx.activate(job)
