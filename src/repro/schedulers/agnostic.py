"""Information-agnostic Lyra (the §10 future-work direction).

Lyra's allocator relies on running-time predictions: SJF ordering in
phase one and JCT-reduction values in phase two.  The paper closes by
planning to "investigate information-agnostic scheduling without knowing
jobs' running time a priori" — this module builds that variant:

* **Phase one** orders jobs by *least attained service* (Tiresias-style):
  a job's attained service is the work it has already received, so fresh
  jobs and preemption victims go first, approximating SJF without any
  runtime oracle (short jobs, by definition, finish before accumulating
  much service).
* **Phase two** values an extra worker by its *marginal throughput gain
  per attained-service* — jobs that scale well and have received little
  service win leftover GPUs.  No duration estimate is consulted anywhere.

The agnostic variant trades some JCT optimality for independence from the
profiler; the ablation bench quantifies the gap against full Lyra and the
Baseline.
"""

from __future__ import annotations

from repro.cluster.job import Job
from repro.schedulers.lyra import LyraScheduler


def attained_service(job: Job) -> float:
    """Work the job has received so far, in training-GPU seconds."""
    return job.spec.total_work - job.remaining_work


def las_order_key(job: Job):
    """Least-attained-service, then smallest-demand, ordering.

    Fresh submissions all have zero attained service, so the secondary
    smallest-job-first key (base GPUs) does the short-job favouritism
    that SJF gets from runtime estimates — job size is known at submit
    time, running time is not.
    """
    return (
        attained_service(job),
        job.spec.base_gpus,
        job.spec.submit_time,
        job.job_id,
    )


def throughput_gain_value(job: Job, extra: int) -> float:
    """Runtime-oblivious item value for the phase-two knapsack.

    Marginal effective throughput of the extra workers (in training-GPU
    units), discounted by the job's attained service so that young jobs
    are favoured — the same bias LAS applies in phase one.  Normalizing
    by ``1 + attained/total`` needs no runtime prediction: both terms are
    observable counters.
    """
    base = job.spec.min_workers
    gain = (
        job.scaling_model.effective_workers(base + extra)
        - job.scaling_model.effective_workers(base)
    ) * job.spec.gpus_per_worker
    age_discount = 1.0 + attained_service(job) / max(1.0, job.spec.total_work)
    return gain / age_discount


class LyraAgnosticScheduler(LyraScheduler):
    """Lyra's two-phase structure without running-time knowledge."""

    name = "lyra_agnostic"

    #: hooks consumed by :meth:`LyraScheduler.decide`
    order_key = staticmethod(las_order_key)
    value_fn = staticmethod(throughput_gain_value)
    #: attained service grows with the clock — the pending order is
    #: time-varying and must be re-sorted every epoch, never cached
    dynamic_order = True
    #: explicit (not inherited): the LAS order drifts with attained
    #: service even when the cluster and queue are unchanged
    epoch_idempotent = False
