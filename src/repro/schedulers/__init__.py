"""Scheduling policies: Lyra and the paper's comparison schemes."""

from repro.schedulers.afs import AFSScheduler
from repro.schedulers.agnostic import LyraAgnosticScheduler
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.fifo import FIFOScheduler, OpportunisticScheduling, SJFScheduler
from repro.schedulers.gandiva import GandivaScheduler
from repro.schedulers.lyra import LyraScheduler
from repro.schedulers.pollux import PolluxScheduler

__all__ = [
    "AFSScheduler",
    "LyraAgnosticScheduler",
    "FIFOScheduler",
    "GandivaScheduler",
    "LyraScheduler",
    "OpportunisticScheduling",
    "PolluxScheduler",
    "SJFScheduler",
    "SchedulerPolicy",
]
