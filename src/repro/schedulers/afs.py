"""AFS-style elastic scheduling (§7.1 scheme).

AFS (Apathetic Future Share / Elastic Resource Sharing, NSDI '21) greedily
prioritizes the job with the highest *marginal throughput gain per GPU*.
Per the paper's adaptation: base demand is allocated to each job first,
then one more worker at a time goes to the job with the largest throughput
gain per GPU.  AFS "assumes unbounded elasticity" (§7.4), so jobs may grow
past their nominal scaling range — with increasingly poor marginal returns
(modelled as an extra 30 % efficiency haircut per worker beyond the
range), which reproduces its high usage but mediocre JCT.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import BEYOND_RANGE_EFFICIENCY, Job
from repro.core.placement import PlacementRequest
from repro.schedulers.base import SchedulerPolicy

#: Growth cap relative to the declared maximum demand.
_UNBOUNDED_FACTOR = 2


class AFSScheduler(SchedulerPolicy):
    """Greedy marginal-throughput-per-GPU elastic scheduler."""

    name = "afs"
    #: marginal gains depend only on current worker counts; with no
    #: deltas the greedy loop re-derives the same (failed) last step
    epoch_idempotent = True

    @staticmethod
    def order_key(job):
        return (job.spec.submit_time, job.job_id)

    @staticmethod
    def _effective_workers(job: Job, workers: int) -> float:
        wmax = job.spec.max_workers
        inside = min(workers, wmax)
        eff = job.scaling_model.effective_workers(inside)
        if workers > wmax:
            eff += (workers - wmax) * BEYOND_RANGE_EFFICIENCY
        return eff

    def _marginal_gain(self, job: Job) -> float:
        """Throughput gain per GPU of granting one more worker now."""
        w = job.total_workers
        gain = self._effective_workers(job, w + 1) - self._effective_workers(
            job, w
        )
        return gain / job.spec.gpus_per_worker

    def _growth_limit(self, job: Job) -> int:
        return job.spec.max_workers * _UNBOUNDED_FACTOR

    def decide(self, ctx: "PlanTransaction") -> None:
        # Base admission: arrival order with backfill (AFS admits each
        # job's minimum demand first, like Lyra - §7.4).
        ordered = self.sorted_pending(
            ctx, self.order_key, self.name + ":order"
        )
        self.admit_inelastically(ctx, ordered)

        if not ctx.config.elastic:
            return
        engine = self.make_engine(ctx)
        # Greedy marginal allocation, one worker at a time.
        while True:
            best: Optional[Job] = None
            best_gain = 0.0
            for job in ctx.running_elastic:
                if job.total_workers >= self._growth_limit(job):
                    continue
                gain = self._marginal_gain(job)
                if gain > best_gain:
                    best_gain = gain
                    best = job
            if best is None:
                return
            result = engine.place([PlacementRequest(best, flex_workers=1)])
            if result.flex_shortfall.get(best.job_id, 0):
                return  # no server can host another worker
            ctx.rescale(best, scaled_out=True)
