"""Simple queue-order policies: FIFO (the Baseline) and SJF.

The paper's Baseline is "a FIFO cluster scheduler with no capacity loaning
or elastic scaling" (§7.1).  Jobs are scanned in arrival order and started
whenever their (fixed) demand fits; blocked jobs are skipped so smaller
jobs can backfill — without backfill a head-of-line blocker would idle the
entire cluster, which no production FIFO scheduler does.

``OpportunisticScheduling`` reproduces Table 5 row 6: capacity loaning is
off, and the 21 % fungible jobs are queued to the *inference* cluster with
low priority, opportunistically using idle servers there (and getting
evicted when inference traffic returns).
"""

from __future__ import annotations

from typing import List

from repro.cluster.job import Job
from repro.core.placement import PlacementEngine, PlacementRequest
from repro.schedulers.base import SchedulerPolicy


class FIFOScheduler(SchedulerPolicy):
    """First-in-first-out with backfill; every job runs at base demand."""

    name = "fifo"
    #: arrival order and runtime estimates never change between deltas,
    #: and a failed admission attempt leaves no state behind — re-running
    #: the epoch on unchanged state is a no-op
    epoch_idempotent = True

    @staticmethod
    def order_key(job: Job):
        return (job.spec.submit_time, job.job_id)

    def order(self, pending: List[Job]) -> List[Job]:
        return sorted(pending, key=self.order_key)

    def decide(self, ctx: "PlanTransaction") -> None:
        ordered = self.sorted_pending(
            ctx, self.order_key, self.name + ":order"
        )
        self.admit_inelastically(ctx, ordered)


class SJFScheduler(FIFOScheduler):
    """Shortest-job-first over the scheduler-visible runtime estimates."""

    name = "sjf"
    #: same argument as FIFO: the estimate-ordered scan is stateless
    epoch_idempotent = True

    @staticmethod
    def order_key(job: Job):
        return (job.estimated_duration(), job.spec.submit_time, job.job_id)


class OpportunisticScheduling(FIFOScheduler):
    """Table 5 row 6: fungible jobs opportunistically use inference servers.

    Runs FIFO for the regular training workload, but fungible jobs are
    restricted to on-loan (inference) hardware — they wait for idle
    inference servers instead of competing for training GPUs, and suffer
    the weaker GPUs' efficiency once there.
    """

    name = "opportunistic"
    #: the same stateless backfill scan as FIFO, over a different budget
    epoch_idempotent = True

    def decide(self, ctx: "PlanTransaction") -> None:
        maker = getattr(ctx, "placement_engine", None)
        if maker is not None:
            engine = maker(opportunistic=True)
        else:
            engine = PlacementEngine(
                ctx.cluster,
                special_elastic_grouping=ctx.config.special_elastic_grouping,
                opportunistic=True,
                rm=ctx.rm,
                now=ctx.now,
            )
        pools = self.free_pools(ctx)
        failed_shapes = set()
        ordered = self.sorted_pending(
            ctx, self.order_key, self.name + ":order"
        )
        for job in ordered:
            workers = job.spec.min_workers
            gpus = workers * job.spec.gpus_per_worker
            budget = pools.onloan if job.spec.fungible else pools.training
            if gpus > budget:
                continue
            shape = (job.spec.gpus_per_worker, workers, job.spec.fungible)
            if shape in failed_shapes:
                continue
            result = engine.place([PlacementRequest(job, base_workers=workers)])
            if result.failed_base:
                failed_shapes.add(shape)
                continue
            pools = self.free_pools(ctx)
            ctx.activate(job)
