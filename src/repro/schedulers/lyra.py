"""Lyra's job scheduler: two-phase allocation + BFD placement (§5).

Each epoch:

1. Credit the flexible workers of running elastic jobs back into the free
   pools — they are resizable resources (§5.2).
2. Run the two-phase allocator: SJF over inelastic demand, then the
   multiple-choice knapsack over elastic flexible demand.
3. Diff the flexible allocation against the current one, scale jobs in
   (freeing GPUs) before placing new base demands and scale-outs via
   best-fit-decreasing placement (§5.3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.job import Job
from repro.core.allocation import allocate_two_phase, jct_reduction_value
from repro.core.placement import PlacementRequest
from repro.obs.profiling import PHASE_ALLOCATION, PHASE_PLACEMENT
from repro.schedulers.base import SchedulerPolicy


def _sjf_key(job: Job):
    return (job.estimated_duration(), job.spec.submit_time, job.job_id)


class LyraScheduler(SchedulerPolicy):
    """The paper's scheduler (elastic-aware two-phase allocation).

    Subclasses may override ``order_key`` (phase-one ordering) and
    ``value_fn`` (phase-two item values) — the information-agnostic
    variant (§10 future work) swaps both for runtime-oblivious rules.
    """

    name = "lyra"
    #: phase-one ordering (default: shortest estimated runtime first)
    order_key = staticmethod(_sjf_key)
    #: phase-two MCKP item values depend on *remaining* time — they drift
    #: with the clock, so epochs are never skippable (epoch_idempotent
    #: stays False)
    value_fn = staticmethod(jct_reduction_value)
    #: True when order_key is time-varying (least-attained-service) and
    #: the cached pending order must not be reused across epochs
    dynamic_order = False
    #: explicit (not inherited): MCKP item values depend on remaining
    #: runtime, so an unchanged-state epoch can still decide differently
    epoch_idempotent = False

    def decide(self, ctx: "PlanTransaction") -> None:
        elastic_on = ctx.config.elastic
        running_elastic = ctx.running_elastic if elastic_on else []
        current_flex: Dict[int, int] = {
            job.job_id: job.flex_workers for job in running_elastic
        }

        pools = self.free_pools(ctx)
        self.credit_flex(ctx, pools, running_elastic)

        pending = self.sorted_pending(
            ctx, self.order_key, self.name + ":p1", dynamic=self.dynamic_order
        )
        if not elastic_on:
            # Elastic scaling disabled: treat every job as inelastic at
            # its base demand; phase two never runs.
            self.admit_inelastically(ctx, pending)
            return

        with ctx.phase(PHASE_ALLOCATION):
            decision = allocate_two_phase(
                pending,
                running_elastic,
                pools,
                order_key=self.order_key,
                value_fn=self.value_fn,
                phases=ctx.obs.phases,
                presorted=True,
            )
        self.emit_decision("allocation", decision=decision)
        if ctx.tracer.enabled:
            ctx.trace(
                "scheduler.mckp",
                admitted=len(decision.scheduled),
                skipped=len(decision.skipped),
                groups=len(decision.flex),
                flex_workers=sum(decision.flex.values()),
                value_s=round(decision.mckp_value, 3),
            )
            ctx.note_provenance(
                mckp_admitted=len(decision.scheduled),
                mckp_skipped=len(decision.skipped),
                mckp_groups=len(decision.flex),
                mckp_flex_workers=sum(decision.flex.values()),
                mckp_value_s=round(decision.mckp_value, 3),
                pending=len(pending),
                running_elastic=len(running_elastic),
                pool_training=round(pools.training, 3),
                pool_total=round(pools.total, 3),
            )

        # Scale-ins first: free the GPUs that admissions will consume.
        for job in running_elastic:
            new_flex = decision.flex.get(job.job_id, current_flex[job.job_id])
            delta = new_flex - current_flex[job.job_id]
            if delta < 0:
                removals = self.choose_flex_removals(ctx, job, -delta)
                ctx.scale_in_worker_counts(job, removals)

        # Place admissions (base + their flexible surplus) and scale-outs.
        engine = self.make_engine(ctx)
        requests: List[PlacementRequest] = []
        for job, _domain in decision.scheduled:
            flex = decision.flex.get(job.job_id, 0) if job.elastic else 0
            requests.append(
                PlacementRequest(
                    job, base_workers=job.spec.min_workers, flex_workers=flex
                )
            )
        scale_out_jobs: List[Job] = []
        for job in running_elastic:
            delta = decision.flex.get(job.job_id, current_flex[job.job_id]) - (
                current_flex[job.job_id]
            )
            if delta > 0:
                requests.append(PlacementRequest(job, flex_workers=delta))
                scale_out_jobs.append(job)

        with ctx.phase(PHASE_PLACEMENT):
            result = engine.place(requests)
        for job in result.placed_base:
            self.update_hetero_penalty(ctx, job)
            ctx.activate(job)
        for job in scale_out_jobs:
            shortfall = result.flex_shortfall.get(job.job_id, 0)
            placed = True if shortfall == 0 else job.flex_workers > current_flex[job.job_id]
            if placed:
                self.update_hetero_penalty(ctx, job)
                ctx.rescale(job, scaled_out=True)
