"""Slow, obviously-correct reference implementations of the core decisions.

Differential testing only works when the reference is credibly simpler
than the production path, so everything here trades efficiency and
incrementality for first-principles transparency:

* :func:`plan_reclaim_bruteforce` searches *job* subsets exhaustively —
  a different search space from ``plan_reclaim_optimal``'s server
  subsets, which makes agreement between the two a meaningful result
  rather than shared-bug blindness;
* :func:`allocate_reference` restates the §5.2 two-phase rules in
  straight-line code over raw pool numbers and solves phase two with
  the brute-force MCKP enumerator;
* :func:`deduct_flex_reference` / :func:`replay_flex_leftover` state the
  fungibility rule for flexible workers plainly, so a production
  decision's leftover pools can be re-derived and certified.

None of this is wired into any scheduler: production code must never
import this module (the conformance runner and tests do).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.cluster.job import Job
from repro.cluster.server import Server
from repro.core.allocation import (
    MIXED,
    ONLOAN,
    TRAINING,
    Pools,
    jct_reduction_value,
)
from repro.core.mckp import Item, solve_mckp_bruteforce


# ----------------------------------------------------------------------
# reclaiming: exhaustive search over job subsets
# ----------------------------------------------------------------------
@dataclass
class OracleReclaim:
    """A provably preemption-minimal reclaim decision."""

    servers: List[str] = field(default_factory=list)
    preempted_jobs: Set[int] = field(default_factory=set)

    @property
    def num_preemptions(self) -> int:
        return len(self.preempted_jobs)


def plan_reclaim_bruteforce(
    candidates: Sequence[Server],
    jobs: Mapping[int, Job],
    count: int,
    max_jobs: int = 18,
) -> OracleReclaim:
    """Minimum-preemption reclaim by exhaustive search over job subsets.

    Enumerates candidate preemption sets in increasing size and returns
    the first one that vacates at least ``count`` candidate servers — a
    server is vacated exactly when every one of its base-hosting jobs is
    preempted (flexible workers always scale in for free, §4).  Because
    sizes are tried in order, the returned preemption count is the true
    optimum over *every* possible reclaim plan; the enumeration order of
    :func:`itertools.combinations` makes the winner deterministic.
    """
    count = min(count, len(candidates))
    base_jobs = sorted(
        {
            job_id
            for server in candidates
            for job_id in server.allocations
            if server.server_id in jobs[job_id].base_placement
        }
    )
    if len(base_jobs) > max_jobs:
        raise ValueError(
            f"{len(base_jobs)} base-hosting jobs exceeds exhaustive-search "
            f"limit {max_jobs}"
        )

    def vacated_by(preempted: Set[int]) -> List[str]:
        vacated = []
        for server in candidates:
            blocked = any(
                job_id not in preempted
                and server.server_id in jobs[job_id].base_placement
                for job_id in server.allocations
            )
            if not blocked:
                vacated.append(server.server_id)
        return vacated

    for size in range(len(base_jobs) + 1):
        for combo in itertools.combinations(base_jobs, size):
            vacated = vacated_by(set(combo))
            if len(vacated) >= count:
                return OracleReclaim(
                    servers=vacated[:count], preempted_jobs=set(combo)
                )
    raise AssertionError(
        "unreachable: preempting every base job vacates every candidate"
    )


# ----------------------------------------------------------------------
# allocation: first-principles two-phase on raw pool numbers
# ----------------------------------------------------------------------
@dataclass
class ReferenceAllocation:
    """What the §5.2 rules, applied literally, decide for one epoch."""

    #: ``(job_id, domain)`` admissions in decision order
    scheduled: List[Tuple[int, str]] = field(default_factory=list)
    skipped: List[int] = field(default_factory=list)
    flex: Dict[int, int] = field(default_factory=dict)
    mckp_value: float = 0.0
    #: pools after phase one, before any flexible deduction
    phase1_leftover: Pools = field(default_factory=lambda: Pools(0, 0))
    leftover: Pools = field(default_factory=lambda: Pools(0, 0))


def _fits_reference(job: Job, gpus: int, pools: Pools) -> str:
    """Where the base demand lands, per §5.2/§5.3, stated literally.

    Fungible elastic jobs prefer on-loan capacity (keeping reclaims
    preemption-free); everything else prefers dedicated training GPUs.
    Non-fungible jobs can never use on-loan hardware; heterogeneous jobs
    may straddle both pools as a last resort.  Returns '' when the job
    does not fit anywhere.
    """
    prefers_onloan = job.spec.fungible and job.elastic
    for domain in (ONLOAN, TRAINING) if prefers_onloan else (TRAINING, ONLOAN):
        if domain == ONLOAN:
            if job.spec.fungible and gpus * pools.onloan_cost <= pools.onloan:
                return ONLOAN
        elif gpus <= pools.training:
            return TRAINING
    if job.spec.heterogeneous and gpus <= pools.total:
        return MIXED
    return ""


def _charge_reference(pools: Pools, domain: str, gpus: int) -> None:
    """Charge an admitted base demand to the pools (§5.2 normalization)."""
    if domain == TRAINING:
        pools.training -= gpus
    elif domain == ONLOAN:
        pools.onloan -= int(round(gpus * pools.onloan_cost))
    else:  # MIXED drains training first, remainder from on-loan
        from_training = min(gpus, pools.training)
        pools.training -= from_training
        pools.onloan -= int(round((gpus - from_training) * pools.onloan_cost))


def deduct_flex_reference(pools: Pools, job: Job, gpus: int) -> None:
    """The fungibility rule for flexible workers, stated plainly.

    Fungible jobs draw on-loan capacity first (§5.3) and spill the rest
    to training; non-fungible jobs may only ever draw training GPUs —
    an over-grant from the combined-pool MCKP is clamped, never charged
    to on-loan hardware the job cannot run on.  This is the invariant
    the production ``allocation._deduct_flex`` historically violated.
    """
    if not job.spec.fungible:
        pools.training -= min(gpus, pools.training)
        return
    taken = min(gpus, pools.onloan_normalized)
    pools.onloan = max(0, pools.onloan - int(round(taken * pools.onloan_cost)))
    pools.training = max(0, pools.training - (gpus - taken))


def replay_flex_leftover(
    pools: Pools, elastic_jobs: Sequence[Job], flex: Mapping[int, int]
) -> Pools:
    """Re-derive the leftover pools implied by a flexible-worker decision.

    Starting from the phase-one leftover, charges every granted extra
    worker through :func:`deduct_flex_reference` in decision order; the
    result is what a correct production accounting must report.
    """
    pools = pools.copy()
    for job in elastic_jobs:
        extra = flex.get(job.job_id, 0)
        if extra:
            deduct_flex_reference(pools, job, extra * job.spec.gpus_per_worker)
    return pools


def allocate_reference(
    pending: Sequence[Job],
    running_elastic: Sequence[Job],
    pools: Pools,
    value_fn=jct_reduction_value,
) -> ReferenceAllocation:
    """First-principles §5.2 two-phase allocation on raw cluster state.

    Phase one admits base demands shortest-job-first (scan continues past
    jobs that do not fit, so small jobs backfill); phase two builds the
    Fig. 6 MCKP groups for the scheduled-plus-running elastic jobs and
    solves them by exhaustive enumeration.  Deliberately shares no code
    with ``repro.core.allocation`` beyond the ``Pools``/``Item`` data
    types and the item value function under test's control.
    """
    pools = pools.copy()
    ref = ReferenceAllocation()
    scheduled_jobs: List[Job] = []
    order = sorted(
        pending,
        key=lambda j: (j.estimated_duration(), j.spec.submit_time, j.job_id),
    )
    for job in order:
        gpus = job.spec.base_gpus
        domain = _fits_reference(job, gpus, pools)
        if not domain:
            ref.skipped.append(job.job_id)
            continue
        _charge_reference(pools, domain, gpus)
        ref.scheduled.append((job.job_id, domain))
        scheduled_jobs.append(job)
    ref.phase1_leftover = pools.copy()

    elastic_jobs = [job for job in scheduled_jobs if job.elastic]
    elastic_jobs.extend(running_elastic)
    if elastic_jobs and pools.total > 0:
        capacity = pools.total
        groups: List[List[Item]] = []
        for job in elastic_jobs:
            items: List[Item] = []
            span = job.spec.max_workers - job.spec.min_workers
            for extra in range(1, span + 1):
                weight = extra * job.spec.gpus_per_worker
                if weight > capacity:
                    break
                items.append(
                    Item(weight=weight, value=value_fn(job, extra),
                         payload=(job, extra))
                )
            groups.append(items)
        value, choices = solve_mckp_bruteforce(groups, capacity)
        ref.mckp_value = value
        for job, choice in zip(elastic_jobs, choices):
            extra = choice.payload[1] if choice is not None else 0
            ref.flex[job.job_id] = extra
            if extra:
                deduct_flex_reference(
                    pools, job, extra * job.spec.gpus_per_worker
                )
    else:
        for job in elastic_jobs:
            ref.flex[job.job_id] = 0
    ref.leftover = pools
    return ref
