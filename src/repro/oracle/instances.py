"""Seeded random instances for the oracles, and the divergence minimizer.

Every generator produces a plain, hashable *spec* rather than live
objects, because a divergence report needs three things from its input:
it must rebuild deterministically (``build()``), shrink structurally
(``shrinks()`` feeds the ddmin-style :func:`minimize`), and print as a
runnable repro script (``to_script()``) — the dataclass ``repr`` of a
spec is valid constructor syntax, so the script embeds the minimized
instance as a literal.

Generators deliberately cover the regions where the production paths
historically diverged from the spec: non-fungible elastic jobs against a
dry training pool (the ``_deduct_flex`` spill), jobs whose per-server
GPU cost differs across hosts (the GPU_FRACTION index/loop drift),
multi-server jobs whose preemption cascades vacate several candidates at
once (the optimal planner's early exit), and MCKP groups with
zero-weight items, negative values and empty groups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.cluster.gpu import V100
from repro.cluster.job import Job, JobSpec
from repro.cluster.server import Server
from repro.core.allocation import Pools
from repro.core.mckp import Item

#: (job_id, server_id, workers, flexible, gpu_cost)
Placement = Tuple[int, str, int, bool, int]
#: (job_id, duration, min_workers, max_workers, gpus_per_worker,
#:  elastic, fungible, heterogeneous, running, progress)
JobTuple = Tuple[int, float, int, int, int, bool, bool, bool, bool, float]

_SCRIPT_HEADER = (
    "# minimized repro — run from the repo root with PYTHONPATH=src\n"
    "from repro.oracle.conformance import {check}\n"
    "from repro.oracle.instances import {cls}\n"
    "\n"
    "instance = {spec!r}\n"
    "print({check}(instance) or 'no divergence')\n"
)


@dataclass(frozen=True)
class ReclaimInstance:
    """A reclaim decision problem: on-loan servers, placements, a demand."""

    num_servers: int
    placements: Tuple[Placement, ...]
    count: int
    gpus_per_server: int = 8

    def build(self) -> Tuple[List[Server], Dict[int, Job]]:
        servers = {
            f"r{i}": Server(
                server_id=f"r{i}",
                gpu_type=V100,
                num_gpus=self.gpus_per_server,
                on_loan=True,
                home_cluster="inference",
            )
            for i in range(self.num_servers)
        }
        jobs: Dict[int, Job] = {}
        for job_id, sid, workers, flexible, gpu_cost in self.placements:
            if job_id not in jobs:
                jobs[job_id] = Job(
                    JobSpec(
                        job_id=job_id,
                        submit_time=0.0,
                        duration=1000.0,
                        min_workers=1,
                        max_workers=64,
                        gpus_per_worker=1,
                        elastic=True,
                        fungible=True,
                    )
                )
            jobs[job_id].record_placement(
                sid, workers, flexible=flexible, gpu_cost=gpu_cost,
                on_loan=True,
            )
            servers[sid].allocate(job_id, workers * gpu_cost)
        return list(servers.values()), jobs

    def shrinks(self) -> Iterator["ReclaimInstance"]:
        job_ids = sorted({p[0] for p in self.placements})
        for job_id in job_ids:  # drop a whole job
            rest = tuple(p for p in self.placements if p[0] != job_id)
            yield ReclaimInstance(
                self.num_servers, rest, self.count, self.gpus_per_server
            )
        for i in range(len(self.placements)):  # drop one placement
            rest = self.placements[:i] + self.placements[i + 1:]
            yield ReclaimInstance(
                self.num_servers, rest, self.count, self.gpus_per_server
            )
        if self.count > 1:
            yield ReclaimInstance(
                self.num_servers, self.placements, self.count - 1,
                self.gpus_per_server,
            )
        last = f"r{self.num_servers - 1}"
        if self.num_servers > 1 and all(p[1] != last for p in self.placements):
            yield ReclaimInstance(  # drop a trailing idle server
                self.num_servers - 1, self.placements,
                min(self.count, self.num_servers - 1), self.gpus_per_server,
            )

    def to_script(self, check: str) -> str:
        return _SCRIPT_HEADER.format(
            check=check, cls="ReclaimInstance", spec=self
        )


def gen_reclaim_instance(seed: int) -> ReclaimInstance:
    rng = random.Random(seed)
    num_servers = rng.randint(3, 7)
    free = {f"r{i}": 8 for i in range(num_servers)}
    placements: List[Placement] = []
    for job_id in range(rng.randint(2, 7)):
        used: Dict[str, int] = {}
        span = rng.sample(sorted(free), k=min(len(free), rng.randint(1, 3)))
        for sid in span:
            gpu_cost = rng.choice((1, 1, 2))
            workers = rng.randint(1, 3)
            if workers * gpu_cost <= free[sid]:
                free[sid] -= workers * gpu_cost
                placements.append((job_id, sid, workers, False, gpu_cost))
                used[sid] = gpu_cost
        if used and rng.random() < 0.4:  # elastic surplus on a fresh host
            spare = [
                s for s in sorted(free) if s not in used and free[s] >= 1
            ]
            if spare:
                sid = rng.choice(spare)
                gpu_cost = rng.choice((1, 2))
                workers = min(rng.randint(1, 2), free[sid] // gpu_cost)
                if workers:
                    free[sid] -= workers * gpu_cost
                    placements.append((job_id, sid, workers, True, gpu_cost))
    count = rng.randint(1, max(1, num_servers - 1))
    return ReclaimInstance(
        num_servers=num_servers, placements=tuple(placements), count=count
    )


@dataclass(frozen=True)
class MCKPInstance:
    """A multiple-choice knapsack instance as ``(weight, value)`` tuples."""

    groups: Tuple[Tuple[Tuple[int, float], ...], ...]
    capacity: int

    def build(self) -> Tuple[List[List[Item]], int]:
        return (
            [[Item(weight=w, value=v) for w, v in group]
             for group in self.groups],
            self.capacity,
        )

    def shrinks(self) -> Iterator["MCKPInstance"]:
        for g in range(len(self.groups)):  # drop a group
            yield MCKPInstance(
                self.groups[:g] + self.groups[g + 1:], self.capacity
            )
        for g, group in enumerate(self.groups):  # drop one item
            for i in range(len(group)):
                smaller = group[:i] + group[i + 1:]
                yield MCKPInstance(
                    self.groups[:g] + (smaller,) + self.groups[g + 1:],
                    self.capacity,
                )
        if self.capacity > 0:
            yield MCKPInstance(self.groups, self.capacity // 2)

    def to_script(self, check: str) -> str:
        return _SCRIPT_HEADER.format(check=check, cls="MCKPInstance", spec=self)


def gen_mckp_instance(seed: int) -> MCKPInstance:
    rng = random.Random(seed)
    groups = []
    for _ in range(rng.randint(0, 4)):
        items = []
        for _ in range(rng.randint(0, 4)):  # empty groups are in range
            weight = 0 if rng.random() < 0.2 else rng.randint(0, 6)
            value = round(rng.uniform(-5.0, 10.0), 3)  # negatives included
            items.append((weight, value))
        groups.append(tuple(items))
    return MCKPInstance(groups=tuple(groups), capacity=rng.randint(0, 12))


@dataclass(frozen=True)
class AllocationInstance:
    """A two-phase allocation epoch: queued + running jobs and the pools."""

    jobs: Tuple[JobTuple, ...]
    training: int
    onloan: int
    onloan_cost: float

    def build(self) -> Tuple[List[Job], List[Job], Pools]:
        pending: List[Job] = []
        running: List[Job] = []
        for (job_id, duration, min_w, max_w, gpw, elastic, fungible,
             hetero, is_running, progress) in self.jobs:
            job = Job(
                JobSpec(
                    job_id=job_id,
                    submit_time=float(job_id),
                    duration=duration,
                    min_workers=min_w,
                    max_workers=max_w,
                    gpus_per_worker=gpw,
                    elastic=elastic,
                    fungible=fungible,
                    heterogeneous=hetero,
                )
            )
            if progress:
                job.remaining_work *= 1.0 - progress
            (running if is_running else pending).append(job)
        return pending, running, Pools(
            training=self.training, onloan=self.onloan,
            onloan_cost=self.onloan_cost,
        )

    def shrinks(self) -> Iterator["AllocationInstance"]:
        for i in range(len(self.jobs)):
            yield AllocationInstance(
                self.jobs[:i] + self.jobs[i + 1:],
                self.training, self.onloan, self.onloan_cost,
            )
        if self.training > 0:
            yield AllocationInstance(
                self.jobs, self.training // 2, self.onloan, self.onloan_cost
            )
        if self.onloan > 0:
            yield AllocationInstance(
                self.jobs, self.training, self.onloan // 2, self.onloan_cost
            )

    def to_script(self, check: str) -> str:
        return _SCRIPT_HEADER.format(
            check=check, cls="AllocationInstance", spec=self
        )


def gen_allocation_instance(seed: int) -> AllocationInstance:
    rng = random.Random(seed)
    jobs: List[JobTuple] = []
    # <= 6 jobs keeps the reference's brute-force MCKP (product over
    # per-group choices) within a few thousand combinations per instance.
    for job_id in range(rng.randint(2, 6)):
        gpw = rng.choice((1, 1, 2))
        elastic = rng.random() < 0.6
        if elastic:
            min_w = rng.randint(1, 2)
            max_w = min_w + rng.randint(1, 4)
        else:
            min_w = max_w = rng.randint(1, 4)
        running = elastic and rng.random() < 0.3
        jobs.append((
            job_id,
            round(rng.uniform(100.0, 10_000.0), 1),
            min_w,
            max_w,
            gpw,
            elastic,
            rng.random() < 0.5,  # non-fungible elastic jobs are common:
            rng.random() < 0.2,  # they trigger the flex-spill clamp
            running,
            round(rng.uniform(0.1, 0.8), 2) if running else 0.0,
        ))
    return AllocationInstance(
        jobs=tuple(jobs),
        training=rng.randint(0, 10),
        onloan=rng.randint(0, 18),
        onloan_cost=rng.choice((2.0, 3.0)),
    )


def minimize(instance, diverges: Callable[[object], Optional[str]]):
    """Greedy ddmin: drop one structural element at a time while the
    divergence persists, to a fixpoint.

    ``diverges`` returns a description (truthy) while the bug still
    reproduces; shrinks that raise are treated as invalid and skipped.
    The result is the instance embedded in the divergence report's repro
    script, so smaller is strictly better for whoever debugs it.
    """
    while True:
        for smaller in instance.shrinks():
            try:
                still_failing = diverges(smaller) is not None
            except Exception:
                still_failing = False
            if still_failing:
                instance = smaller
                break
        else:
            return instance
