"""Metamorphic properties: invariants across *related* inputs.

Where the reference implementations certify a single decision, these
checks certify relationships between decisions — the class of property
that catches bugs no golden log can, because both runs of a buggy
implementation drift together.  Each check returns ``None`` when the
property holds, or a human-readable divergence description.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.cluster.gpu import V100
from repro.cluster.server import Server
from repro.core.mckp import solve_mckp
from repro.core.reclaim import plan_reclaim_lyra, plan_reclaim_optimal


def check_capacity_monotonic(instance) -> Optional[str]:
    """Adding an idle candidate server never increases preemptions.

    Holds for the greedy (the extra server is vacated for free in phase
    zero, after which the selection sequence is unchanged but stops one
    server earlier) and trivially for the optimal search (every old plan
    is still available).
    """
    servers, jobs = instance.build()
    extra = Server(
        server_id="zz-idle", gpu_type=V100, on_loan=True,
        home_cluster="inference",
    )
    base = plan_reclaim_lyra(servers, jobs, instance.count)
    grown = plan_reclaim_lyra(servers + [extra], jobs, instance.count)
    if grown.num_preemptions > base.num_preemptions:
        return (
            f"adding an idle candidate raised greedy preemptions "
            f"{base.num_preemptions} -> {grown.num_preemptions}"
        )
    opt_base = plan_reclaim_optimal(servers, jobs, instance.count)
    opt_grown = plan_reclaim_optimal(servers + [extra], jobs, instance.count)
    if opt_grown.num_preemptions > opt_base.num_preemptions:
        return (
            f"adding an idle candidate raised optimal preemptions "
            f"{opt_base.num_preemptions} -> {opt_grown.num_preemptions}"
        )
    return None


def check_permutation_invariance(instance, seed: int = 0) -> Optional[str]:
    """Permuting the candidate order never changes the plan's cost.

    The greedy breaks every tie down to the server id, so its *entire
    plan* must be order-independent; the exhaustive search breaks ties
    by enumeration order, so only its preemption count is pinned.
    """
    servers, jobs = instance.build()
    ref = plan_reclaim_lyra(servers, jobs, instance.count)
    ref_optimal = plan_reclaim_optimal(servers, jobs, instance.count)
    rng = random.Random(seed)
    for _ in range(3):
        shuffled = servers[:]
        rng.shuffle(shuffled)
        plan = plan_reclaim_lyra(shuffled, jobs, instance.count)
        if (
            plan.servers != ref.servers
            or plan.preempted_jobs != ref.preempted_jobs
        ):
            return (
                f"greedy plan depends on candidate order: "
                f"{ref.servers}/{sorted(ref.preempted_jobs)} vs "
                f"{plan.servers}/{sorted(plan.preempted_jobs)}"
            )
        optimal = plan_reclaim_optimal(shuffled, jobs, instance.count)
        if optimal.num_preemptions != ref_optimal.num_preemptions:
            return (
                f"optimal preemption count depends on candidate order: "
                f"{ref_optimal.num_preemptions} vs "
                f"{optimal.num_preemptions}"
            )
    return None


def check_mckp_permutation(instance, seed: int = 0) -> Optional[str]:
    """Permuting MCKP groups (or items) never changes the optimal value."""
    groups, capacity = instance.build()
    base_value, _ = solve_mckp(groups, capacity)
    rng = random.Random(seed)
    for _ in range(3):
        shuffled = [group[:] for group in groups]
        for group in shuffled:
            rng.shuffle(group)
        rng.shuffle(shuffled)
        value, _ = solve_mckp(shuffled, capacity)
        if not math.isclose(value, base_value, rel_tol=1e-9, abs_tol=1e-9):
            return (
                f"MCKP value depends on group order: {base_value!r} vs "
                f"{value!r}"
            )
    return None


def check_dry_run_pricing(
    seed: int, scheme: str = "lyra", at: float = 41_000.0, demand: int = 2
) -> Optional[str]:
    """Dry-run pricing equals the committed plan's observed deltas.

    Builds a small loaning simulation, stops it mid-run, prices a
    reclaim plan as a dry run (which must leave the simulation
    untouched), then re-plans — determinism requires the identical plan
    — commits it, and compares the observed preemption and reclaim
    deltas against the dry-run receipt.  Returns ``None`` vacuously when
    the probe point has nothing on loan.
    """
    from repro.scenarios import build_sim, default_setup

    setup = default_setup(
        num_jobs=40, days=0.5, training_servers=3, inference_servers=5,
        seed=seed, target_load=3.0,
    )
    sim = build_sim(setup, scheme, seed=seed)
    sim.run(until=at)
    loaned = sim.pair.loaned_count
    if loaned == 0:
        return None
    demand = min(demand, loaned)

    plan = sim.orchestrator.plan_reclaim(sim, demand)
    priced_kinds = plan.by_kind()
    receipt = sim.executor.apply(plan, dry_run=True)
    pricing = receipt.pricing
    if sim.pair.loaned_count != loaned:
        return "dry run changed the loaned-server count"

    before_preemptions = sim.metrics.preemptions
    replan = sim.orchestrator.plan_reclaim(sim, demand)
    if replan.by_kind() != priced_kinds:
        return (
            f"re-planning after a dry run produced a different plan: "
            f"{priced_kinds} vs {replan.by_kind()}"
        )
    sim.executor.apply(replan)
    committed_preemptions = sim.metrics.preemptions - before_preemptions
    committed_reclaims = loaned - sim.pair.loaned_count
    if committed_preemptions != pricing["preemptions"]:
        return (
            f"dry-run priced {pricing['preemptions']} preemption(s) but "
            f"committing the same plan caused {committed_preemptions}"
        )
    if committed_reclaims != pricing["servers_reclaimed"]:
        return (
            f"dry-run priced {pricing['servers_reclaimed']} reclaimed "
            f"server(s) but committing the same plan returned "
            f"{committed_reclaims}"
        )
    return None
