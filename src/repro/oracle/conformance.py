"""The conformance runner behind ``repro check``.

Sweeps seeded random instances through the production decision paths and
their reference oracles, checks the metamorphic properties, and replays
mini-scenarios through every registered scheduler in both view modes.
Divergences come back as :class:`Divergence` records carrying the first
observed disagreement and — for instance-based checks — a minimized,
runnable repro script, so a red run is immediately actionable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.allocation import allocate_two_phase
from repro.core.mckp import solution_cost, solve_mckp, solve_mckp_bruteforce
from repro.core.reclaim import (
    CostModel,
    ReclaimPlan,
    initial_greedy_costs,
    plan_reclaim_lyra,
    plan_reclaim_optimal,
    preemption_cost_index,
)
from repro.oracle.instances import (
    gen_allocation_instance,
    gen_mckp_instance,
    gen_reclaim_instance,
    minimize,
)
from repro.oracle.metamorphic import (
    check_capacity_monotonic,
    check_dry_run_pricing,
    check_mckp_permutation,
    check_permutation_invariance,
)
from repro.oracle.reference import (
    allocate_reference,
    plan_reclaim_bruteforce,
    replay_flex_leftover,
)

#: Distinct seeds per sweep index — a large prime stride keeps the
#: per-check instance streams disjoint across base seeds.
_SEED_STRIDE = 1_000_003

#: Replay scenarios stay tiny so sweeping every scheme in both view
#: modes finishes in seconds; the equivalence suite covers scale.
_REPLAY_JOBS = 36
_REPLAY_DAYS = 0.25

#: Captured MCKP instances are only re-solved by brute force when the
#: product of per-group option counts stays enumerable.
_MCKP_RECHECK_LIMIT = 5_000
_MCKP_CAPTURE_CAP = 16

_METAMORPHIC_SCRIPT = (
    "# repro — run from the repo root with PYTHONPATH=src\n"
    "from repro.oracle.conformance import metamorphic_divergence\n"
    "print(metamorphic_divergence({seed}) or 'no divergence')\n"
)

_PRICING_SCRIPT = (
    "# repro — run from the repo root with PYTHONPATH=src\n"
    "from repro.oracle.metamorphic import check_dry_run_pricing\n"
    "print(check_dry_run_pricing({seed}) or 'no divergence')\n"
)

_REPLAY_SCRIPT = (
    "# repro — run from the repo root with PYTHONPATH=src\n"
    "from repro.oracle.conformance import replay_divergence\n"
    "print(replay_divergence({scheme!r}, {seed}) or 'no divergence')\n"
)

_RECOVERY_SCRIPT = (
    "# repro — run from the repo root with PYTHONPATH=src\n"
    "from repro.oracle.conformance import recovery_divergence\n"
    "print(recovery_divergence({scheme!r}, {seed}) or 'no divergence')\n"
)


@dataclass
class Divergence:
    """One observed disagreement between production and an oracle."""

    check: str
    detail: str
    scheme: Optional[str] = None
    seed: Optional[int] = None
    repro: Optional[str] = None

    def render(self) -> str:
        where = f" scheme={self.scheme}" if self.scheme else ""
        where += f" seed={self.seed}" if self.seed is not None else ""
        lines = [f"[{self.check}{where}] {self.detail}"]
        if self.repro:
            lines.append("--- minimized repro ---")
            lines.append(self.repro.rstrip("\n"))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "detail": self.detail,
            "scheme": self.scheme,
            "seed": self.seed,
            "repro": self.repro,
        }


@dataclass
class ConformanceReport:
    """Outcome of one :func:`run_check` sweep."""

    checks: Dict[str, int] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        ran = "   ".join(
            f"{name} {count}" for name, count in sorted(self.checks.items())
        )
        lines = [f"checks run: {ran or 'none'}"]
        if self.ok:
            lines.append("no divergence: production agrees with the oracles")
        else:
            lines.append(f"{len(self.divergences)} divergence(s):")
            for div in self.divergences:
                lines.append(div.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checks": dict(self.checks),
            "divergences": [d.to_dict() for d in self.divergences],
        }


# ----------------------------------------------------------------------
# instance-level differential checks
# ----------------------------------------------------------------------
def _invalid_plan(plan: ReclaimPlan, jobs, label: str) -> Optional[str]:
    """A reclaim plan is valid iff every returned server is truly vacated."""
    for sid in plan.servers:
        for job_id, job in jobs.items():
            if sid in job.base_placement and job_id not in plan.preempted_jobs:
                return (
                    f"{label} plan returns {sid} while job {job_id}'s base "
                    f"workers still run there"
                )
    return None


def reclaim_divergence(instance) -> Optional[str]:
    """Diff production reclaim planners against the job-subset oracle.

    Certifies three things on one instance: the greedy never beats the
    true optimum (that would mean an invalid plan), the exhaustive
    server-subset search matches the exhaustive job-subset search
    exactly, and the cached preemption-cost index prices every candidate
    exactly as the greedy loop's first iteration does, for all three
    Table 1 cost models.
    """
    servers, jobs = instance.build()
    oracle = plan_reclaim_bruteforce(servers, jobs, instance.count)

    greedy = plan_reclaim_lyra(servers, jobs, instance.count)
    bad = _invalid_plan(greedy, jobs, "greedy")
    if bad:
        return bad
    if len(greedy.servers) < min(instance.count, len(servers)):
        return (
            f"greedy returned {len(greedy.servers)} server(s) for demand "
            f"{instance.count}"
        )
    if greedy.num_preemptions < oracle.num_preemptions:
        return (
            f"greedy claims {greedy.num_preemptions} preemption(s), below "
            f"the exhaustive optimum {oracle.num_preemptions} — one of the "
            f"two is mis-accounting"
        )

    optimal = plan_reclaim_optimal(servers, jobs, instance.count)
    bad = _invalid_plan(optimal, jobs, "optimal")
    if bad:
        return bad
    if optimal.num_preemptions != oracle.num_preemptions:
        return (
            f"plan_reclaim_optimal found {optimal.num_preemptions} "
            f"preemption(s) but the job-subset brute force proves "
            f"{oracle.num_preemptions} is optimal (its early size-bound "
            f"exit or cascade accounting is wrong)"
        )

    for model in CostModel:
        index = preemption_cost_index(servers, jobs, model)
        live = initial_greedy_costs(servers, jobs, model)
        for sid in index:
            if not math.isclose(
                index[sid], live[sid], rel_tol=1e-9, abs_tol=1e-9
            ):
                return (
                    f"cost-model drift under {model.value}: the cached "
                    f"index prices {sid} at {index[sid]!r} but the greedy "
                    f"loop's first iteration pays {live[sid]!r}"
                )
    return None


def mckp_divergence(instance) -> Optional[str]:
    """Diff the MCKP dynamic program against exhaustive enumeration."""
    groups, capacity = instance.build()
    dp_value, dp_choices = solve_mckp(groups, capacity)
    bf_value, _ = solve_mckp_bruteforce(groups, capacity)
    if not math.isclose(dp_value, bf_value, rel_tol=1e-9, abs_tol=1e-9):
        return (
            f"DP value {dp_value!r} != brute-force optimum {bf_value!r} "
            f"at capacity {capacity}"
        )
    value, weight = solution_cost(dp_choices)
    if weight > capacity:
        return (
            f"DP choices weigh {weight} over capacity {capacity} — the "
            f"reported solution is infeasible"
        )
    if not math.isclose(value, dp_value, rel_tol=1e-9, abs_tol=1e-9):
        return (
            f"DP reports value {dp_value!r} but its own choices sum to "
            f"{value!r}"
        )
    return None


def allocation_divergence(instance) -> Optional[str]:
    """Diff two-phase allocation against the first-principles reference.

    Admissions and their domains must match exactly (both sides admit
    shortest-job-first over the same fit rules); the MCKP values must
    agree (choices may differ at equal value, so they are not compared);
    and the production leftover pools must equal what re-charging
    production's *own* flexible grants through the plainly-stated
    fungibility rule yields — the check that catches any mis-accounting
    in ``allocation._deduct_flex``.
    """
    pending, running, pools = instance.build()
    prod = allocate_two_phase(pending, running, pools)
    # Fresh Job objects for the reference: production mutates nothing in
    # pure allocation, but independence keeps the diff trustworthy.
    ref_pending, ref_running, ref_pools = instance.build()
    ref = allocate_reference(ref_pending, ref_running, ref_pools)

    prod_sched = [(job.job_id, domain) for job, domain in prod.scheduled]
    if prod_sched != ref.scheduled:
        return (
            f"phase-one admissions differ: production {prod_sched} vs "
            f"reference {ref.scheduled}"
        )
    prod_skipped = [job.job_id for job in prod.skipped]
    if prod_skipped != ref.skipped:
        return (
            f"phase-one skips differ: production {prod_skipped} vs "
            f"reference {ref.skipped}"
        )
    if not math.isclose(
        prod.mckp_value, ref.mckp_value, rel_tol=1e-9, abs_tol=1e-9
    ):
        return (
            f"phase-two value differs: production MCKP realizes "
            f"{prod.mckp_value!r}, reference brute force {ref.mckp_value!r}"
        )

    flex_weight = 0
    by_id = {job.job_id: job for job in pending}
    by_id.update({job.job_id: job for job in running})
    for job_id, extra in prod.flex.items():
        flex_weight += extra * by_id[job_id].spec.gpus_per_worker
    if flex_weight > prod.mckp_capacity:
        return (
            f"flexible grants weigh {flex_weight} normalized GPUs over the "
            f"knapsack capacity {prod.mckp_capacity}"
        )

    # Re-derive the leftover implied by production's own flex decision.
    elastic_order = [job for job, _ in prod.scheduled if job.elastic]
    elastic_order.extend(running)
    expected = replay_flex_leftover(
        ref.phase1_leftover, elastic_order, prod.flex
    )
    got = prod.leftover
    if (got.training, got.onloan) != (expected.training, expected.onloan):
        return (
            f"leftover pools mis-accounted: production reports "
            f"training={got.training} onloan={got.onloan} but re-charging "
            f"its flexible grants through the fungibility rule leaves "
            f"training={expected.training} onloan={expected.onloan} "
            f"(non-fungible flex spill charged to the wrong pool?)"
        )
    return None


def metamorphic_divergence(seed: int) -> Optional[str]:
    """Run the structural metamorphic properties on seeded instances."""
    reclaim_inst = gen_reclaim_instance(seed)
    for name, check in (
        ("capacity-monotonic", check_capacity_monotonic),
        ("permutation-invariance",
         lambda inst: check_permutation_invariance(inst, seed=seed)),
    ):
        msg = check(reclaim_inst)
        if msg:
            return f"{name}: {msg} (instance: {reclaim_inst!r})"
    mckp_inst = gen_mckp_instance(seed)
    msg = check_mckp_permutation(mckp_inst, seed=seed)
    if msg:
        return f"mckp-permutation: {msg} (instance: {mckp_inst!r})"
    return None


# ----------------------------------------------------------------------
# scenario replays
# ----------------------------------------------------------------------
#: every scheduling-state backend `repro check` sweeps; "legacy" is the
#: reference implementation the other two must match byte-for-byte
VIEW_BACKENDS = ("legacy", "incremental", "array")


def build_replay_sim(
    scheme: str,
    seed: int,
    backend: str = "incremental",
    probe: Optional[Callable[[str, str, dict], None]] = None,
):
    """Wire (but do not run) the conformance mini-scenario."""
    from repro.scenarios import SCHEMES, build_sim, default_setup

    setup = default_setup(
        num_jobs=_REPLAY_JOBS,
        days=_REPLAY_DAYS,
        training_servers=3,
        inference_servers=5,
        seed=seed,
        target_load=2.5,
    )
    policy_kwargs = {}
    if SCHEMES[scheme]["policy"] == "pollux":
        policy_kwargs = dict(pollux_generations=6, pollux_population=6)
    sim = build_sim(
        setup,
        scheme,
        seed=seed,
        sim_overrides={
            "record_activities": True,
            "view_backend": backend,
        },
        **policy_kwargs,
    )
    if probe is not None:
        sim.policy.conformance_probe = probe
    return sim


def replay_scenario(
    scheme: str,
    seed: int,
    backend: str = "incremental",
    probe: Optional[Callable[[str, str, dict], None]] = None,
):
    """Run one mini-scenario to completion and return the Simulation.

    The workload is deliberately overloaded (queue pressure exercises
    both allocation phases) and, for loaning schemes, small enough that
    reclaim demand actually arrives.  ``probe`` is installed as the
    policy's ``conformance_probe`` before the run, so every
    ``emit_decision`` payload flows through it.
    """
    sim = build_replay_sim(scheme, seed, backend, probe)
    sim.run()
    return sim


def recovery_divergence(scheme: str, seed: int) -> Optional[str]:
    """Kill the mini-scenario mid-run and recover it from disk.

    The crash barrier cycles with the seed through the full taxonomy
    (between events, mid plan-commit, right after the WAL append), and
    the view backend alternates between incremental and array so the
    snapshot round-trip of both mirror layers stays covered.  The
    recovered-and-resumed run must reproduce the continuous run's
    Activity log byte-for-byte; a barrier that never occurs after the
    kill time simply degenerates into checking that a *checkpointed*
    run is byte-identical to a plain one — also part of the contract.
    """
    import shutil
    import tempfile

    from repro.faults.crash import (
        BARRIERS,
        CrashInjector,
        CrashPoint,
        SimulatedCrash,
    )
    from repro.recovery import RecoveryError, RecoveryManager

    backend = ("incremental", "array")[seed % 2]
    reference = replay_scenario(scheme, seed, backend=backend)
    horizon = reference.now
    barrier = BARRIERS[seed % len(BARRIERS)]
    workdir = tempfile.mkdtemp(prefix="repro-oracle-recovery-")
    try:
        sim = build_replay_sim(scheme, seed, backend=backend)
        manager = RecoveryManager(
            workdir,
            checkpoint_every=max(horizon / 7.0, 60.0),
            crash=CrashInjector([CrashPoint(horizon * 0.5, barrier)]),
        )
        manager.attach(sim)
        crashed = False
        try:
            sim.run()
        except SimulatedCrash:
            crashed = True
        if crashed:
            try:
                sim = RecoveryManager.recover(workdir)
            except RecoveryError as exc:
                return f"recovery after a {barrier} kill failed: {exc}"
            sim.resume()

        label = (f"recovered ({barrier})" if crashed
                 else "checkpointed (no kill fired)")
        if len(sim.activities) != len(reference.activities):
            return (
                f"{label} run recorded {len(sim.activities)} activities, "
                f"continuous run {len(reference.activities)}"
            )
        for i, (a, b) in enumerate(zip(sim.activities,
                                       reference.activities)):
            if a != b:
                return (
                    f"{label} run diverges at activity {i}: "
                    f"t={a.time!r} {a.kind.value} job={a.job_id!r} "
                    f"{a.detail!r} vs continuous t={b.time!r} "
                    f"{b.kind.value} job={b.job_id!r} {b.detail!r}"
                )
        try:
            sim.rm.verify_books()
        except Exception as exc:
            return f"{label} run ended with unbalanced books: {exc}"
        if sim.view is not None:
            try:
                sim.view.assert_consistent()
            except Exception as exc:
                return f"{label} view inconsistent after the run: {exc}"
        return None
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def replay_divergence(scheme: str, seed: int) -> Optional[str]:
    """Replay one scheme in every view backend and diff everything observable.

    The legacy full-scan run is the reference; the incremental and array
    backends must match it event-for-event.  The incremental-view run
    carries a conformance probe that captures the MCKP instances the
    scheduler actually solved; small ones are re-solved by brute force
    in situ.  Books must balance and each backend's view must be
    consistent; any divergence message names the backend that drifted.
    """
    captured: List[tuple] = []

    def probe(name: str, kind: str, payload: dict) -> None:
        if kind != "allocation" or len(captured) >= _MCKP_CAPTURE_CAP:
            return
        decision = payload.get("decision")
        if decision is not None and decision.mckp_groups is not None:
            captured.append(
                (decision.mckp_groups, decision.mckp_capacity,
                 decision.mckp_value)
            )

    legacy = replay_scenario(scheme, seed, backend="legacy")
    runs = [("legacy", legacy)]
    for backend in VIEW_BACKENDS:
        if backend == "legacy":
            continue
        sim = replay_scenario(
            scheme, seed, backend=backend,
            probe=probe if backend == "incremental" else None,
        )
        runs.append((backend, sim))
        if len(sim.activities) != len(legacy.activities):
            return (
                f"backend {backend!r} recorded "
                f"{len(sim.activities)} activities vs "
                f"{len(legacy.activities)} legacy"
            )
        for i, (a, b) in enumerate(zip(sim.activities, legacy.activities)):
            if a != b:
                return (
                    f"backend {backend!r} diverges from legacy at "
                    f"activity {i}: {backend} t={a.time!r} {a.kind.value} "
                    f"job={a.job_id!r} {a.detail!r} vs legacy t={b.time!r} "
                    f"{b.kind.value} job={b.job_id!r} {b.detail!r}"
                )

    for label, sim in runs:
        try:
            sim.rm.verify_books()
        except Exception as exc:
            return (
                f"backend {label!r} run ended with unbalanced books: {exc}"
            )
        if sim.executor.plans_rejected:
            return (
                f"backend {label!r} run rejected "
                f"{sim.executor.plans_rejected} decision plan(s)"
            )
        if sim.view is not None:
            try:
                sim.view.assert_consistent()
            except Exception as exc:
                return (
                    f"backend {label!r} view inconsistent after the "
                    f"run: {exc}"
                )

    for groups, capacity, reported in captured:
        size = 1
        for group in groups:
            size *= len(group) + 1
            if size > _MCKP_RECHECK_LIMIT:
                break
        if size > _MCKP_RECHECK_LIMIT:
            continue
        bf_value, _ = solve_mckp_bruteforce(groups, capacity)
        if not math.isclose(reported, bf_value, rel_tol=1e-9, abs_tol=1e-9):
            return (
                f"in-situ MCKP solve realized {reported!r} but brute force "
                f"proves {bf_value!r} optimal (capacity {capacity}, "
                f"{len(groups)} group(s))"
            )
    return None


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def _sweep(
    report: ConformanceReport,
    name: str,
    seeds: Sequence[int],
    generate,
    diverges,
    max_divergences: int,
    progress: Optional[Callable[[str], None]],
) -> None:
    """Run one instance-based check over a seed stream, minimizing hits."""
    for s in seeds:
        if len(report.divergences) >= max_divergences:
            return
        instance = generate(s)
        report.checks[name] = report.checks.get(name, 0) + 1
        detail = diverges(instance)
        if detail is None:
            continue
        small = minimize(instance, diverges)
        report.divergences.append(
            Divergence(
                check=name,
                detail=diverges(small) or detail,
                seed=s,
                repro=small.to_script(diverges.__name__),
            )
        )
        if progress:
            progress(f"{name}: divergence at seed {s}")


def run_check(
    policies: Optional[Sequence[str]] = None,
    seed: int = 0,
    n: int = 50,
    replay: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    max_divergences: int = 1,
) -> ConformanceReport:
    """Run the full conformance sweep; the engine behind ``repro check``.

    Args:
        policies: Scheme names to replay (default: every registered
            scheme).  Instance sweeps are scheme-independent and always
            run.
        seed: Base seed; instance seeds stride by a large prime so
            different bases explore disjoint streams.
        n: Instances per differential check.  Replay and pricing counts
            scale down from it (they cost a full mini-simulation each).
        replay: Set False to skip the scenario replays (fast mode).
        progress: Optional callback for per-stage progress lines.
        max_divergences: Stop after this many divergences (default: the
            first one, which is the actionable one).
    """
    from repro.scenarios import SCHEMES

    if policies is None:
        policies = sorted(SCHEMES)
    else:
        unknown = [p for p in policies if p not in SCHEMES]
        if unknown:
            raise ValueError(
                f"unknown scheme(s) {unknown}; use one of {sorted(SCHEMES)}"
            )
    report = ConformanceReport()
    seeds = [seed * _SEED_STRIDE + i for i in range(n)]

    if progress:
        progress(f"sweeping {n} instance(s) per differential check")
    _sweep(report, "reclaim", seeds, gen_reclaim_instance,
           reclaim_divergence, max_divergences, progress)
    _sweep(report, "mckp", seeds, gen_mckp_instance,
           mckp_divergence, max_divergences, progress)
    _sweep(report, "allocation", seeds, gen_allocation_instance,
           allocation_divergence, max_divergences, progress)

    for s in seeds:
        if len(report.divergences) >= max_divergences:
            break
        report.checks["metamorphic"] = report.checks.get("metamorphic", 0) + 1
        detail = metamorphic_divergence(s)
        if detail:
            report.divergences.append(
                Divergence(
                    check="metamorphic", detail=detail, seed=s,
                    repro=_METAMORPHIC_SCRIPT.format(seed=s),
                )
            )

    pricing_seeds = range(seed, seed + max(1, min(3, n // 20)))
    for s in pricing_seeds:
        if len(report.divergences) >= max_divergences:
            break
        report.checks["dry-run-pricing"] = (
            report.checks.get("dry-run-pricing", 0) + 1
        )
        detail = check_dry_run_pricing(s)
        if detail:
            report.divergences.append(
                Divergence(
                    check="dry-run-pricing", detail=detail, seed=s,
                    repro=_PRICING_SCRIPT.format(seed=s),
                )
            )

    if replay:
        replay_seeds = range(seed, seed + max(1, min(2, n // 40)))
        for scheme in policies:
            for s in replay_seeds:
                if len(report.divergences) >= max_divergences:
                    return report
                if progress:
                    progress(
                        f"replaying {scheme} seed {s} "
                        f"(backends: {', '.join(VIEW_BACKENDS)})"
                    )
                report.checks["replay"] = report.checks.get("replay", 0) + 1
                detail = replay_divergence(scheme, s)
                if detail:
                    report.divergences.append(
                        Divergence(
                            check="replay", detail=detail, scheme=scheme,
                            seed=s,
                            repro=_REPLAY_SCRIPT.format(scheme=scheme, seed=s),
                        )
                    )
        for scheme in policies:
            s = seed
            if len(report.divergences) >= max_divergences:
                return report
            if progress:
                progress(f"crash-recovering {scheme} seed {s}")
            report.checks["recovery"] = report.checks.get("recovery", 0) + 1
            detail = recovery_divergence(scheme, s)
            if detail:
                report.divergences.append(
                    Divergence(
                        check="recovery", detail=detail, scheme=scheme,
                        seed=s,
                        repro=_RECOVERY_SCRIPT.format(scheme=scheme, seed=s),
                    )
                )
    return report
