"""Correctness oracles: differential testing for the core decisions.

Lyra's three core decisions — greedy server reclaiming (§4), two-phase
SJF+MCKP allocation (§5.2) and best-fit-decreasing placement (§5.3) — are
heuristics over NP-hard problems, layered with caching, incremental views
and transactional plan application.  This package keeps them honest with
three kinds of machinery:

* :mod:`repro.oracle.reference` — slow, obviously-correct reference
  implementations (exhaustive search over job subsets, brute-force MCKP,
  a first-principles restatement of the two-phase pool rules) that the
  production paths are diffed against on randomized small instances;
* :mod:`repro.oracle.metamorphic` — properties that must hold across
  *related* inputs (more capacity never means more preemptions, permuting
  candidates never changes plan cost, dry-run pricing equals the
  committed plan's observed deltas);
* :mod:`repro.oracle.conformance` — the runner behind ``repro check``:
  seeded instance sweeps plus mini-scenario replays through every
  registered scheduler in both view modes, reporting the first
  divergence with a minimized, runnable repro script.
"""

from repro.oracle.conformance import (
    ConformanceReport,
    Divergence,
    allocation_divergence,
    mckp_divergence,
    metamorphic_divergence,
    reclaim_divergence,
    replay_divergence,
    replay_scenario,
    run_check,
)
from repro.oracle.instances import (
    AllocationInstance,
    MCKPInstance,
    ReclaimInstance,
    gen_allocation_instance,
    gen_mckp_instance,
    gen_reclaim_instance,
    minimize,
)
from repro.oracle.metamorphic import (
    check_capacity_monotonic,
    check_dry_run_pricing,
    check_mckp_permutation,
    check_permutation_invariance,
)
from repro.oracle.reference import (
    OracleReclaim,
    ReferenceAllocation,
    allocate_reference,
    deduct_flex_reference,
    plan_reclaim_bruteforce,
    replay_flex_leftover,
)

__all__ = [
    "AllocationInstance",
    "ConformanceReport",
    "Divergence",
    "MCKPInstance",
    "OracleReclaim",
    "ReclaimInstance",
    "ReferenceAllocation",
    "allocate_reference",
    "allocation_divergence",
    "check_capacity_monotonic",
    "check_dry_run_pricing",
    "check_mckp_permutation",
    "check_permutation_invariance",
    "deduct_flex_reference",
    "gen_allocation_instance",
    "gen_mckp_instance",
    "gen_reclaim_instance",
    "mckp_divergence",
    "metamorphic_divergence",
    "minimize",
    "plan_reclaim_bruteforce",
    "reclaim_divergence",
    "replay_divergence",
    "replay_flex_leftover",
    "replay_scenario",
    "run_check",
]
