"""Declarative fault plans: what chaos to inject, when, and how hard.

A :class:`FaultPlan` is a pure data description of every fault a
simulation run should suffer — it contains no runtime state and can be
round-tripped through JSON (and YAML when available), so chaos
experiments are reviewable artifacts rather than code.  The runtime
counterpart that executes a plan against a live simulation is
:class:`repro.faults.injector.FaultInjector`.

Fault families (each optional, all composable):

* **NodeFailureProcess** — a Poisson process of node crashes across the
  training whitelist, optionally *correlated* (each event takes down a
  block of co-located servers, modelling rack/PDU failures).
* **NodeOutage** — a deterministic crash of ``servers`` co-located
  machines at an exact simulated time.
* **Straggler** — ``servers`` machines run at ``factor`` of their normal
  throughput for ``duration`` seconds; the degradation propagates to
  affected jobs through the elastic throughput model.
* **FlashCrowd** — an inference traffic spike overlaid on the
  utilization trace, forcing a reclaim storm on the loaning loop.
* **PredictorOutage** / **PredictorBias** — the usage predictor stops
  answering (orchestrator degrades to a reactive safety margin) or
  answers with a systematic multiplicative error.
* **LaunchFailures** — each container launch transiently fails with
  probability ``probability``; the resource manager retries with
  exponential backoff per :class:`repro.faults.recovery.RetryPolicy`.

Everything stochastic derives from ``FaultPlan.seed``, so a seeded plan
replays bit-identically.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.faults.crash import CrashPoint, seeded_crash_schedule
from repro.faults.recovery import DegradedLoaning, RetryPolicy

HOUR = 3600.0


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


@dataclass(frozen=True)
class NodeFailureProcess:
    """Stochastic node crashes: exponential inter-arrival times.

    Attributes:
        mtbf: Mean time between failure *events* in seconds.
        repair_time: Seconds a failed node stays unhealthy.
        correlated: Servers taken down per event (1 = independent
            crashes; >1 models rack-level blast radius).
    """

    mtbf: float
    repair_time: float = HOUR
    correlated: int = 1

    def __post_init__(self) -> None:
        _require(self.mtbf > 0, f"mtbf must be positive, got {self.mtbf}")
        _require(self.repair_time >= 0,
                 f"repair_time must be >= 0, got {self.repair_time}")
        _require(self.correlated >= 1,
                 f"correlated must be >= 1, got {self.correlated}")


@dataclass(frozen=True)
class NodeOutage:
    """A deterministic outage of ``servers`` co-located machines.

    ``region`` restricts the blast radius to servers homed in one
    cluster/region (multi-cluster markets: a regional outage).  ``None``
    keeps the classic behavior — any co-located block of the training
    whitelist.
    """

    at: float
    servers: int = 1
    repair_time: float = HOUR
    region: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"at must be >= 0, got {self.at}")
        _require(self.servers >= 1, f"servers must be >= 1, got {self.servers}")
        _require(self.repair_time >= 0,
                 f"repair_time must be >= 0, got {self.repair_time}")
        _require(self.region is None or bool(self.region),
                 "region must be None or a non-empty cluster name")


@dataclass(frozen=True)
class Straggler:
    """``servers`` machines run at ``factor`` throughput for a while."""

    at: float
    duration: float
    factor: float = 0.5
    servers: int = 1

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"at must be >= 0, got {self.at}")
        _require(self.duration > 0,
                 f"duration must be positive, got {self.duration}")
        _require(0.0 < self.factor < 1.0,
                 f"factor must be in (0, 1), got {self.factor}")
        _require(self.servers >= 1, f"servers must be >= 1, got {self.servers}")


@dataclass(frozen=True)
class FlashCrowd:
    """An inference traffic spike: +``magnitude`` utilization for
    ``duration`` seconds starting at ``at`` (clipped to [0, 1])."""

    at: float
    duration: float
    magnitude: float = 0.25

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"at must be >= 0, got {self.at}")
        _require(self.duration > 0,
                 f"duration must be positive, got {self.duration}")
        _require(0.0 < self.magnitude <= 1.0,
                 f"magnitude must be in (0, 1], got {self.magnitude}")


@dataclass(frozen=True)
class PredictorOutage:
    """The usage predictor is unreachable during [at, at + duration)."""

    at: float
    duration: float

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"at must be >= 0, got {self.at}")
        _require(self.duration > 0,
                 f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class PredictorBias:
    """The predictor's answers are off by ``factor`` during the window."""

    at: float
    duration: float
    factor: float = 0.5

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"at must be >= 0, got {self.at}")
        _require(self.duration > 0,
                 f"duration must be positive, got {self.duration}")
        _require(self.factor > 0, f"factor must be positive, got {self.factor}")


@dataclass(frozen=True)
class LaunchFailures:
    """Transient container-launch failures.

    Attributes:
        probability: Chance one launch attempt fails transiently.
        until: Injection stops at this simulated time (None = forever).
    """

    probability: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        _require(0.0 < self.probability <= 1.0,
                 f"probability must be in (0, 1], got {self.probability}")
        _require(self.until is None or self.until > 0,
                 f"until must be positive or None, got {self.until}")


#: field name -> element type for the tuple-of-events plan fields.
_EVENT_FIELDS = {
    "outages": NodeOutage,
    "stragglers": Straggler,
    "flash_crowds": FlashCrowd,
    "predictor_outages": PredictorOutage,
    "predictor_biases": PredictorBias,
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded chaos specification for one run."""

    name: str = "custom"
    seed: int = 0
    process: Optional[NodeFailureProcess] = None
    outages: Tuple[NodeOutage, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    predictor_outages: Tuple[PredictorOutage, ...] = ()
    predictor_biases: Tuple[PredictorBias, ...] = ()
    launch_failures: Optional[LaunchFailures] = None
    crashes: Tuple[CrashPoint, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degraded: DegradedLoaning = field(default_factory=DegradedLoaning)

    def __post_init__(self) -> None:
        for fname in _EVENT_FIELDS:
            value = getattr(self, fname)
            if not isinstance(value, tuple):
                object.__setattr__(self, fname, tuple(value))
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))

    def is_empty(self) -> bool:
        """True when the plan injects nothing *into the simulation*.

        ``crashes`` deliberately do not count: process kills are executed
        by the recovery harness around the simulator, not by the in-sim
        :class:`~repro.faults.injector.FaultInjector`, so a crash-only
        plan must not disable the injector-free fast paths.
        """
        return (
            self.process is None
            and self.launch_failures is None
            and not any(getattr(self, f) for f in _EVENT_FIELDS)
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "seed": self.seed}
        if self.process is not None:
            out["process"] = dataclasses.asdict(self.process)
        for fname in _EVENT_FIELDS:
            events = getattr(self, fname)
            if events:
                out[fname] = [dataclasses.asdict(e) for e in events]
        if self.launch_failures is not None:
            out["launch_failures"] = dataclasses.asdict(self.launch_failures)
        if self.crashes:
            out["crashes"] = [c.to_dict() for c in self.crashes]
        out["retry"] = dataclasses.asdict(self.retry)
        out["degraded"] = dataclasses.asdict(self.degraded)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a mapping, got {type(data)}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys {sorted(unknown)}; known: "
                f"{sorted(known)}"
            )
        kwargs: Dict[str, Any] = {
            "name": data.get("name", "custom"),
            "seed": int(data.get("seed", 0)),
        }
        if data.get("process") is not None:
            kwargs["process"] = NodeFailureProcess(**data["process"])
        for fname, etype in _EVENT_FIELDS.items():
            if data.get(fname):
                kwargs[fname] = tuple(etype(**e) for e in data[fname])
        if data.get("launch_failures") is not None:
            kwargs["launch_failures"] = LaunchFailures(**data["launch_failures"])
        if data.get("crashes"):
            kwargs["crashes"] = tuple(
                CrashPoint.from_dict(c) for c in data["crashes"]
            )
        if data.get("retry") is not None:
            kwargs["retry"] = RetryPolicy(**data["retry"])
        if data.get("degraded") is not None:
            kwargs["degraded"] = DegradedLoaning(**data["degraded"])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON or YAML file (extension-sniffed)."""
        with open(path) as fh:
            text = fh.read()
        if path.endswith((".yaml", ".yml")):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env-dependent
                raise RuntimeError(
                    f"cannot load {path}: PyYAML is not installed; "
                    f"use a JSON plan instead"
                ) from exc
            data = yaml.safe_load(text)
        else:
            data = json.loads(text)
        return cls.from_dict(data)

    @classmethod
    def from_legacy(
        cls, mtbf: float, repair_time: float = HOUR, seed: int = 0
    ) -> "FaultPlan":
        """The pre-plan ``node_mtbf`` knobs as a one-process plan."""
        return cls(
            name="legacy-mtbf",
            seed=seed,
            process=NodeFailureProcess(mtbf=mtbf, repair_time=repair_time),
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        updates: Dict[str, Any] = {"seed": seed}
        # a seed-derived kill schedule follows the new seed; an explicit
        # hand-written schedule is data and stays put
        if self.crashes and self.crashes == seeded_crash_schedule(
            self.seed, count=len(self.crashes)
        ):
            updates["crashes"] = seeded_crash_schedule(
                seed, count=len(self.crashes)
            )
        return dataclasses.replace(self, **updates)


# ----------------------------------------------------------------------
# builtin plans (the `repro chaos --plan <name>` registry)
# ----------------------------------------------------------------------
def _builtin_plans() -> Dict[str, FaultPlan]:
    return {
        # nothing injected: the zero-cost control plan
        "none": FaultPlan(name="none"),
        # routine uncorrelated node churn
        "node-churn": FaultPlan(
            name="node-churn",
            process=NodeFailureProcess(mtbf=6 * HOUR, repair_time=HOUR),
        ),
        # a rack dies mid-trace on top of mild churn
        "rack-outage": FaultPlan(
            name="rack-outage",
            process=NodeFailureProcess(mtbf=12 * HOUR, repair_time=HOUR),
            outages=(NodeOutage(at=6 * HOUR, servers=3, repair_time=2 * HOUR),),
        ),
        # a whole region browns out (multi-cluster markets: servers homed
        # in one member cluster fail together, wherever they are loaned)
        "regional-outage": FaultPlan(
            name="regional-outage",
            outages=(
                NodeOutage(at=4 * HOUR, servers=3, repair_time=2 * HOUR,
                           region="infer-r0"),
            ),
        ),
        # inference traffic spikes force reclaim storms
        "flash-crowd": FaultPlan(
            name="flash-crowd",
            flash_crowds=(
                FlashCrowd(at=4 * HOUR, duration=HOUR, magnitude=0.3),
                FlashCrowd(at=12 * HOUR, duration=2 * HOUR, magnitude=0.25),
            ),
        ),
        # slow servers drag elastic jobs down
        "stragglers": FaultPlan(
            name="stragglers",
            stragglers=(
                Straggler(at=2 * HOUR, duration=4 * HOUR, factor=0.4,
                          servers=2),
                Straggler(at=10 * HOUR, duration=2 * HOUR, factor=0.6,
                          servers=1),
            ),
        ),
        # the simulator process itself dies (and must recover): a seeded
        # kill schedule over the recovery-barrier taxonomy, executed by
        # the chaos harness via repro.recovery, with mild node churn so
        # recovery happens under real scheduling pressure
        "process-crash": FaultPlan(
            name="process-crash",
            process=NodeFailureProcess(mtbf=12 * HOUR, repair_time=HOUR),
            crashes=seeded_crash_schedule(seed=0, count=3),
        ),
        # everything at once: the full resilience gauntlet
        "chaos": FaultPlan(
            name="chaos",
            process=NodeFailureProcess(mtbf=4 * HOUR, repair_time=HOUR,
                                       correlated=2),
            outages=(NodeOutage(at=8 * HOUR, servers=2),),
            stragglers=(
                Straggler(at=3 * HOUR, duration=3 * HOUR, factor=0.5,
                          servers=2),
            ),
            flash_crowds=(
                FlashCrowd(at=5 * HOUR, duration=HOUR, magnitude=0.3),
            ),
            predictor_outages=(
                PredictorOutage(at=6 * HOUR, duration=3 * HOUR),
            ),
            launch_failures=LaunchFailures(probability=0.10),
        ),
    }


BUILTIN_PLANS: Dict[str, FaultPlan] = _builtin_plans()


def builtin_plan(name: str) -> FaultPlan:
    """Look up a builtin plan by name."""
    try:
        return BUILTIN_PLANS[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin fault plan {name!r}; known: "
            f"{sorted(BUILTIN_PLANS)}"
        ) from None


def resolve_plan(spec: str) -> FaultPlan:
    """Resolve a CLI ``--plan`` value: builtin name or file path."""
    if spec in BUILTIN_PLANS:
        return BUILTIN_PLANS[spec]
    if spec.endswith((".json", ".yaml", ".yml")):
        return FaultPlan.from_file(spec)
    raise ValueError(
        f"{spec!r} is neither a builtin plan ({sorted(BUILTIN_PLANS)}) nor "
        f"a .json/.yaml plan file"
    )
