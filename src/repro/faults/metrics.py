"""Resilience metrics: what a chaos run reports.

Raw throughput says how fast GPUs burned; *goodput* says how much of
that burn survived to completion.  This module aggregates the fault and
recovery instruments the simulator records into one JSON-friendly
snapshot:

* goodput fraction — useful GPU-hours over useful + wasted GPU-hours,
  where waste is progress destroyed by preemption (non-checkpointing
  restarts) plus checkpoint/restart overhead;
* lost GPU-hours by preemption cause (``reclaim`` vs ``node_failure``
  vs ``scheduler``);
* preemptions by cause;
* time-to-recover — queue delay between a preemption and the job's next
  start, and per-node downtime;
* launch-retry and degraded-loaning activity.

The snapshot is plain dicts of numbers: ``json.dumps(snapshot,
sort_keys=True)`` is byte-stable across identically-seeded runs, which
is exactly what the CI determinism guard compares.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.simulator.metrics import SimulationMetrics

HOUR = 3600.0


def _gauge_value(gauge) -> float:
    """A gauge's value with the unset (NaN) state mapped to 0 so the
    snapshot stays JSON-clean and byte-stable."""
    return 0.0 if math.isnan(gauge.value) else gauge.value


def _hist_summary(hist) -> Dict[str, float]:
    if not hist.count:
        return {"count": 0}
    return {
        "count": hist.count,
        "mean": hist.mean(),
        "p50": hist.percentile(50),
        "p95": hist.percentile(95),
        "sum": hist.sum,
    }


def resilience_snapshot(
    metrics: SimulationMetrics,
    plan: Optional[Any] = None,
) -> Dict[str, Any]:
    """Aggregate one finished run's resilience numbers.

    Args:
        metrics: The run's :class:`SimulationMetrics`.
        plan: The :class:`~repro.faults.plan.FaultPlan` that was
            injected, echoed into the snapshot for provenance.
    """
    registry = metrics.registry

    useful_hours = sum(
        j.spec.total_work for j in metrics.jobs if j.jct is not None
    ) / HOUR
    lost_by_cause = {
        labels.get("cause", "unknown"): hist.sum
        for labels, hist in registry.histogram_items(
            "resilience.lost_gpu_hours"
        )
        if hist.count
    }
    wasted_hours = sum(lost_by_cause.values())
    denominator = useful_hours + wasted_hours
    goodput_fraction = useful_hours / denominator if denominator else 1.0

    preemptions_by_cause = {
        labels.get("cause", "unknown"): counter.value
        for labels, counter in registry.counter_items(
            "sim.preemptions_by_cause"
        )
    }
    audits = sum(
        counter.value
        for _, counter in registry.counter_items("resilience.audits")
    )
    noops = sum(
        counter.value
        for _, counter in registry.counter_items(
            "resilience.node_failure_noop"
        )
    )

    jct = metrics.jct_summary()
    snapshot: Dict[str, Any] = {
        "goodput": {
            "useful_gpu_hours": round(useful_hours, 6),
            "wasted_gpu_hours": round(wasted_hours, 6),
            "goodput_fraction": round(goodput_fraction, 6),
        },
        "lost_gpu_hours_by_cause": {
            cause: round(hours, 6) for cause, hours in lost_by_cause.items()
        },
        "preemptions_by_cause": preemptions_by_cause,
        "preemptions": metrics.preemptions,
        "node_failures": metrics.node_failures,
        "node_failure_noops": noops,
        "time_to_restart_s": _hist_summary(
            registry.histogram("resilience.time_to_restart_s")
        ),
        "node_downtime_s": _hist_summary(
            registry.histogram("resilience.node_downtime_s")
        ),
        "launch": {
            "retries": registry.counter("resilience.launch_retries").value,
            "failures": registry.counter("resilience.launch_failures").value,
            "backoff_s": _hist_summary(
                registry.histogram("resilience.launch_backoff_s")
            ),
        },
        "degraded_ticks": registry.counter("resilience.degraded_ticks").value,
        "recovery": {
            "checkpoints": registry.counter("recovery.checkpoints").value,
            "recoveries": registry.counter("recovery.recoveries").value,
            "wal_entries_replayed": registry.counter(
                "recovery.wal_entries_replayed"
            ).value,
            "snapshot_bytes": _gauge_value(
                registry.gauge("recovery.snapshot_bytes")
            ),
            # wall-clock, so only its count is seed-stable; the guard
            # compares crash-free runs where this is {"count": 0}
            "time_to_recover_s": _hist_summary(
                registry.histogram("recovery.time_to_recover_s")
            ),
        },
        "audits": audits,
        "jct": {
            "mean": jct.mean,
            "median": jct.median,
            "p95": jct.p95,
            "count": jct.count,
        },
        "completed": metrics.completion_ratio(),
    }
    if plan is not None:
        snapshot["plan"] = plan.to_dict()
    return snapshot
