"""Composable fault injection and resilience for the Lyra simulator.

The package splits chaos into three layers:

* :mod:`repro.faults.plan` — declarative, seeded :class:`FaultPlan`
  specs (Python, YAML or JSON) describing *what* to inject;
* :mod:`repro.faults.injector` — the runtime that schedules a plan's
  events into a live simulation, paired with the recovery policies in
  :mod:`repro.faults.recovery` and the continuous invariant audit in
  :mod:`repro.faults.audit`;
* :mod:`repro.faults.metrics` — the resilience snapshot (goodput, lost
  GPU-hours by cause, time-to-recover) a chaos run reports.

Fault-free simulations never import this package: ``Simulation.run``
loads it lazily, only when a non-empty plan (or the legacy
``node_mtbf`` knob) is configured.
"""

from repro.faults.audit import (
    InvariantViolation,
    audit_simulation,
    verify_scheduler_invariants,
)
from repro.faults.injector import FaultInjector
from repro.faults.metrics import resilience_snapshot
from repro.faults.plan import (
    BUILTIN_PLANS,
    FaultPlan,
    FlashCrowd,
    LaunchFailures,
    NodeFailureProcess,
    NodeOutage,
    PredictorBias,
    PredictorOutage,
    Straggler,
    builtin_plan,
    resolve_plan,
)
from repro.faults.recovery import DegradedLoaning, RetryPolicy

__all__ = [
    "BUILTIN_PLANS",
    "DegradedLoaning",
    "FaultInjector",
    "FaultPlan",
    "FlashCrowd",
    "InvariantViolation",
    "LaunchFailures",
    "NodeFailureProcess",
    "NodeOutage",
    "PredictorBias",
    "PredictorOutage",
    "RetryPolicy",
    "Straggler",
    "audit_simulation",
    "builtin_plan",
    "resilience_snapshot",
    "resolve_plan",
    "verify_scheduler_invariants",
]
