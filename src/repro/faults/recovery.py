"""Recovery policies: how the system responds when faults land.

Injection without recovery is just destruction; this module holds the
*policy* half of the resilience story:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter
  and a cap, used by the resource manager when container launches fail
  transiently (`repro.faults.plan.LaunchFailures`).
* :class:`DegradedLoaning` — the reactive safety margin the capacity
  orchestrator falls back to while the usage predictor is down: instead
  of trusting a forecast, loan only what is idle *right now* minus a
  conservative headroom.

Both are pure data + arithmetic so they can live in a fault plan and
round-trip through JSON.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient launch failures.

    Attempt *i* (0-based) sleeps ``min(base_delay * factor**i, max_delay)``
    scaled by a jitter draw in ``[1 - jitter, 1 + jitter]``; after
    ``max_attempts`` total attempts the failure becomes permanent for
    this placement (the caller moves on to another server).
    """

    max_attempts: int = 4
    base_delay: float = 5.0
    factor: float = 2.0
    max_delay: float = 120.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.factor ** attempt, self.max_delay)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def schedule(self, rng: random.Random) -> List[float]:
        """All backoff delays for one exhausted retry sequence."""
        return [self.delay(i, rng) for i in range(self.max_attempts - 1)]


@dataclass(frozen=True)
class DegradedLoaning:
    """Reactive loaning posture while the predictor is unavailable.

    ``headroom`` is the extra fraction of inference capacity held back
    on top of the orchestrator's normal margin — without a forecast we
    cannot see a spike coming, so we keep more slack.  ``freeze_loans``
    additionally stops *new* loans entirely and only reclaims, the most
    conservative stance.
    """

    headroom: float = 0.15
    freeze_loans: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.headroom <= 1.0:
            raise ValueError(
                f"headroom must be in [0, 1], got {self.headroom}")
