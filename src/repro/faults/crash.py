"""Process-crash injection: kill a run at a chosen recovery barrier.

The other fault families perturb the *simulated* cluster; this one kills
the simulator itself.  A :class:`CrashInjector` is armed with a schedule
of :class:`CrashPoint`\\ s and wired into the two places a real process
dies in interesting ways:

* the checkpointed run loop, *between* engine events
  (``between_events``);
* the plan-commit path, either right after the WAL append made the plan
  durable but before anything else happened (``post_wal``) or after the
  first action of a plan has already mutated state (``mid_epoch``).

Firing raises :class:`SimulatedCrash` — a ``BaseException`` so no
library code accidentally swallows it.  In-process harnesses (tests,
``repro chaos``) catch it, discard the dead simulation, and recover from
the checkpoint directory; the CLI lets it terminate the process so CI
can kill and recover across real process boundaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: The recovery-barrier taxonomy, in increasing order of nastiness.
BARRIER_BETWEEN_EVENTS = "between_events"
BARRIER_MID_EPOCH = "mid_epoch"
BARRIER_POST_WAL = "post_wal"
BARRIERS = (BARRIER_BETWEEN_EVENTS, BARRIER_MID_EPOCH, BARRIER_POST_WAL)


class SimulatedCrash(BaseException):
    """The injected process death.

    Deliberately not an :class:`Exception`: nothing between the kill
    point and the harness should be able to catch and survive it, just
    as nothing survives ``SIGKILL``.
    """

    def __init__(self, barrier: str, at: float):
        super().__init__(f"simulated crash at t={at:.0f} ({barrier})")
        self.barrier = barrier
        self.at = at


@dataclass(frozen=True)
class CrashPoint:
    """Kill the process at the first ``barrier`` occurrence at/after
    simulated time ``at``."""

    at: float
    barrier: str = BARRIER_BETWEEN_EVENTS

    def __post_init__(self) -> None:
        if self.barrier not in BARRIERS:
            raise ValueError(
                f"unknown crash barrier {self.barrier!r}; use {BARRIERS}"
            )
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")

    def to_dict(self) -> dict:
        return {"at": self.at, "barrier": self.barrier}

    @classmethod
    def from_dict(cls, record: dict) -> "CrashPoint":
        return cls(
            at=float(record["at"]),
            barrier=str(record.get("barrier", BARRIER_BETWEEN_EVENTS)),
        )


def seeded_crash_schedule(
    seed: int,
    count: int = 3,
    horizon: float = 86400.0,
    barriers: Sequence[str] = BARRIERS,
) -> Tuple[CrashPoint, ...]:
    """A reproducible randomized kill schedule (the ``process-crash``
    chaos family): ``count`` kill points with times uniform over the
    horizon and barriers cycled through the requested classes by a
    dedicated seeded stream."""
    rng = random.Random(f"{seed}:crash")
    points = [
        CrashPoint(
            at=round(rng.uniform(0.0, horizon), 3),
            barrier=rng.choice(tuple(barriers)),
        )
        for _ in range(count)
    ]
    points.sort(key=lambda p: (p.at, p.barrier))
    return tuple(points)


class CrashInjector:
    """Arms a crash schedule against a running simulation.

    One injector serves one *process lifetime*: each firing consumes its
    crash point, so after recovery the harness re-arms a fresh injector
    with the surviving suffix of the schedule (a real crashed process
    does not remember which kill it already performed — the schedule
    does, via :meth:`remaining`).
    """

    def __init__(self, schedule: Sequence[CrashPoint]):
        self._schedule: List[CrashPoint] = sorted(
            schedule, key=lambda p: (p.at, p.barrier)
        )
        self.fired: List[CrashPoint] = []

    def remaining(self) -> Tuple[CrashPoint, ...]:
        """Crash points not yet fired (the re-arm schedule)."""
        return tuple(self._schedule)

    def maybe_fire(self, barrier: str, now: float) -> None:
        """Raise :class:`SimulatedCrash` if a kill is due at this barrier."""
        for i, point in enumerate(self._schedule):
            if point.barrier == barrier and now >= point.at:
                del self._schedule[i]
                self.fired.append(point)
                raise SimulatedCrash(barrier, now)
            if point.at > now:
                break
