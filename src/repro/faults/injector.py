"""Executes a :class:`~repro.faults.plan.FaultPlan` against a simulation.

The injector is installed by :meth:`Simulation.run` right before the
event loop starts — and only when the plan actually injects something,
so fault-free runs never touch this module.  Everything stochastic draws
from sub-RNGs derived from the plan seed (one stream per fault family),
which keeps a seeded chaos run bit-reproducible and keeps fault draws
from perturbing each other.

After every fault event the injector runs a full invariant audit
(:mod:`repro.faults.audit`): ledger bugs should be caught at the event
that introduced them.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.faults.audit import audit_simulation
from repro.faults.plan import FaultPlan, Straggler
from repro.obs.provenance import TRIGGER_FAULT
from repro.rm.manager import TransientLaunchError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


def _window(at: float, duration: float) -> Tuple[float, float]:
    return (at, at + duration)


def _in_any(now: float, windows: List[Tuple[float, float]]) -> bool:
    return any(a <= now < b for a, b in windows)


class FaultInjector:
    """Schedules a plan's fault events into a simulation's engine."""

    def __init__(self, plan: FaultPlan, sim: "Simulation"):
        self.plan = plan
        self.sim = sim
        # one RNG stream per fault family: adding faults of one kind
        # never perturbs the draws of another
        self._rng_process = random.Random(f"{plan.seed}:process")
        self._rng_target = random.Random(f"{plan.seed}:target")
        self._rng_launch = random.Random(f"{plan.seed}:launch")
        self.audits = 0
        #: the unwrapped predictor, kept so snapshot restore can re-wrap
        #: it instead of pickling the bias closure
        self._predictor_orig = None

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Wire every fault family of the plan into the simulation."""
        sim, plan = self.sim, self.plan
        if plan.flash_crowds and sim.inference_trace is not None:
            # pure overlay: the orchestrator and usage sampler read the
            # spiked trace for the whole run
            sim.inference_trace = sim.inference_trace.with_spikes(
                [(f.at, f.duration, f.magnitude) for f in plan.flash_crowds]
            )
            for i, crowd in enumerate(plan.flash_crowds):
                sim.engine.schedule(
                    crowd.at,
                    lambda c=crowd: self._flash_crowd_marker(c),
                    tag=("fault", "flash", i),
                )
        if plan.process is not None:
            self._arm_process()
        for i, outage in enumerate(plan.outages):
            sim.engine.schedule(
                outage.at, lambda o=outage: self._outage(o),
                tag=("fault", "outage", i),
            )
        for i, straggler in enumerate(plan.stragglers):
            sim.engine.schedule(
                straggler.at, lambda s=straggler: self._straggler_start(s),
                tag=("fault", "straggler", i),
            )
        if plan.predictor_outages or plan.predictor_biases:
            self._install_predictor_faults()
        if plan.launch_failures is not None:
            self._install_launch_gate()

    # ------------------------------------------------------------------
    # snapshot support (repro.recovery)
    # ------------------------------------------------------------------
    def resolve_tag(self, tag):
        """Rebuild the callback for one of this injector's event tags.

        The per-family RNGs (and everything else the callbacks read) are
        restored as part of the simulation state, so a resolved callback
        continues exactly where the snapshotted one would have.
        """
        family = tag[1]
        if family == "flash":
            crowd = self.plan.flash_crowds[tag[2]]
            return lambda c=crowd: self._flash_crowd_marker(c)
        if family == "outage":
            outage = self.plan.outages[tag[2]]
            return lambda o=outage: self._outage(o)
        if family == "straggler":
            straggler = self.plan.stragglers[tag[2]]
            return lambda s=straggler: self._straggler_start(s)
        if family == "straggler_end":
            block = list(tag[2])
            return lambda b=block: self._straggler_end(b)
        if family == "process":
            return self._process_fire
        raise ValueError(f"unknown fault event tag {tag!r}")

    def strip_for_snapshot(self) -> None:
        """Detach the closure-based hooks pickle cannot serialize.

        The inverse of :meth:`rewire`: called with the simulation
        otherwise quiescent, it removes the launch gate and predictor
        wrappers (keeping the unwrapped predictor so rewiring does not
        double-wrap).  RNG streams and scheduled events stay — they are
        serialized with the rest of the state.
        """
        self.sim.rm.launch_gate = None
        orchestrator = self.sim.orchestrator
        if orchestrator is not None:
            orchestrator.predictor_down = None
            if self._predictor_orig is not None:
                orchestrator.predictor = self._predictor_orig

    def rewire(self) -> None:
        """Re-install the closure hooks after a snapshot or a restore.

        Only the unserializable wiring is redone; nothing is scheduled
        and no RNG is re-seeded, so a restored run draws the exact
        stream suffix the uninterrupted run would have.
        """
        if self.plan.predictor_outages or self.plan.predictor_biases:
            self._install_predictor_faults()
        if self.plan.launch_failures is not None:
            self._install_launch_gate()

    # ------------------------------------------------------------------
    # node failures
    # ------------------------------------------------------------------
    def _healthy_server_ids(self, region: Optional[str] = None) -> List[str]:
        if region is None:
            return [
                s.server_id
                for s in self.sim.cluster.servers
                if self.sim.rm.is_healthy(s.server_id)
            ]
        # Regional blast radius: every server *homed* in the region,
        # wherever its whitelist entry currently lives — a loaned server
        # still burns down with its home region's power feed.  Scan the
        # training whitelist first, then the inference side, so block
        # adjacency stays whitelist-ordered.
        ids = []
        for cluster in (self.sim.cluster, self.sim.pair.inference):
            for s in cluster.servers:
                if s.home_cluster != region:
                    continue
                if not self.sim.rm.is_healthy(s.server_id):
                    continue
                if s.server_id not in ids:
                    ids.append(s.server_id)
        return ids

    def _choose_block(self, k: int, region: Optional[str] = None) -> List[str]:
        """A contiguous block of ``k`` healthy servers in whitelist order.

        Whitelist order is insertion order, so adjacency approximates
        rack co-location; correlated failures take down neighbours.
        """
        healthy = self._healthy_server_ids(region)
        if not healthy:
            return []
        if len(healthy) <= k:
            return healthy
        anchor = self._rng_target.randrange(len(healthy))
        start = min(anchor, len(healthy) - k)
        return healthy[start:start + k]

    def _fail_block(
        self, count: int, repair_time: float, kind: str,
        region: Optional[str] = None,
    ) -> None:
        block = self._choose_block(count, region=region)
        if not block:
            # nothing healthy left to kill (or the region names no
            # servers in this topology): recorded, never silent
            self.sim.record_failure_noop("no_healthy_servers")
        for server_id in block:
            self.sim.apply_node_failure(server_id, repair_time)
        self._audit(kind)

    def _process_fire(self) -> None:
        process = self.plan.process
        self._fail_block(process.correlated, process.repair_time, "process")
        self._arm_process()

    def _arm_process(self) -> None:
        sim = self.sim
        if sim.drained:
            return
        delay = self._rng_process.expovariate(1.0 / self.plan.process.mtbf)
        sim.engine.schedule_after(
            delay, self._process_fire, tag=("fault", "process")
        )

    def _outage(self, outage) -> None:
        region = getattr(outage, "region", None)
        extra = {"region": region} if region is not None else {}
        self.sim.trace(
            "fault.outage", servers=outage.servers,
            repair_time=outage.repair_time, **extra,
        )
        # provenance: tag the next epoch with the fault-plan cause
        self.sim.note_trigger(
            TRIGGER_FAULT, fault="outage", servers=outage.servers, **extra,
        )
        self._fail_block(
            outage.servers, outage.repair_time, "outage", region=region
        )

    # ------------------------------------------------------------------
    # stragglers
    # ------------------------------------------------------------------
    def _straggler_start(self, straggler: Straggler) -> None:
        block = self._choose_block(straggler.servers)
        if not block:
            self.sim.record_failure_noop("no_healthy_servers")
            return
        for server_id in block:
            self.sim.set_server_degradation(server_id, straggler.factor)
        self.sim.trace(
            "fault.straggler_start", servers=block, factor=straggler.factor,
            duration=straggler.duration,
        )
        self.sim.note_trigger(
            TRIGGER_FAULT, fault="straggler", servers=len(block),
            factor=straggler.factor,
        )
        self.sim.metrics.registry.counter("resilience.stragglers").inc(
            len(block)
        )
        self.sim.engine.schedule_after(
            straggler.duration, lambda: self._straggler_end(block),
            tag=("fault", "straggler_end", tuple(block)),
        )
        self._audit("straggler")

    def _straggler_end(self, block: List[str]) -> None:
        for server_id in block:
            self.sim.set_server_degradation(server_id, None)
        self.sim.trace("fault.straggler_end", servers=block)
        self._audit("straggler")

    # ------------------------------------------------------------------
    # flash crowds
    # ------------------------------------------------------------------
    def _flash_crowd_marker(self, crowd) -> None:
        """The overlay is baked into the trace; this event just marks the
        spike's onset in the event trace and audits the reclaim storm."""
        self.sim.trace(
            "fault.flash_crowd", magnitude=crowd.magnitude,
            duration=crowd.duration,
        )
        self.sim.note_trigger(
            TRIGGER_FAULT, fault="flash_crowd", magnitude=crowd.magnitude,
            duration=crowd.duration,
        )
        self.sim.metrics.registry.counter("resilience.flash_crowds").inc()

    # ------------------------------------------------------------------
    # predictor faults
    # ------------------------------------------------------------------
    def _install_predictor_faults(self) -> None:
        sim = self.sim
        orchestrator = sim.orchestrator
        if orchestrator is None:
            return
        outages = [
            _window(o.at, o.duration) for o in self.plan.predictor_outages
        ]
        if outages:
            orchestrator.predictor_down = (
                lambda now, _w=outages: _in_any(now, _w)
            )
            orchestrator.degraded_headroom = self.plan.degraded.headroom
            orchestrator.freeze_loans_when_degraded = (
                self.plan.degraded.freeze_loans
            )
        biases = [
            (b.at, b.at + b.duration, b.factor)
            for b in self.plan.predictor_biases
        ]
        if biases and orchestrator.predictor is not None:
            orig = orchestrator.predictor
            self._predictor_orig = orig

            def biased(history):
                value = float(orig(history))
                now = sim.now
                for start, end, factor in biases:
                    if start <= now < end:
                        sim.metrics.registry.counter(
                            "resilience.predictor_biased_ticks"
                        ).inc()
                        return value * factor
                return value

            orchestrator.predictor = biased

    # ------------------------------------------------------------------
    # transient launch failures
    # ------------------------------------------------------------------
    def _install_launch_gate(self) -> None:
        sim = self.sim
        failures = self.plan.launch_failures
        retry = self.plan.retry
        rng = self._rng_launch
        registry = sim.metrics.registry

        def gate(job, server, workers) -> None:
            if failures.until is not None and sim.now >= failures.until:
                return
            for attempt in range(retry.max_attempts):
                if rng.random() >= failures.probability:
                    if attempt:
                        backoff = sum(
                            retry.delay(i, rng) for i in range(attempt)
                        )
                        registry.counter("resilience.launch_retries").inc(
                            attempt
                        )
                        registry.histogram(
                            "resilience.launch_backoff_s"
                        ).observe(backoff)
                        sim.trace(
                            "recovery.launch_retried", job_id=job.job_id,
                            server_id=server.server_id,
                            attempts=attempt + 1,
                            backoff_s=round(backoff, 3),
                        )
                    return
            registry.counter("resilience.launch_failures").inc()
            sim.trace(
                "fault.launch_failed", job_id=job.job_id,
                server_id=server.server_id, attempts=retry.max_attempts,
            )
            raise TransientLaunchError(
                f"launch of job {job.job_id} on {server.server_id} failed "
                f"{retry.max_attempts} attempts"
            )

        sim.rm.launch_gate = gate

    # ------------------------------------------------------------------
    def _audit(self, cause: str) -> None:
        audit_simulation(self.sim, cause)
        self.audits += 1
