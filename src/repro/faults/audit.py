"""Continuous invariant audit run after every injected fault event.

Faults are exactly the moments bookkeeping bugs surface — a server dies
mid-reclaim, a straggler window closes on a job that was just scaled in.
:func:`audit_simulation` re-checks the resource-manager ledger
(:meth:`ResourceManager.verify_books`) plus scheduler-level invariants
after each fault lands, so a divergence is caught at the event that
caused it rather than thousands of simulated seconds later.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.job import JobStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


class InvariantViolation(RuntimeError):
    """A scheduler/ledger invariant failed during a fault audit."""


def verify_scheduler_invariants(sim: "Simulation") -> None:
    """Cross-check the simulation's job and whitelist state.

    Raises :class:`InvariantViolation` on the first inconsistency.
    """
    executor = getattr(sim, "executor", None)
    if executor is not None and executor.in_flight:
        raise InvariantViolation(
            "audit ran inside a PlanExecutor commit; plans must apply "
            "atomically between audits")
    if getattr(sim.rm, "journal", None) is not None:
        raise InvariantViolation(
            "audit ran with a plan transaction still open on the RM; "
            "policies must seal or abort before control returns")

    running_ids = set(sim.running)
    pending_ids = {job.job_id for job in sim.pending}
    overlap = running_ids & pending_ids
    if overlap:
        raise InvariantViolation(
            f"jobs both running and pending: {sorted(overlap)}")

    for job in sim.running.values():
        if job.status is not JobStatus.RUNNING:
            raise InvariantViolation(
                f"job {job.job_id} in running set with status "
                f"{job.status.value}")
        if job.total_workers < job.spec.min_workers:
            raise InvariantViolation(
                f"running job {job.job_id} holds {job.total_workers} "
                f"workers < base demand {job.spec.min_workers}")
        for server_id in job.servers:
            if server_id not in sim.pair.training:
                raise InvariantViolation(
                    f"running job {job.job_id} placed on {server_id!r}, "
                    f"which is not in the training whitelist")

    for job in sim.pending:
        if job.status is not JobStatus.PENDING:
            raise InvariantViolation(
                f"job {job.job_id} in queue with status {job.status.value}")
        if job.servers:
            raise InvariantViolation(
                f"pending job {job.job_id} still holds placement on "
                f"{sorted(job.servers)}")

    for server in sim.pair.training.servers:
        if server.used_gpus > server.num_gpus:
            raise InvariantViolation(
                f"server {server.server_id} oversubscribed: "
                f"{server.used_gpus}/{server.num_gpus}")
    for server in sim.pair.inference.servers:
        if server.on_loan:
            raise InvariantViolation(
                f"server {server.server_id} marked on-loan inside the "
                f"inference whitelist")
        if server.allocations:
            raise InvariantViolation(
                f"inference server {server.server_id} holds training "
                f"allocations {sorted(server.allocations)}")


def audit_simulation(sim: "Simulation", cause: str) -> None:
    """One full audit pass: RM books plus scheduler invariants.

    Records the pass in the ``resilience.audits`` counter (labelled by
    the fault family that triggered it) so chaos runs prove the audit
    actually executed.
    """
    sim.rm.verify_books()
    verify_scheduler_invariants(sim)
    sim.metrics.registry.counter("resilience.audits", cause=cause).inc()
