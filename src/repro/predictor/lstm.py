"""A from-scratch NumPy LSTM with Adam — the §6 usage predictor's engine.

The paper's inference-resource predictor is "an LSTM model with a window
size of 10 and two hidden layers", trained with Adam on an MSE loss.  No
deep-learning framework is available offline, so the LSTM (forward and
full backpropagation-through-time) and Adam are implemented directly on
NumPy arrays.  The network is deliberately small — stacked LSTM layers
plus a linear head emitting one scalar — which is all the 1-D utilization
series needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


class LSTMLayer:
    """One LSTM layer, batched over sequences.

    Weight layout: gates stacked as [input, forget, cell, output] along
    the first axis of ``W`` (input projection), ``U`` (recurrent
    projection) and ``b``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(max(1, input_dim + hidden_dim))
        self.hidden_dim = hidden_dim
        self.params: Dict[str, np.ndarray] = {
            "W": rng.normal(0.0, scale, (4 * hidden_dim, input_dim)),
            "U": rng.normal(0.0, scale, (4 * hidden_dim, hidden_dim)),
            "b": np.zeros(4 * hidden_dim),
        }
        # Standard trick: bias the forget gate open at initialization.
        self.params["b"][hidden_dim : 2 * hidden_dim] = 1.0
        self._cache: List[Tuple] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run a batch through time.

        Args:
            x: Input of shape (batch, time, input_dim).

        Returns:
            Hidden states of shape (batch, time, hidden_dim).
        """
        batch, steps, _ = x.shape
        H = self.hidden_dim
        W, U, b = self.params["W"], self.params["U"], self.params["b"]
        h = np.zeros((batch, H))
        c = np.zeros((batch, H))
        outputs = np.zeros((batch, steps, H))
        self._cache = []
        for t in range(steps):
            xt = x[:, t, :]
            z = xt @ W.T + h @ U.T + b
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            self._cache.append((xt, h, c, i, f, g, o, c_new, tanh_c))
            h, c = h_new, c_new
            outputs[:, t, :] = h
        return outputs

    def backward(self, dout: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """BPTT given upstream gradients on every hidden state.

        Args:
            dout: Gradient w.r.t. this layer's outputs,
                shape (batch, time, hidden_dim).

        Returns:
            (dx, grads): gradient w.r.t. the inputs and parameter grads.
        """
        batch, steps, H = dout.shape
        W, U = self.params["W"], self.params["U"]
        grads = {name: np.zeros_like(p) for name, p in self.params.items()}
        dx = np.zeros((batch, steps, W.shape[1]))
        dh_next = np.zeros((batch, H))
        dc_next = np.zeros((batch, H))
        for t in range(steps - 1, -1, -1):
            xt, h_prev, c_prev, i, f, g, o, c_new, tanh_c = self._cache[t]
            dh = dout[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1 - tanh_c**2) + dc_next
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dc_next = dc * f
            dz = np.concatenate(
                [
                    di * i * (1 - i),
                    df * f * (1 - f),
                    dg * (1 - g**2),
                    do * o * (1 - o),
                ],
                axis=1,
            )
            grads["W"] += dz.T @ xt
            grads["U"] += dz.T @ h_prev
            grads["b"] += dz.sum(axis=0)
            dx[:, t, :] = dz @ W
            dh_next = dz @ U
        return dx, grads


class Dense:
    """A linear head mapping the final hidden state to a scalar."""

    def __init__(self, input_dim: int, output_dim: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(max(1, input_dim))
        self.params = {
            "W": rng.normal(0.0, scale, (output_dim, input_dim)),
            "b": np.zeros(output_dim),
        }
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.params["W"].T + self.params["b"]

    def backward(self, dout: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        grads = {
            "W": dout.T @ self._x,
            "b": dout.sum(axis=0),
        }
        return dout @ self.params["W"], grads


class Adam:
    """The Adam optimizer over a list of parameter dicts."""

    def __init__(
        self,
        param_dicts: List[Dict[str, np.ndarray]],
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.param_dicts = param_dicts
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self.t = 0
        self._m = [
            {k: np.zeros_like(v) for k, v in d.items()} for d in param_dicts
        ]
        self._v = [
            {k: np.zeros_like(v) for k, v in d.items()} for d in param_dicts
        ]

    def step(self, grad_dicts: List[Dict[str, np.ndarray]]) -> None:
        self.t += 1
        bias1 = 1 - self.beta1**self.t
        bias2 = 1 - self.beta2**self.t
        for params, grads, m, v in zip(
            self.param_dicts, grad_dicts, self._m, self._v
        ):
            for key in params:
                g = grads[key]
                m[key] = self.beta1 * m[key] + (1 - self.beta1) * g
                v[key] = self.beta2 * v[key] + (1 - self.beta2) * g**2
                m_hat = m[key] / bias1
                v_hat = v[key] / bias2
                params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass
class LSTMRegressor:
    """Two stacked LSTM layers + linear head (the §6 architecture).

    Trains with Adam on MSE; inputs are (batch, window, 1) sequences,
    outputs (batch, 1) next-step predictions.
    """

    hidden_dim: int = 16
    lr: float = 1e-2
    seed: int = 0
    layers: List[LSTMLayer] = field(init=False)
    head: Dense = field(init=False)
    optimizer: Adam = field(init=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.layers = [
            LSTMLayer(1, self.hidden_dim, rng),
            LSTMLayer(self.hidden_dim, self.hidden_dim, rng),
        ]
        self.head = Dense(self.hidden_dim, 1, rng)
        self.optimizer = Adam(
            [layer.params for layer in self.layers] + [self.head.params],
            lr=self.lr,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return self.head.forward(out[:, -1, :])

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One Adam step on a batch; returns the MSE loss."""
        pred = self.forward(x)
        diff = pred - y
        loss = float(np.mean(diff**2))
        batch = x.shape[0]
        dpred = 2.0 * diff / (batch * y.shape[1])
        dlast, head_grads = self.head.backward(dpred)
        # Route the head gradient to the last timestep of the top layer.
        dout = np.zeros((batch, x.shape[1], self.hidden_dim))
        dout[:, -1, :] = dlast
        layer_grads: List[Dict[str, np.ndarray]] = []
        for layer in reversed(self.layers):
            dout, grads = layer.backward(dout)
            layer_grads.append(grads)
        layer_grads.reverse()
        self.optimizer.step(layer_grads + [head_grads])
        return loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        seed: int = 0,
        verbose: bool = False,
    ) -> List[float]:
        """Mini-batch training; returns the per-epoch mean loss."""
        rng = np.random.default_rng(seed)
        n = x.shape[0]
        history = []
        for epoch in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                losses.append(self.train_batch(x[idx], y[idx]))
            history.append(float(np.mean(losses)))
            if verbose:  # pragma: no cover - console output
                print(f"epoch {epoch + 1}: mse={history[-1]:.6f}")
        return history

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
