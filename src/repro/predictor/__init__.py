"""Inference resource-usage predictor (NumPy LSTM, §6)."""

from repro.predictor.lstm import Adam, Dense, LSTMLayer, LSTMRegressor
from repro.predictor.predictor import UsagePredictor, make_windows

__all__ = [
    "Adam",
    "Dense",
    "LSTMLayer",
    "LSTMRegressor",
    "UsagePredictor",
    "make_windows",
]
