"""Inference resource-usage predictor (§6).

Wraps the NumPy LSTM into the predictor Lyra's orchestrator consumes: it
trains on an inference utilization trace with a window of 10 samples and
predicts the resource usage of the next five-minute interval, letting the
orchestrator "initiate reclaiming decisions in advance before the
inference resource usage increases".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.predictor.lstm import LSTMRegressor
from repro.traces.inference import InferenceTrace


def make_windows(
    series: Sequence[float], window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice a 1-D series into (window -> next value) training pairs."""
    arr = np.asarray(series, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if len(arr) <= window:
        raise ValueError(
            f"series of length {len(arr)} too short for window {window}"
        )
    n = len(arr) - window
    x = np.zeros((n, window, 1))
    y = np.zeros((n, 1))
    for i in range(n):
        x[i, :, 0] = arr[i : i + window]
        y[i, 0] = arr[i + window]
    return x, y


class UsagePredictor:
    """LSTM predictor of the next-interval inference utilization."""

    def __init__(
        self,
        window: int = 10,
        hidden_dim: int = 16,
        lr: float = 1e-2,
        seed: int = 0,
    ):
        self.window = window
        self.model = LSTMRegressor(hidden_dim=hidden_dim, lr=lr, seed=seed)
        self.trained = False
        self.final_loss = float("nan")

    def fit_trace(
        self,
        trace: InferenceTrace,
        epochs: int = 20,
        batch_size: int = 64,
        max_samples: int = 4000,
    ) -> List[float]:
        """Train on a utilization trace; returns the loss history."""
        series = np.asarray(trace.utilization, dtype=float)
        if len(series) > max_samples:
            series = series[:max_samples]
        x, y = make_windows(series, self.window)
        history = self.model.fit(x, y, epochs=epochs, batch_size=batch_size)
        self.trained = True
        self.final_loss = history[-1]
        return history

    def predict_next(self, history: Sequence[float]) -> float:
        """Predict the next utilization sample from the recent window."""
        if not self.trained:
            raise RuntimeError("predictor must be fitted before predicting")
        arr = np.asarray(history, dtype=float)
        if len(arr) < self.window:
            raise ValueError(
                f"need at least {self.window} history samples, got {len(arr)}"
            )
        x = arr[-self.window :].reshape(1, self.window, 1)
        return float(np.clip(self.model.predict(x)[0, 0], 0.0, 1.0))

    def __call__(self, history: Sequence[float]) -> float:
        """Orchestrator-compatible callable form."""
        return self.predict_next(history)

    def evaluate(self, trace: InferenceTrace, start: int = 0) -> float:
        """Mean squared error over a trace segment (the §6 metric)."""
        series = np.asarray(trace.utilization, dtype=float)[start:]
        x, y = make_windows(series, self.window)
        pred = self.model.predict(x)
        return float(np.mean((pred - y) ** 2))
