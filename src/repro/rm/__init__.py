"""Resource-manager substrate: containers, whitelists, node failures."""

from repro.rm.containers import Container, ContainerState
from repro.rm.manager import AuditRecord, NodeFailureReport, ResourceManager

__all__ = [
    "AuditRecord",
    "Container",
    "ContainerState",
    "NodeFailureReport",
    "ResourceManager",
]
