"""Worker containers, as a YARN/Kubernetes-style resource manager sees
them.

Lyra's prototype executes its decisions through an existing resource
manager that launches and tears down *worker containers* (§3, §6).  One
container corresponds to one training worker; it pins a fixed number of
GPUs on exactly one server.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

#: Next container id to hand out.  A plain module-level int (not an
#: ``itertools.count``) so crash recovery can capture and restore it:
#: a restored run must mint the same ids the uninterrupted run would.
_next_container_id = 1


def _take_container_id() -> int:
    global _next_container_id
    cid = _next_container_id
    _next_container_id = cid + 1
    return cid


def container_id_state() -> int:
    """The next container id (snapshot support)."""
    return _next_container_id


def set_container_id_state(next_id: int) -> None:
    """Restore the id counter from a snapshot."""
    global _next_container_id
    _next_container_id = int(next_id)


class ContainerState(enum.Enum):
    """Lifecycle of a worker container."""

    RUNNING = "running"
    RELEASED = "released"  # orderly teardown (scale-in, completion)
    LOST = "lost"          # node failure took it down


@dataclass
class Container:
    """One worker container.

    Attributes:
        container_id: Unique id assigned by the resource manager.
        job_id: Owning training job.
        server_id: Host server (containers never span servers).
        gpus: Physical GPUs pinned on the host (includes the §5.2
            normalization surcharge on weaker hardware).
        flexible: True for elastic-surplus workers.
        start_time: Launch timestamp.
        end_time: Teardown timestamp, when no longer running.
        state: Current lifecycle state.
    """

    job_id: int
    server_id: str
    gpus: int
    flexible: bool = False
    start_time: float = 0.0
    end_time: Optional[float] = None
    state: ContainerState = ContainerState.RUNNING
    container_id: int = field(default_factory=_take_container_id)

    def __post_init__(self) -> None:
        if self.gpus < 1:
            raise ValueError(f"gpus must be >= 1, got {self.gpus}")

    @property
    def running(self) -> bool:
        return self.state is ContainerState.RUNNING

    def stop(self, now: float, lost: bool = False) -> None:
        """Tear the container down (idempotent)."""
        if not self.running:
            return
        self.state = ContainerState.LOST if lost else ContainerState.RELEASED
        self.end_time = now
