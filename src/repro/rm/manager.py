"""A YARN-style resource manager for the training cluster.

Lyra "runs on top of a cluster resource manager such as YARN and
Kubernetes to execute its decisions" (§3): launching and tearing down
worker containers, moving servers across cluster boundaries through the
whitelist API (§6), and monitoring server/worker status.  This module is
that execution layer:

* every worker the placement engine schedules becomes a tracked
  :class:`~repro.rm.containers.Container`;
* server GPU books are mutated only through container launch/stop, so
  the container ledger and the server ledger can never drift (asserted
  by :meth:`ResourceManager.verify_books`);
* node failures are first-class: :meth:`fail_node` marks a server
  unhealthy, declares its containers lost, and reports which jobs lost
  base workers (must be rescheduled) versus only flexible workers (a
  scale-in suffices) — the hook the simulator's failure injection uses;
* an audit log records every operation with its timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.cluster import ClusterPair
from repro.cluster.job import Job
from repro.cluster.server import Server
from repro.rm.containers import Container


class TransientLaunchError(RuntimeError):
    """A container launch failed transiently and exhausted its retries.

    Raised by the launch gate (fault injection) before any books are
    mutated; the placement engine reacts by trying the next candidate
    server, so the failure costs a placement opportunity, not ledger
    consistency.
    """


@dataclass(frozen=True)
class AuditRecord:
    """One resource-manager operation, for the audit trail."""

    time: float
    op: str
    detail: Tuple


@dataclass
class NodeFailureReport:
    """What a node failure cost.

    Attributes:
        server_id: The failed server.
        lost_containers: Containers declared lost.
        jobs_lost_base: Jobs that lost base workers — gang semantics
            mean the whole job must be rescheduled (§6).
        jobs_lost_flex: ``{job_id: workers}`` jobs that only lost
            flexible workers and can continue after a scale-in.
    """

    server_id: str
    lost_containers: List[Container] = field(default_factory=list)
    jobs_lost_base: Set[int] = field(default_factory=set)
    jobs_lost_flex: Dict[int, int] = field(default_factory=dict)


class ResourceManager:
    """Container lifecycle + whitelist execution over a cluster pair."""

    def __init__(self, pair: ClusterPair):
        self.pair = pair
        self._containers: Dict[int, Container] = {}
        self._by_job: Dict[int, List[int]] = {}
        self._by_server: Dict[str, List[int]] = {}
        self._unhealthy: Set[str] = set()
        self.audit: List[AuditRecord] = []
        #: fault-injection hook: called after validation but before any
        #: mutation on each launch; may raise :class:`TransientLaunchError`
        self.launch_gate: Optional[Callable[[Job, Server, int], None]] = None
        #: open plan transaction (:class:`repro.core.actions.PlanTransaction`)
        #: journaling container/book mutations for rollback; None outside
        #: an epoch being planned
        self.journal = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def container(self, container_id: int) -> Container:
        return self._containers[container_id]

    def containers_of(self, job_id: int, running_only: bool = True) -> List[Container]:
        out = [self._containers[c] for c in self._by_job.get(job_id, [])]
        if running_only:
            out = [c for c in out if c.running]
        return out

    def containers_on(self, server_id: str, running_only: bool = True) -> List[Container]:
        out = [self._containers[c] for c in self._by_server.get(server_id, [])]
        if running_only:
            out = [c for c in out if c.running]
        return out

    def running_containers(self) -> List[Container]:
        return [c for c in self._containers.values() if c.running]

    def is_healthy(self, server_id: str) -> bool:
        return server_id not in self._unhealthy

    def unhealthy_ids(self) -> Set[str]:
        """The unhealthy-server set (read-only; usually empty).

        The array view's candidate selection masks these out wholesale
        instead of calling :meth:`is_healthy` per server.
        """
        return self._unhealthy

    # ------------------------------------------------------------------
    # container lifecycle
    # ------------------------------------------------------------------
    def launch(
        self,
        job: Job,
        server: Server,
        workers: int,
        gpus_per_worker: int,
        flexible: bool,
        now: float = 0.0,
    ) -> List[Container]:
        """Launch one container per worker on ``server``.

        Reserves the GPUs and records the placement on the job; raises
        ``ValueError`` (and launches nothing) if capacity is missing or
        the node is unhealthy, and :class:`TransientLaunchError` (also
        launching nothing) when the fault-injection launch gate exhausts
        its retries.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not self.is_healthy(server.server_id):
            raise ValueError(f"server {server.server_id!r} is unhealthy")
        total = workers * gpus_per_worker
        if total > server.free_gpus:
            raise ValueError(
                f"server {server.server_id}: need {total} GPUs, "
                f"{server.free_gpus} free"
            )
        if self.launch_gate is not None:
            self.launch_gate(job, server, workers)
        if self.journal is not None:
            self.journal.note_job(job)
        server.allocate(job.job_id, total)
        job.record_placement(
            server.server_id,
            workers,
            flexible=flexible,
            gpu_cost=gpus_per_worker,
            on_loan=server.on_loan,
        )
        launched = []
        for _ in range(workers):
            container = Container(
                job_id=job.job_id,
                server_id=server.server_id,
                gpus=gpus_per_worker,
                flexible=flexible,
                start_time=now,
            )
            self._containers[container.container_id] = container
            self._by_job.setdefault(job.job_id, []).append(
                container.container_id
            )
            self._by_server.setdefault(server.server_id, []).append(
                container.container_id
            )
            launched.append(container)
        self.audit.append(
            AuditRecord(now, "launch",
                        (job.job_id, server.server_id, workers, flexible))
        )
        if self.journal is not None:
            self.journal.record_launch(job, server, launched)
        return launched

    def _server(self, server_id: str) -> Optional[Server]:
        for cluster in self.pair.clusters():
            if server_id in cluster:
                return cluster.get(server_id)
        return None

    def release_job(self, job: Job, now: float = 0.0) -> int:
        """Tear down every container of a job (completion/preemption)."""
        if self.journal is not None:
            self.journal.note_job(job)
        released = 0
        stopped = []
        for container in self.containers_of(job.job_id):
            container.stop(now)
            server = self._server(container.server_id)
            if server is not None:
                server.release(job.job_id, container.gpus)
            stopped.append((server, container))
            released += 1
        job.clear_placement()
        self.audit.append(AuditRecord(now, "release_job", (job.job_id,)))
        if stopped and self.journal is not None:
            self.journal.record_stopped(job.job_id, stopped)
        return released

    def scale_in(
        self, job: Job, server_id: str, workers: int, now: float = 0.0
    ) -> int:
        """Release up to ``workers`` flexible containers on one server."""
        if self.journal is not None:
            self.journal.note_job(job)
        stopped = 0
        stopped_pairs = []
        for container in self.containers_on(server_id):
            if stopped >= workers:
                break
            if container.job_id != job.job_id or not container.flexible:
                continue
            container.stop(now)
            server = self._server(server_id)
            if server is not None:
                server.release(job.job_id, container.gpus)
            stopped_pairs.append((server, container))
            stopped += 1
        if stopped:
            have = job.flex_placement.get(server_id, 0)
            take = min(stopped, have)
            if take:
                job.flex_placement[server_id] = have - take
                if job.flex_placement[server_id] == 0:
                    job.remove_flex_on(server_id)
            self.audit.append(
                AuditRecord(now, "scale_in", (job.job_id, server_id, stopped))
            )
            if self.journal is not None:
                self.journal.record_stopped(job.job_id, stopped_pairs)
        return stopped

    # ------------------------------------------------------------------
    # whitelist API (§6)
    # ------------------------------------------------------------------
    def loan_eligible(self, server: Server) -> bool:
        """The one loan-eligibility predicate, shared by plan and commit.

        :meth:`peek_loanable` (planning) and :meth:`loan_servers`
        (commit) both filter through here, so an eligibility change can
        never make plans silently diverge from what commits would move.
        Today: never loan a server that is known-unhealthy (e.g. it
        failed while on loan and was routed back before its repair
        finished).
        """
        return self.is_healthy(server.server_id)

    def loan_servers(self, count: int, now: float = 0.0) -> List[Server]:
        self._note_clock(now)
        moved = self.pair.loan(count, eligible=self.loan_eligible)
        if moved:
            self.audit.append(
                AuditRecord(now, "loan", tuple(s.server_id for s in moved))
            )
        return moved

    def peek_loanable(
        self,
        count: int,
        lender: Optional[str] = None,
        exclude: Optional[set] = None,
    ) -> List[str]:
        """The server ids :meth:`loan_servers` would move right now.

        Pure read used when *planning* a loan: the commit later moves
        exactly these ids via :meth:`loan_selected`, so the plan is
        deterministic and the selection matches the legacy path's
        (insertion-ordered idle inference servers, eligible only).
        ``lender`` restricts the scan to servers homed in one member
        cluster; ``exclude`` skips ids already claimed by an earlier
        action of the same plan (the capacity broker plans several loans
        per interval against one unchanged whitelist snapshot).
        """
        ids: List[str] = []
        for server in self.pair.loanable_servers():
            if len(ids) >= count:
                break
            if lender is not None and server.home_cluster != lender:
                continue
            if exclude is not None and server.server_id in exclude:
                continue
            if self.loan_eligible(server):
                ids.append(server.server_id)
        return ids

    def loan_selected(
        self, server_ids, now: float = 0.0, borrower: Optional[str] = None
    ) -> List[Server]:
        """Whitelist-move the named idle inference servers to training.

        ``borrower`` names the training region the loan is matched to
        in a capacity market; the plain pair ignores it.
        """
        self._note_clock(now)
        if borrower is not None:
            moved = self.pair.loan_ids(server_ids, borrower=borrower)
        else:
            moved = self.pair.loan_ids(server_ids)
        if moved:
            self.audit.append(
                AuditRecord(now, "loan", tuple(s.server_id for s in moved))
            )
        return moved

    def _note_clock(self, now: float) -> None:
        """Tell a clock-aware pair (the market's ClusterSet) what time it
        is, so loan contracts open/close with real timestamps.  The plain
        ClusterPair has no clock and this is a no-op."""
        if hasattr(self.pair, "clock"):
            self.pair.clock = now

    def migrate_job(
        self, job: Job, source_id: str, target: Server, now: float = 0.0
    ) -> int:
        """Move every worker of ``job`` off ``source_id`` onto ``target``.

        Containers are re-homed (not stopped and relaunched — the
        production mechanic is a checkpoint/restore onto the new server,
        which keeps the container identity for the books).  Returns the
        number of workers moved.
        """
        moved = [
            c for c in self.containers_of(job.job_id)
            if c.server_id == source_id
        ]
        if not moved:
            raise ValueError(
                f"job {job.job_id} has no running containers on {source_id!r}"
            )
        if not self.is_healthy(target.server_id):
            raise ValueError(f"server {target.server_id!r} is unhealthy")
        total = sum(c.gpus for c in moved)
        if total > target.free_gpus:
            raise ValueError(
                f"server {target.server_id}: need {total} GPUs, "
                f"{target.free_gpus} free"
            )
        source = self._server(source_id)
        base = job.base_placement.get(source_id, 0)
        flex = job.flex_placement.get(source_id, 0)
        gpu_cost = job._server_cost.get(source_id, job.spec.gpus_per_worker)
        target.allocate(job.job_id, total)
        if source is not None:
            source.release(job.job_id, total)
        for container in moved:
            self._by_server[source_id].remove(container.container_id)
            self._by_server.setdefault(target.server_id, []).append(
                container.container_id
            )
            container.server_id = target.server_id
        job.remove_placement(source_id)
        if base:
            job.record_placement(
                target.server_id, base, flexible=False,
                gpu_cost=gpu_cost, on_loan=target.on_loan,
            )
        if flex:
            job.record_placement(
                target.server_id, flex, flexible=True,
                gpu_cost=gpu_cost, on_loan=target.on_loan,
            )
        self.audit.append(
            AuditRecord(
                now, "migrate",
                (job.job_id, source_id, target.server_id, len(moved)),
            )
        )
        return len(moved)

    def return_server(self, server_id: str, now: float = 0.0) -> Server:
        if self.containers_on(server_id):
            raise RuntimeError(
                f"server {server_id!r} still runs containers; the scheduler "
                f"must confirm it is vacated before whitelist removal (§6)"
            )
        self._note_clock(now)
        server = self.pair.return_server(server_id)
        self.audit.append(AuditRecord(now, "return", (server_id,)))
        return server

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def fail_node(self, server_id: str, now: float = 0.0) -> NodeFailureReport:
        """A server dies: containers are lost, GPUs freed, node marked
        unhealthy until :meth:`recover_node`."""
        report = NodeFailureReport(server_id=server_id)
        server = self._server(server_id)
        for container in self.containers_on(server_id):
            container.stop(now, lost=True)
            report.lost_containers.append(container)
            if container.flexible:
                report.jobs_lost_flex[container.job_id] = (
                    report.jobs_lost_flex.get(container.job_id, 0) + 1
                )
            else:
                report.jobs_lost_base.add(container.job_id)
        if server is not None:
            for job_id in list(server.allocations):
                server.release(job_id)
        # jobs that lost base workers lose everything (gang semantics);
        # their flex losses are subsumed by the full reschedule
        for job_id in report.jobs_lost_base:
            report.jobs_lost_flex.pop(job_id, None)
        self._unhealthy.add(server_id)
        self.audit.append(
            AuditRecord(
                now, "fail_node",
                (server_id, len(report.lost_containers)),
            )
        )
        return report

    def recover_node(self, server_id: str, now: float = 0.0) -> None:
        self._unhealthy.discard(server_id)
        self.audit.append(AuditRecord(now, "recover_node", (server_id,)))

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def verify_books(self) -> None:
        """Assert the container ledger matches every server's GPU book.

        Raises ``RuntimeError`` on the first divergence; cheap enough to
        run inside tests after every mutation batch.
        """
        expected: Dict[Tuple[str, int], int] = {}
        for container in self.running_containers():
            key = (container.server_id, container.job_id)
            expected[key] = expected.get(key, 0) + container.gpus
        for cluster in self.pair.clusters():
            for server in cluster.servers:
                for job_id, gpus in server.allocations.items():
                    booked = expected.pop((server.server_id, job_id), 0)
                    if booked != gpus:
                        raise RuntimeError(
                            f"book mismatch on {server.server_id} job "
                            f"{job_id}: containers say {booked}, server "
                            f"says {gpus}"
                        )
        if expected:
            raise RuntimeError(
                f"containers without server bookings: {sorted(expected)}"
            )

    def whitelist_books(self) -> Dict[str, Dict[str, Tuple[int, int]]]:
        """Per-cluster whitelist membership books.

        ``{cluster_name: {server_id: (used_gpus, num_gpus)}}`` over every
        whitelist the pair manages — the market's per-cluster accounting
        view (and a handy debugging dump for the plain pair, whose two
        whitelists appear under their own names).
        """
        books: Dict[str, Dict[str, Tuple[int, int]]] = {}
        for cluster in self.pair.clusters():
            books[cluster.name] = {
                s.server_id: (s.used_gpus, s.num_gpus)
                for s in cluster.servers
            }
        return books
