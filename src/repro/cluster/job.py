"""Training-job model.

A job is described statically by a :class:`JobSpec` (what a trace records:
arrival, demand, duration, capability flags) and dynamically by a
:class:`Job` (what the scheduler and simulator mutate: status, placement,
remaining work).

Work accounting
---------------
Work is measured in *training-GPU seconds*: a job's total workload is
``duration * max_workers * gpus_per_worker`` — the paper's "minimum running
time" is achieved at maximum demand on training GPUs (Table 2).  A running
job consumes work at a throughput equal to the sum over its workers of
``gpus_per_worker * host_relative_compute``, scaled by the job's
:class:`~repro.elastic.throughput.ScalingModel` efficiency at its current
worker count.  Running time is therefore inversely proportional to the
allocation in the linear regime, exactly as §5 assumes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.elastic.throughput import LINEAR, ScalingModel


class JobStatus(enum.Enum):
    """Lifecycle states of a training job."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


#: Marginal efficiency of workers *beyond* a job's declared scaling range.
#: Schedulers assuming unbounded elasticity (AFS, §7.4) may grow jobs past
#: ``max_workers``; physically those models scale poorly out of range.
BEYOND_RANGE_EFFICIENCY = 0.7


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of a training job as recorded in a trace.

    Attributes:
        job_id: Unique identifier within a trace.
        submit_time: Submission timestamp in seconds from trace start.
        duration: Running time in seconds when the job holds its maximum
            demand on training GPUs (the paper's *minimum running time*).
        max_workers: Requested worker count; for inelastic jobs this is
            the fixed demand.
        min_workers: Minimum workers an elastic job can make progress
            with (its *base demand*); equals ``max_workers`` when
            inelastic.
        gpus_per_worker: GPUs consumed by each worker container.
        elastic: Whether the job supports on-the-fly worker scaling
            within ``[min_workers, max_workers]`` (§2.2).
        fungible: Whether the job can run on a different GPU type in a
            different execution run, making it eligible for on-loan
            inference servers (§2.1; 21 % of production jobs).
        heterogeneous: Whether the job can span GPU types at runtime
            (experimental; ≤70 % of ideal throughput in Advanced, §7.1).
        checkpointing: Whether preemption preserves training progress
            (§7.3); the paper's conservative default is ``False``.
        model_family: Model family label, e.g. ``"resnet"``.
        scaling: Name of the throughput scaling model.
    """

    job_id: int
    submit_time: float
    duration: float
    max_workers: int
    min_workers: int = 0
    gpus_per_worker: int = 1
    elastic: bool = False
    fungible: bool = False
    heterogeneous: bool = False
    checkpointing: bool = False
    model_family: str = "generic"
    scaling: str = "linear"

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(f"submit_time must be >= 0, got {self.submit_time}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.gpus_per_worker < 1:
            raise ValueError(
                f"gpus_per_worker must be >= 1, got {self.gpus_per_worker}"
            )
        if self.min_workers == 0:
            object.__setattr__(self, "min_workers", self.max_workers)
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}"
            )
        if not self.elastic and self.min_workers != self.max_workers:
            raise ValueError("inelastic jobs must have min_workers == max_workers")

    @property
    def base_gpus(self) -> int:
        """GPUs needed by the inelastic base demand (§5.2 phase one)."""
        return self.min_workers * self.gpus_per_worker

    @property
    def max_gpus(self) -> int:
        """GPUs consumed at maximum demand."""
        return self.max_workers * self.gpus_per_worker

    @property
    def total_work(self) -> float:
        """Total workload in training-GPU seconds (demand x min runtime)."""
        return self.duration * self.max_workers * self.gpus_per_worker


class Job:
    """Mutable runtime state of a job inside the scheduler/simulator.

    Placement is tracked as two ``{server_id: worker_count}`` maps — base
    workers (the inelastic minimum) and flexible workers (the elastic
    surplus) — because Lyra's placement policy deliberately segregates
    them onto different server groups (§5.3) and its reclaiming policy
    kills flexible workers first (§4).
    """

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.status = JobStatus.PENDING
        self.remaining_work = spec.total_work
        #: base workers per server id
        self.base_placement: Dict[str, int] = {}
        #: flexible (elastic surplus) workers per server id
        self.flex_placement: Dict[str, int] = {}
        #: physical GPUs charged per worker on each host server (on-loan
        #: inference servers charge more per the capacity normalization)
        self._server_cost: Dict[str, int] = {}
        #: host servers that are on loan from the inference cluster
        self._onloan_servers: set = set()
        self.scaling_model: ScalingModel = LINEAR
        self.first_start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.last_progress_time: Optional[float] = None
        self.preemptions = 0
        self.scale_ops = 0
        #: <=70 % throughput penalty while spanning mixed GPU types (§7.1)
        self.hetero_penalty: float = 1.0
        #: goodput bonus from hyperparameter tuning (Lyra+TunedJobs, §7.4)
        self.tuning_bonus: float = 1.0
        #: synchronous training runs at the pace of its slowest worker:
        #: fault injection lowers this while any host server straggles
        self.straggler_penalty: float = 1.0
        #: GPU-seconds delivered by on-loan servers, for Table 7 accounting
        self.onloan_work: float = 0.0
        #: running-time estimate error injected for the Table 9 study
        self.estimate_error: float = 1.0

    # ------------------------------------------------------------------
    # identity / convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def elastic(self) -> bool:
        return self.spec.elastic

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, status={self.status.value}, "
            f"workers={self.total_workers}/{self.spec.max_workers})"
        )

    # ------------------------------------------------------------------
    # placement accounting
    # ------------------------------------------------------------------
    @property
    def total_workers(self) -> int:
        """Workers currently placed (base + flexible)."""
        return sum(self.base_placement.values()) + sum(self.flex_placement.values())

    @property
    def base_workers(self) -> int:
        return sum(self.base_placement.values())

    @property
    def flex_workers(self) -> int:
        return sum(self.flex_placement.values())

    @property
    def servers(self) -> set:
        """Ids of all servers hosting at least one of this job's workers."""
        return set(self.base_placement) | set(self.flex_placement)

    def workers_on(self, server_id: str) -> int:
        return self.base_placement.get(server_id, 0) + self.flex_placement.get(
            server_id, 0
        )

    def record_placement(
        self,
        server_id: str,
        workers: int,
        flexible: bool,
        gpu_cost: Optional[int] = None,
        on_loan: bool = False,
    ) -> None:
        """Register ``workers`` new workers of this job on a server.

        Args:
            server_id: Host server.
            workers: Number of workers added (must be positive).
            flexible: True if these are elastic-surplus workers.
            gpu_cost: Physical GPUs each worker occupies on this host
                (defaults to ``gpus_per_worker``; larger on weaker
                on-loan GPUs per the §5.2 capacity normalization).
            on_loan: True when the host is a loaned inference server.
        """
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        placement = self.flex_placement if flexible else self.base_placement
        placement[server_id] = placement.get(server_id, 0) + workers
        self._server_cost[server_id] = (
            gpu_cost if gpu_cost is not None else self.spec.gpus_per_worker
        )
        if on_loan:
            self._onloan_servers.add(server_id)

    def remove_placement(self, server_id: str) -> int:
        """Remove all of this job's workers from ``server_id``.

        Returns the number of workers removed.
        """
        removed = self.base_placement.pop(server_id, 0)
        removed += self.flex_placement.pop(server_id, 0)
        if server_id not in self.servers:
            self._server_cost.pop(server_id, None)
            self._onloan_servers.discard(server_id)
        return removed

    def remove_flex_on(self, server_id: str) -> int:
        """Scale in: drop only the flexible workers on ``server_id``."""
        removed = self.flex_placement.pop(server_id, 0)
        if server_id not in self.servers:
            self._server_cost.pop(server_id, None)
            self._onloan_servers.discard(server_id)
        return removed

    def clear_placement(self) -> None:
        self.base_placement.clear()
        self.flex_placement.clear()
        self._server_cost.clear()
        self._onloan_servers.clear()

    def gpu_cost_on(self, server_id: str) -> int:
        """Physical GPUs each of this job's workers occupies on a host."""
        return self._server_cost.get(server_id, self.spec.gpus_per_worker)

    def gpus_on(self, server_id: str) -> int:
        """Physical GPUs this job occupies on ``server_id``."""
        return self.workers_on(server_id) * self.gpu_cost_on(server_id)

    # ------------------------------------------------------------------
    # progress accounting
    # ------------------------------------------------------------------
    def _parallel_efficiency(self, workers: int) -> float:
        """Average per-worker efficiency, charging out-of-range workers.

        Inside the scaling range the job's scaling model applies; every
        worker beyond ``max_workers`` contributes only
        :data:`BEYOND_RANGE_EFFICIENCY` of a worker.
        """
        if workers == 0:
            return 1.0
        wmax = self.spec.max_workers
        inside = min(workers, wmax)
        effective = self.scaling_model.effective_workers(inside)
        if workers > wmax:
            effective += (workers - wmax) * BEYOND_RANGE_EFFICIENCY
        return effective / workers

    def throughput(self) -> float:
        """Current work rate in training-GPU seconds per second.

        A worker delivers its full ``gpus_per_worker`` of training-GPU
        throughput wherever it runs: the §5.2 capacity normalization
        charges weaker on-loan GPUs a larger *footprint* instead (more
        physical GPUs per worker), so speed is placement-independent.
        The job-level parallel efficiency, heterogeneous-training
        penalty and tuning bonus still apply.
        """
        workers = self.total_workers
        if workers == 0:
            return 0.0
        raw = workers * self.spec.gpus_per_worker
        return (
            raw
            * self._parallel_efficiency(workers)
            * self.hetero_penalty
            * self.tuning_bonus
            * self.straggler_penalty
        )

    def onloan_throughput_fraction(self) -> float:
        """Fraction of current throughput delivered by on-loan servers."""
        workers = self.total_workers
        if workers == 0:
            return 0.0
        onloan = sum(
            self.workers_on(sid) for sid in self._onloan_servers
        )
        return onloan / workers

    def advance(self, now: float) -> None:
        """Integrate progress from ``last_progress_time`` up to ``now``."""
        if self.last_progress_time is None:
            self.last_progress_time = now
            return
        dt = now - self.last_progress_time
        if dt < 0:
            raise ValueError(
                f"time went backwards: {self.last_progress_time} -> {now}"
            )
        if self.status is JobStatus.RUNNING and dt > 0:
            done = dt * self.throughput()
            self.remaining_work = max(0.0, self.remaining_work - done)
            self.onloan_work += done * self.onloan_throughput_fraction()
        self.last_progress_time = now

    def eta(self) -> float:
        """Seconds until completion at the current throughput."""
        rate = self.throughput()
        if rate <= 0:
            return math.inf
        return self.remaining_work / rate

    def remaining_time_at(self, workers: int, compute: float = 1.0) -> float:
        """Projected remaining running time with ``workers`` workers.

        Used by the allocator to evaluate candidate allocations; assumes
        homogeneous placement on GPUs with ``compute`` relative compute.
        """
        if workers <= 0:
            return math.inf
        rate = (
            workers
            * self.spec.gpus_per_worker
            * compute
            * self._parallel_efficiency(workers)
            * self.hetero_penalty
            * self.tuning_bonus
            * self.straggler_penalty
        )
        return self.remaining_work / rate if rate > 0 else math.inf

    def estimated_duration(self) -> float:
        """The scheduler-visible running-time estimate (Table 9 study)."""
        return self.spec.duration * self.estimate_error

    # ------------------------------------------------------------------
    # lifecycle transitions
    # ------------------------------------------------------------------
    def mark_started(self, now: float) -> None:
        if self.status is JobStatus.FINISHED:
            raise RuntimeError(f"job {self.job_id} already finished")
        self.status = JobStatus.RUNNING
        self.last_progress_time = now
        if self.first_start_time is None:
            self.first_start_time = now

    def mark_preempted(self, now: float, overhead: float = 0.0) -> None:
        """Kick the job back to the queue after a reclaim preemption (§4).

        Without checkpointing the entire progress is lost and training
        restarts from scratch; with checkpointing progress is kept.  Both
        variants pay ``overhead`` extra work at the job's full rate,
        modelling checkpoint save/load and container churn (§7.5).
        """
        self.advance(now)
        self.status = JobStatus.PENDING
        self.clear_placement()
        # the next placement lands on different servers; any straggler
        # drag from the old hosts ends here
        self.straggler_penalty = 1.0
        self.preemptions += 1
        if not self.spec.checkpointing:
            self.remaining_work = self.spec.total_work
        penalty_rate = self.spec.max_workers * self.spec.gpus_per_worker
        self.remaining_work += overhead * penalty_rate
        self.last_progress_time = now

    def mark_finished(self, now: float) -> None:
        self.status = JobStatus.FINISHED
        self.finish_time = now
        self.clear_placement()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def queuing_time(self) -> Optional[float]:
        """Seconds between submission and first dispatch; None if never ran."""
        if self.first_start_time is None:
            return None
        return self.first_start_time - self.spec.submit_time

    @property
    def jct(self) -> Optional[float]:
        """Job completion time; None if unfinished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.spec.submit_time
