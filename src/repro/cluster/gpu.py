"""GPU device models.

The paper's production environment uses Tesla V100 (32 GB) in the training
cluster and Nvidia T4 (16 GB) in the inference cluster.  When inference
servers are loaned to training, their capacity is *normalized* relative to
training GPUs (§5.2), and the testbed observes that three loaned T4 servers
are roughly equivalent to one V100 training server in computational
capability (§7.5).  We capture that with a ``relative_compute`` factor
expressed in training-GPU (V100) equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUType:
    """A GPU device model.

    Attributes:
        name: Marketing name, e.g. ``"V100"``.
        memory_gb: On-board memory in gigabytes.  Fungible training jobs
            must shrink their local batch size to fit smaller memory
            (§2.1); the ratio of memories drives that adjustment.
        relative_compute: Training throughput of one GPU of this type
            relative to one training-cluster GPU (V100 == 1.0).
    """

    name: str
    memory_gb: int
    relative_compute: float

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive, got {self.memory_gb}")
        if self.relative_compute <= 0:
            raise ValueError(
                f"relative_compute must be positive, got {self.relative_compute}"
            )

    def batch_shrink_factor(self, reference: "GPUType") -> float:
        """Fraction of ``reference``'s local batch that fits in this GPU.

        Capacity loaning keeps the *global* batch size constant by running
        more workers with proportionally smaller local batches (§2.1).
        """
        return min(1.0, self.memory_gb / reference.memory_gb)


#: The training-cluster GPU in the paper's production environment.
V100 = GPUType(name="V100", memory_gb=32, relative_compute=1.0)

#: The inference-cluster GPU; ~1/3 of a V100 for training workloads (§7.5).
T4 = GPUType(name="T4", memory_gb=16, relative_compute=1.0 / 3.0)

#: A newer training GPU, available for custom scenarios.
A100 = GPUType(name="A100", memory_gb=80, relative_compute=1.75)

_REGISTRY = {gpu.name: gpu for gpu in (V100, T4, A100)}


def get_gpu_type(name: str) -> GPUType:
    """Look up a built-in GPU type by name (case-insensitive)."""
    try:
        return _REGISTRY[name.upper().replace("NVIDIA ", "")]
    except KeyError:
        raise KeyError(
            f"unknown GPU type {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
