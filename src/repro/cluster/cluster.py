"""Cluster and whitelist-based capacity loaning.

Lyra implements loaning with a *whitelist API* (§6): each scheduler owns a
whitelist of servers under its control, and the resource orchestrator moves
server ids between whitelists.  :class:`Cluster` is one whitelist plus its
servers; :class:`ClusterPair` wires a training cluster and an inference
cluster together and implements the loan/return primitive.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.cluster.gpu import GPUType, T4, V100
from repro.cluster.server import Server


class Cluster:
    """A set of GPU servers under one scheduler's control (a whitelist)."""

    def __init__(self, name: str, servers: Iterable[Server] = ()):
        self.name = name
        self._servers: Dict[str, Server] = {}
        #: attached ClusterView (delta consumer), if any
        self._view = None
        for server in servers:
            self.add_server(server)

    # ------------------------------------------------------------------
    # whitelist maintenance
    # ------------------------------------------------------------------
    def attach_view(self, view) -> None:
        """Wire a ClusterView to receive every membership/booking delta.

        Existing members get their change hook pointed at the view; the
        view itself is expected to have indexed current state already
        (its constructor rebuilds before attaching).
        """
        self._view = view
        for server in self._servers.values():
            server._on_change = view.server_changed

    def add_server(self, server: Server) -> None:
        if server.server_id in self._servers:
            raise ValueError(f"duplicate server id {server.server_id!r}")
        self._servers[server.server_id] = server
        if self._view is not None:
            server._on_change = self._view.server_changed
            self._view.server_added(server)

    def remove_server(self, server_id: str) -> Server:
        """Drop a server from the whitelist.

        Lyra's orchestrator only removes a server after the scheduler
        confirms it hosts no running workers (§6), which we enforce.
        """
        server = self._servers.get(server_id)
        if server is None:
            raise KeyError(f"server {server_id!r} not in cluster {self.name!r}")
        if server.allocations:
            raise RuntimeError(
                f"server {server_id!r} still hosts jobs "
                f"{sorted(server.allocations)}; vacate before removal"
            )
        del self._servers[server_id]
        if self._view is not None:
            server._on_change = None
            self._view.server_removed(server)
        return server

    def __contains__(self, server_id: str) -> bool:
        return server_id in self._servers

    def __len__(self) -> int:
        return len(self._servers)

    def get(self, server_id: str) -> Server:
        return self._servers[server_id]

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def servers(self) -> List[Server]:
        """All servers, in stable (insertion) order."""
        return list(self._servers.values())

    @property
    def on_loan_servers(self) -> List[Server]:
        return [s for s in self._servers.values() if s.on_loan]

    @property
    def dedicated_servers(self) -> List[Server]:
        return [s for s in self._servers.values() if not s.on_loan]

    @property
    def total_gpus(self) -> int:
        return sum(s.num_gpus for s in self._servers.values())

    @property
    def free_gpus(self) -> int:
        return sum(s.free_gpus for s in self._servers.values())

    @property
    def used_gpus(self) -> int:
        return sum(s.used_gpus for s in self._servers.values())

    @property
    def normalized_capacity(self) -> float:
        """Total capacity in training-GPU equivalents (§5.2)."""
        return sum(s.normalized_gpus for s in self._servers.values())

    def utilization(self) -> float:
        """Fraction of GPUs currently allocated."""
        total = self.total_gpus
        return self.used_gpus / total if total else 0.0

    def release_job(self, job_id: int) -> int:
        """Release every GPU held by ``job_id`` anywhere in the cluster."""
        freed = 0
        for server in self._servers.values():
            freed += server.release(job_id)
        return freed


def make_training_cluster(
    num_servers: int,
    gpus_per_server: int = 8,
    gpu_type: GPUType = V100,
    name: str = "training",
    id_prefix: str = "train",
) -> Cluster:
    """Build a homogeneous dedicated training cluster.

    ``name``/``id_prefix`` let the capacity market build several named
    training regions; the defaults reproduce the single-pair cluster.
    """
    servers = [
        Server(
            server_id=f"{id_prefix}-{i:04d}",
            gpu_type=gpu_type,
            num_gpus=gpus_per_server,
            home_cluster=name,
        )
        for i in range(num_servers)
    ]
    return Cluster(name, servers)


def make_inference_cluster(
    num_servers: int,
    gpus_per_server: int = 8,
    gpu_type: GPUType = T4,
    name: str = "inference",
    id_prefix: str = "infer",
) -> Cluster:
    """Build a homogeneous inference cluster.

    ``name``/``id_prefix`` let the capacity market build several named
    lender clusters; the defaults reproduce the single-pair cluster.
    """
    servers = [
        Server(
            server_id=f"{id_prefix}-{i:04d}",
            gpu_type=gpu_type,
            num_gpus=gpus_per_server,
            home_cluster=name,
        )
        for i in range(num_servers)
    ]
    return Cluster(name, servers)


class ClusterPair:
    """A training cluster plus an inference cluster with capacity loaning.

    The inference scheduler autonomously decides *how many* servers to
    lend or ask back (§4 assumptions); this class provides the mechanism:
    :meth:`loan` moves idle inference servers into the training whitelist
    and :meth:`return_server` moves a vacated on-loan server back.
    """

    def __init__(self, training: Cluster, inference: Cluster):
        self.training = training
        self.inference = inference

    def clusters(self):
        """Every whitelist this pair manages, training first.

        The resource manager's server lookup and book audits iterate
        this instead of hardcoding ``(training, inference)``, so a
        multi-cluster :class:`~repro.market.ClusterSet` can expose its
        member whitelists through the same interface.
        """
        yield self.training
        yield self.inference

    def home_cluster_of(self, server: Server) -> Cluster:
        """The whitelist ``server`` physically belongs to (returns there).

        The pair has exactly two whitelists, so anything not homed on
        the training side is an inference server; a multi-cluster set
        overrides this to route by member-cluster name.
        """
        if server.home_cluster == self.training.name:
            return self.training
        return self.inference

    @property
    def loaned_count(self) -> int:
        return len(self.training.on_loan_servers)

    def loanable_servers(self) -> List[Server]:
        """Idle inference servers eligible for loaning."""
        return [s for s in self.inference.servers if s.idle]

    def loan(
        self,
        count: int,
        eligible: Optional[Callable[[Server], bool]] = None,
    ) -> List[Server]:
        """Loan up to ``count`` idle inference servers to training.

        Returns the servers actually moved (possibly fewer than asked if
        the inference cluster lacks idle machines).  ``eligible`` is an
        optional extra filter — the resource manager uses it to keep
        unhealthy servers out of the loan pool.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        moved: List[Server] = []
        for server in self.loanable_servers():
            if len(moved) >= count:
                break
            if eligible is not None and not eligible(server):
                continue
            self.inference.remove_server(server.server_id)
            server.on_loan = True
            self.training.add_server(server)
            moved.append(server)
        return moved

    def loan_ids(self, server_ids: Sequence[str]) -> List[Server]:
        """Loan the *named* idle inference servers, in the given order.

        The decision-plan counterpart of :meth:`loan`: the orchestrator
        picks the ids when planning (via
        :meth:`~repro.rm.manager.ResourceManager.peek_loanable`) and the
        executor moves exactly those at commit, preserving the whitelist
        insertion order the count-based path would have produced.
        """
        # Validate every id before moving any: a bad id mid-list must
        # not leave the whitelists half-mutated (the executor treats
        # this as all-or-nothing, like every other plan action).
        for server_id in server_ids:
            if server_id not in self.inference:
                raise ValueError(
                    f"server {server_id!r} is not in the inference whitelist"
                )
            if not self.inference.get(server_id).idle:
                raise ValueError(
                    f"server {server_id!r} is busy; only idle servers "
                    f"can be loaned"
                )
        moved: List[Server] = []
        for server_id in server_ids:
            server = self.inference.get(server_id)
            self.inference.remove_server(server_id)
            server.on_loan = True
            self.training.add_server(server)
            moved.append(server)
        return moved

    def return_server(self, server_id: str) -> Server:
        """Return one vacated on-loan server to its home whitelist.

        Routing consults ``server.home_cluster`` (via
        :meth:`home_cluster_of`) rather than assuming a single lender —
        with several inference clusters in the loan pool, every server
        must go back to the whitelist it came from.
        """
        server = self.training.get(server_id)
        if not server.on_loan:
            raise ValueError(f"server {server_id!r} is not on loan")
        self.training.remove_server(server_id)
        server.on_loan = False
        server.group = None
        self.home_cluster_of(server).add_server(server)
        return server
