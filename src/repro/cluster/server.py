"""GPU server model.

The basic unit of capacity loaning is a physical server (§3): inference and
training never share one machine, so no extra isolation mechanism is needed.
Each server tracks which jobs occupy how many of its GPUs; a worker always
fits entirely on one server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.cluster.gpu import GPUType

#: Server-group tags used by Lyra's placement of elastic jobs (§5.3):
#: flexible (elastic-surplus) workers go to FLEX_GROUP on-loan servers so
#: reclaiming can vacate that group first without preempting anyone.
BASE_GROUP = "base"
FLEX_GROUP = "flex"


@dataclass
class Server:
    """A physical GPU server.

    Attributes:
        server_id: Unique id, e.g. ``"train-0012"``.
        gpu_type: Hardware installed in this server.
        num_gpus: GPU count (8 in the paper's clusters).
        home_cluster: Name of the cluster the server physically belongs
            to and returns to after reclaiming — ``"training"`` or
            ``"inference"`` in the single-pair setup, or any member
            cluster/region name in a multi-cluster capacity market.
        on_loan: True while an inference server is whitelisted to the
            training scheduler.
        group: On-loan server group (:data:`BASE_GROUP` or
            :data:`FLEX_GROUP`) assigned by the placement engine; None for
            dedicated training servers.
    """

    server_id: str
    gpu_type: GPUType
    num_gpus: int = 8
    home_cluster: str = "training"
    on_loan: bool = False
    group: Optional[str] = None
    #: relative throughput of workers hosted here (1.0 = nominal; fault
    #: injection lowers it while the server straggles)
    perf_factor: float = 1.0
    #: GPUs occupied per job id
    allocations: Dict[int, int] = field(default_factory=dict)
    #: change hook wired by :meth:`Cluster.attach_view`; fired after every
    #: successful allocate/release so the ClusterView stays delta-current
    _on_change: Optional[Callable[["Server"], None]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if not self.home_cluster or not isinstance(self.home_cluster, str):
            raise ValueError(
                f"home_cluster must be a non-empty cluster name, "
                f"got {self.home_cluster!r}"
            )

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    @property
    def used_gpus(self) -> int:
        return sum(self.allocations.values())

    @property
    def free_gpus(self) -> int:
        return self.num_gpus - self.used_gpus

    @property
    def idle(self) -> bool:
        return not self.allocations

    @property
    def normalized_gpus(self) -> float:
        """Capacity in training-GPU equivalents (§5.2 normalization)."""
        return self.num_gpus * self.gpu_type.relative_compute

    @property
    def job_count(self) -> int:
        return len(self.allocations)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, job_id: int, gpus: int) -> None:
        """Reserve ``gpus`` GPUs for ``job_id``.

        Raises:
            ValueError: if the server lacks free GPUs.
        """
        if gpus <= 0:
            raise ValueError(f"gpus must be positive, got {gpus}")
        if gpus > self.free_gpus:
            raise ValueError(
                f"server {self.server_id}: requested {gpus} GPUs but only "
                f"{self.free_gpus} free"
            )
        self.allocations[job_id] = self.allocations.get(job_id, 0) + gpus
        if self._on_change is not None:
            self._on_change(self)

    def release(self, job_id: int, gpus: Optional[int] = None) -> int:
        """Free GPUs held by ``job_id`` (all of them when ``gpus`` is None).

        Returns the number of GPUs actually released.  Releasing a job
        that holds nothing here is a no-op returning 0, so callers can
        blanket-release across candidate servers.
        """
        held = self.allocations.get(job_id, 0)
        if held == 0:
            return 0
        if gpus is None or gpus >= held:
            del self.allocations[job_id]
            if self._on_change is not None:
                self._on_change(self)
            return held
        if gpus <= 0:
            raise ValueError(f"gpus must be positive, got {gpus}")
        self.allocations[job_id] = held - gpus
        if self._on_change is not None:
            self._on_change(self)
        return gpus

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " on-loan" if self.on_loan else ""
        return (
            f"Server({self.server_id}, {self.gpu_type.name}, "
            f"{self.used_gpus}/{self.num_gpus} used{tag})"
        )
