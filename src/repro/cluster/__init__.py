"""Cluster substrate: GPUs, servers, jobs, and whitelist-based loaning."""

from repro.cluster.cluster import (
    Cluster,
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.gpu import A100, GPUType, T4, V100, get_gpu_type
from repro.cluster.job import Job, JobSpec, JobStatus
from repro.cluster.server import BASE_GROUP, FLEX_GROUP, Server

__all__ = [
    "A100",
    "BASE_GROUP",
    "Cluster",
    "ClusterPair",
    "FLEX_GROUP",
    "GPUType",
    "Job",
    "JobSpec",
    "JobStatus",
    "Server",
    "T4",
    "V100",
    "get_gpu_type",
    "make_inference_cluster",
    "make_training_cluster",
]
